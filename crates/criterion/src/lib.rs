//! A from-scratch, std-only benchmarking shim.
//!
//! The workspace must build with **zero registry dependencies**, so this
//! crate re-implements the slice of the `criterion` API our benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId::from_parameter`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Instead of criterion's statistical machinery it runs a short
//! warmup, then times `sample_size` batches and prints mean / min / max
//! nanoseconds per iteration — enough to compare configurations by hand
//! and to drive overhead assertions in CI-less environments.

use std::fmt::Display;
use std::hint;
use std::time::Instant;

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark a closure parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(
            &label,
            self.criterion.sample_size,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Run a plain benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&label, self.criterion.sample_size, &mut f);
        self
    }

    /// Finish the group (upstream flushes reports here; we print as we go).
    pub fn finish(self) {}
}

/// Benchmark identifier.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier derived from a displayable parameter value.
    pub fn from_parameter(p: impl Display) -> BenchmarkId {
        BenchmarkId(p.to_string())
    }

    /// Identifier with a function name and parameter.
    pub fn new(f: impl Display, p: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{f}/{p}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<f64>, // ns per iteration, one entry per sample
}

impl Bencher {
    /// Time `f`, recording one sample per configured batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: aim for samples of roughly 10ms each so
        // Instant overhead is negligible, capped to keep total runtime low.
        let start = Instant::now();
        let mut calib_iters = 0u64;
        while start.elapsed().as_millis() < 50 {
            black_box(f());
            calib_iters += 1;
        }
        let per_iter_ns = (start.elapsed().as_nanos() as f64 / calib_iters as f64).max(1.0);
        self.iters_per_sample = ((10_000_000.0 / per_iter_ns).ceil() as u64).clamp(1, 100_000);

        let n_samples = self.samples.capacity();
        for _ in 0..n_samples {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            let elapsed = t0.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / self.iters_per_sample as f64);
        }
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::with_capacity(sample_size),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
    let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = b.samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "{label:<48} mean {:>12} min {:>12} max {:>12}  ({} samples x {} iters)",
        fmt_ns(mean),
        fmt_ns(min),
        fmt_ns(max),
        b.samples.len(),
        b.iters_per_sample,
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declare a benchmark group; mirrors criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default().sample_size(2);
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }
}
