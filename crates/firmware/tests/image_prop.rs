//! Property tests for the firmware container.

use firmup_firmware::crc::crc32;
use firmup_firmware::image::{pack, unpack, ImageMeta, Part, UnpackIssue};
use proptest::prelude::*;

fn meta() -> impl Strategy<Value = ImageMeta> {
    ("[A-Za-z]{1,12}", "[A-Za-z0-9-]{1,12}", "[0-9.]{1,8}").prop_map(|(vendor, device, version)| {
        ImageMeta {
            vendor,
            device,
            version,
        }
    })
}

fn parts() -> impl Strategy<Value = Vec<Part>> {
    proptest::collection::vec(
        (
            "[a-z/_.]{1,24}",
            proptest::collection::vec(any::<u8>(), 0..512),
        )
            .prop_map(|(name, data)| Part { name, data }),
        0..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary images round-trip exactly.
    #[test]
    fn pack_unpack_roundtrip(meta in meta(), parts in parts()) {
        let blob = pack(&meta, &parts);
        let u = unpack(&blob).expect("own output unpacks");
        prop_assert_eq!(u.meta, meta);
        prop_assert_eq!(u.parts, parts);
        prop_assert!(u.issues.is_empty());
    }

    /// The unpacker never panics on arbitrary input.
    #[test]
    fn unpack_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..768)) {
        let _ = unpack(&bytes);
    }

    /// Flipping any single payload byte is detected by exactly the
    /// affected part's checksum.
    #[test]
    fn payload_corruption_detected(
        meta in meta(),
        data in proptest::collection::vec(any::<u8>(), 8..128),
        which in any::<proptest::sample::Index>(),
        bit in 0u8..8,
    ) {
        let parts = vec![Part { name: "p".into(), data }];
        let mut blob = pack(&meta, &parts);
        // Payload sits at the end of the blob.
        let payload_start = blob.len() - parts[0].data.len();
        let idx = payload_start + which.index(parts[0].data.len());
        blob[idx] ^= 1 << bit;
        let u = unpack(&blob).expect("structure intact");
        prop_assert_eq!(u.issues, vec![UnpackIssue::BadChecksum { name: "p".into() }]);
    }

    /// CRC32 is stable and sensitive.
    #[test]
    fn crc_detects_any_single_bit(data in proptest::collection::vec(any::<u8>(), 1..64), which in any::<proptest::sample::Index>(), bit in 0u8..8) {
        let base = crc32(&data);
        let mut mutated = data.clone();
        let i = which.index(mutated.len());
        mutated[i] ^= 1 << bit;
        prop_assert_ne!(crc32(&mutated), base);
        prop_assert_eq!(crc32(&data), base);
    }
}
