//! Seeded corpus generation — the stand-in for the paper's crawler.
//!
//! §5.1: the authors crawled public support sites of NETGEAR, D-Link and
//! ASUS, unpacked ~2,000 usable images and indexed ~200,000 executables.
//! This module generates a scaled-down corpus with the same *structure*:
//! vendors with characteristic architectures and tool chains, devices
//! with firmware version histories (the last one being "latest"),
//! per-image package selections with version skew and disabled feature
//! groups, stripped executables, and full ground truth recorded before
//! stripping.

use std::collections::HashMap;

use firmup_compiler::{compile_source, CompilerOptions, ToolchainProfile};
use firmup_isa::Arch;

use crate::image::{pack, ImageMeta, Part};
use crate::packages::{all_packages, source_for, PackageSpec};
use crate::rng::{SliceRandom, SmallRng};

/// Corpus generation parameters. All randomness flows from `seed`.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Master seed.
    pub seed: u64,
    /// Number of devices across all vendors.
    pub devices: usize,
    /// Maximum firmware versions per device (min 1; the last is
    /// "latest").
    pub max_firmware_versions: usize,
    /// CVE packages per image (busybox is always added on top).
    pub min_packages: usize,
    /// Upper bound of CVE packages per image.
    pub max_packages: usize,
    /// Filler procedures per executable: `(min, max)`.
    pub filler: (usize, usize),
    /// Strip target executables (libraries keep exported symbols).
    pub strip: bool,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 0xf12a_0b5e,
            devices: 18,
            max_firmware_versions: 2,
            min_packages: 2,
            max_packages: 4,
            filler: (2, 8),
            strip: true,
        }
    }
}

impl CorpusConfig {
    /// A small configuration for fast tests.
    pub fn tiny() -> CorpusConfig {
        CorpusConfig {
            devices: 3,
            max_firmware_versions: 1,
            min_packages: 1,
            max_packages: 2,
            filler: (1, 3),
            ..CorpusConfig::default()
        }
    }
}

/// Named corpus sizes (`firmup gen-corpus --scale ...`), each a fixed
/// [`CorpusConfig`] so a preset name always reproduces the same corpus.
/// See CORPUS.md for the mapping to the paper's §6 corpus dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalePreset {
    /// Today's fixture corpus: 18 devices, ~24 images, ~3k procedures.
    /// Fast enough for every CI job.
    Smoke,
    /// ~90 devices / ~120 images / ~25k procedures: local soak runs.
    Small,
    /// ~375 devices / ~500 images / ≥100k procedures: the scaling
    /// bench substrate (gated CI only).
    Medium,
    /// ~1500 devices / ~2–3k images: the closest approximation of the
    /// paper's ~2,000 crawled images this generator produces.
    Paper,
}

impl ScalePreset {
    /// All presets, smallest first.
    pub fn all() -> [ScalePreset; 4] {
        [
            ScalePreset::Smoke,
            ScalePreset::Small,
            ScalePreset::Medium,
            ScalePreset::Paper,
        ]
    }

    /// Parse a preset name as the CLI spells it.
    pub fn parse(name: &str) -> Option<ScalePreset> {
        match name {
            "smoke" => Some(ScalePreset::Smoke),
            "small" => Some(ScalePreset::Small),
            "medium" => Some(ScalePreset::Medium),
            "paper" => Some(ScalePreset::Paper),
            _ => None,
        }
    }

    /// The CLI name.
    pub fn name(self) -> &'static str {
        match self {
            ScalePreset::Smoke => "smoke",
            ScalePreset::Small => "small",
            ScalePreset::Medium => "medium",
            ScalePreset::Paper => "paper",
        }
    }

    /// The generation parameters this preset pins. `Smoke` is exactly
    /// [`CorpusConfig::default`], so existing fixtures and golden tests
    /// are unchanged; larger presets scale device count and raise the
    /// filler range (real firmware executables carry far more
    /// procedures than the fixture's handful).
    pub fn config(self) -> CorpusConfig {
        match self {
            ScalePreset::Smoke => CorpusConfig::default(),
            ScalePreset::Small => CorpusConfig {
                devices: 90,
                filler: (8, 24),
                ..CorpusConfig::default()
            },
            ScalePreset::Medium => CorpusConfig {
                devices: 375,
                filler: (24, 56),
                ..CorpusConfig::default()
            },
            ScalePreset::Paper => CorpusConfig {
                devices: 1500,
                max_firmware_versions: 3,
                filler: (24, 56),
                ..CorpusConfig::default()
            },
        }
    }
}

/// A vendor with its characteristic build environment.
#[derive(Debug, Clone)]
pub struct Vendor {
    /// Vendor name.
    pub name: &'static str,
    /// Architectures this vendor ships.
    pub archs: Vec<Arch>,
    /// Tool chains this vendor's SDKs use.
    pub toolchains: Vec<ToolchainProfile>,
}

/// The three vendors of §5.1.
pub fn vendors() -> Vec<Vendor> {
    vec![
        Vendor {
            name: "NETGEAR",
            archs: vec![Arch::Mips32, Arch::Arm32],
            toolchains: vec![
                ToolchainProfile::vendor_size(),
                ToolchainProfile::vendor_fast(),
            ],
        },
        Vendor {
            name: "D-Link",
            archs: vec![Arch::Mips32, Arch::X86],
            toolchains: vec![
                ToolchainProfile::vendor_fast(),
                ToolchainProfile::vendor_debug(),
            ],
        },
        Vendor {
            name: "ASUS",
            archs: vec![Arch::Arm32, Arch::Ppc32, Arch::Mips32],
            toolchains: vec![
                ToolchainProfile::vendor_size(),
                ToolchainProfile::vendor_debug(),
            ],
        },
    ]
}

/// Ground truth for one executable inside an image, recorded before
/// stripping.
#[derive(Debug, Clone)]
pub struct BuiltExecutable {
    /// Part name inside the image.
    pub part_name: String,
    /// Source package.
    pub package: String,
    /// Package version.
    pub version: String,
    /// Feature groups the vendor disabled.
    pub disabled_features: Vec<String>,
    /// All function symbols `(name, addr, size)` before stripping.
    pub symbols: Vec<(String, u32, u32)>,
    /// Vulnerable procedures present: `(name, addr)`.
    pub vulnerable: Vec<(String, u32)>,
}

impl BuiltExecutable {
    /// Address of a (pre-strip) symbol.
    pub fn addr_of(&self, name: &str) -> Option<u32> {
        self.symbols
            .iter()
            .find(|(n, ..)| n == name)
            .map(|&(_, a, _)| a)
    }
}

/// One generated firmware image plus its ground truth.
#[derive(Debug, Clone)]
pub struct CorpusImage {
    /// Image metadata.
    pub meta: ImageMeta,
    /// The packed blob (what the search pipeline unpacks).
    pub blob: Vec<u8>,
    /// Device index (images of one device share it).
    pub device: usize,
    /// Whether this is the device's latest firmware.
    pub is_latest: bool,
    /// Architecture of the device.
    pub arch: Arch,
    /// Per-executable ground truth.
    pub truth: Vec<BuiltExecutable>,
}

/// A generated corpus.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// All images.
    pub images: Vec<CorpusImage>,
    /// The configuration that produced them.
    pub config: CorpusConfig,
}

impl Corpus {
    /// Total number of executables.
    pub fn executable_count(&self) -> usize {
        self.images.iter().map(|i| i.truth.len()).sum()
    }

    /// Total number of (pre-strip) procedures, the paper's headline
    /// corpus metric.
    pub fn procedure_count(&self) -> usize {
        self.images
            .iter()
            .flat_map(|i| i.truth.iter().map(|t| t.symbols.len()))
            .sum()
    }
}

/// One planned package build inside a firmware image.
#[derive(Debug, Clone)]
pub struct BuildPlan {
    /// The package to compile.
    pub pkg: PackageSpec,
    /// Version to compile.
    pub version: &'static str,
    /// Feature groups the vendor disabled.
    pub disabled: Vec<String>,
}

/// One planned firmware version of a device.
#[derive(Debug, Clone)]
pub struct FirmwarePlan {
    /// Firmware version string.
    pub version: String,
    /// Whether this is the device's latest firmware.
    pub is_latest: bool,
    /// Package builds, busybox first.
    pub builds: Vec<BuildPlan>,
}

/// Everything needed to build one device's images, fixed before any
/// compilation happens. Building a device plan is *pure*: it touches no
/// RNG, so plans can be built in any order, in parallel, or selectively
/// (resume) and still produce byte-identical images.
#[derive(Debug, Clone)]
pub struct DevicePlan {
    /// Device index within the corpus.
    pub device: usize,
    /// Vendor name.
    pub vendor: &'static str,
    /// Device model string.
    pub model: String,
    /// Architecture.
    pub arch: Arch,
    /// Toolchain profile.
    pub toolchain: ToolchainProfile,
    /// Seed for filler-procedure generation (shared by all of this
    /// device's builds, like a vendor SDK's common code).
    pub filler_seed: u64,
    /// Filler procedures per executable.
    pub filler_count: usize,
    /// Firmware versions, oldest first.
    pub firmwares: Vec<FirmwarePlan>,
}

/// A fully drawn corpus plan: the deterministic output of the seed,
/// before any compilation.
#[derive(Debug, Clone)]
pub struct CorpusPlan {
    /// One plan per device, in device order.
    pub devices: Vec<DevicePlan>,
    /// The configuration that produced the plan.
    pub config: CorpusConfig,
}

impl CorpusPlan {
    /// Total images this plan will produce.
    pub fn image_count(&self) -> usize {
        self.devices.iter().map(|d| d.firmwares.len()).sum()
    }
}

/// Draw the full corpus plan from the seed. All randomness happens
/// here, sequentially, in exactly the order the original single-pass
/// generator drew it — so a given `(seed, config)` produces the same
/// corpus bytes it always has, while the expensive compilation becomes
/// a pure per-device function ([`build_device`]) that callers may
/// parallelize or resume.
pub fn plan(config: &CorpusConfig) -> CorpusPlan {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let vendors = vendors();
    let cve_packages: Vec<PackageSpec> = all_packages()
        .into_iter()
        .filter(|p| p.name != "busybox")
        .collect();
    let busybox = crate::packages::package("busybox").expect("busybox exists");
    let mut devices = Vec::with_capacity(config.devices);

    for device in 0..config.devices {
        let vendor = &vendors[device % vendors.len()];
        let arch = vendor.archs[rng.gen_range(0..vendor.archs.len())];
        let toolchain = vendor.toolchains[rng.gen_range(0..vendor.toolchains.len())].clone();
        let model = format!(
            "{}{}{:02}",
            ["R", "DIR-", "RT-AC"][device % 3],
            [7000, 850, 68][device % 3],
            device
        );
        let filler_seed = rng.gen::<u64>();
        let filler_count = rng.gen_range(config.filler.0..=config.filler.1);

        // Pick this device's packages once; firmware updates may bump
        // versions.
        let mut pool = cve_packages.clone();
        pool.shuffle(&mut rng);
        let n_pkgs = rng.gen_range(config.min_packages..=config.max_packages.min(pool.len()));
        let chosen: Vec<PackageSpec> = pool.into_iter().take(n_pkgs).collect();
        let fw_count = rng.gen_range(1..=config.max_firmware_versions.max(1));

        // Per-package starting version index (biased old) and disabled
        // features.
        let mut pkg_state: Vec<(PackageSpec, usize, Vec<String>)> = chosen
            .iter()
            .map(|p| {
                let vi = rng.gen_range(0..p.versions.len());
                let disabled: Vec<String> = p
                    .features
                    .iter()
                    .filter(|_| rng.gen_bool(0.4))
                    .map(|s| (*s).to_string())
                    .collect();
                (*p, vi, disabled)
            })
            .collect();

        let mut firmwares = Vec::with_capacity(fw_count);
        for fw in 0..fw_count {
            // busybox + chosen packages, versions as of this firmware.
            let mut builds = vec![BuildPlan {
                pkg: busybox,
                version: busybox.versions[busybox.versions.len() - 1].version,
                disabled: Vec::new(),
            }];
            builds.extend(pkg_state.iter().map(|(pkg, vi, disabled)| BuildPlan {
                pkg: *pkg,
                version: pkg.versions[*vi].version,
                disabled: disabled.clone(),
            }));
            firmwares.push(FirmwarePlan {
                version: format!("1.{}.{}", fw, device % 7),
                is_latest: fw == fw_count - 1,
                builds,
            });
            // Firmware update: occasionally bump package versions.
            for (pkg, vi, _) in &mut pkg_state {
                if *vi + 1 < pkg.versions.len() && rng.gen_bool(0.5) {
                    *vi += 1;
                }
            }
        }
        devices.push(DevicePlan {
            device,
            vendor: vendor.name,
            model,
            arch,
            toolchain,
            filler_seed,
            filler_count,
            firmwares,
        });
    }
    CorpusPlan {
        devices,
        config: config.clone(),
    }
}

/// Build one device's images from its plan. Pure (no RNG, no shared
/// state): safe to call for any subset of devices, in any order, on any
/// thread — the bytes depend only on the plan.
///
/// The compile cache is per-device: identical (pkg, version, features,
/// arch, profile, filler) tuples yield byte-identical executables —
/// modeling vendors not recompiling unchanged packages between firmware
/// releases (observed by the paper in §5.2, "Confirming findings").
/// Cache keys embed the device's random `filler_seed`, so cross-device
/// hits cannot occur and a per-device cache reproduces exactly what the
/// old corpus-global cache did.
///
/// # Panics
///
/// Panics only on internal corpus bugs (a package failing to compile),
/// which the package tests rule out.
pub fn build_device(plan: &DevicePlan, strip: bool) -> Vec<CorpusImage> {
    let mut cache: HashMap<String, (Vec<u8>, BuiltExecutable)> = HashMap::new();
    let mut images = Vec::with_capacity(plan.firmwares.len());
    for fwp in &plan.firmwares {
        let mut parts = Vec::new();
        let mut truth = Vec::new();
        for b in &fwp.builds {
            let disabled_refs: Vec<&str> = b.disabled.iter().map(String::as_str).collect();
            let key = format!(
                "{}:{}:{:?}:{}:{}:{}:{}",
                b.pkg.name,
                b.version,
                disabled_refs,
                plan.arch.name(),
                plan.toolchain.name,
                plan.filler_seed,
                plan.filler_count
            );
            let (bytes, built) = cache
                .entry(key)
                .or_insert_with(|| {
                    build_executable(
                        &b.pkg,
                        b.version,
                        &disabled_refs,
                        plan.arch,
                        &plan.toolchain,
                        plan.filler_seed,
                        plan.filler_count,
                        strip,
                    )
                })
                .clone();
            truth.push(built);
            parts.push(Part {
                name: b.pkg.executable.to_string(),
                data: bytes,
            });
        }
        let meta = ImageMeta {
            vendor: plan.vendor.to_string(),
            device: plan.model.clone(),
            version: fwp.version.clone(),
        };
        images.push(CorpusImage {
            blob: pack(&meta, &parts),
            meta,
            device: plan.device,
            is_latest: fwp.is_latest,
            arch: plan.arch,
            truth,
        });
    }
    images
}

/// Generate a corpus: draw the [`plan`], then [`build_device`] each
/// device in order. Byte-identical to the historical single-pass
/// generator for every `(seed, config)`.
///
/// # Panics
///
/// Panics only on internal corpus bugs (a package failing to compile),
/// which the package tests rule out.
pub fn generate(config: &CorpusConfig) -> Corpus {
    let plan = plan(config);
    let mut images = Vec::with_capacity(plan.image_count());
    for device in &plan.devices {
        images.extend(build_device(device, config.strip));
    }
    Corpus {
        images,
        config: config.clone(),
    }
}

#[allow(clippy::too_many_arguments)]
fn build_executable(
    pkg: &PackageSpec,
    version: &str,
    disabled: &[&str],
    arch: Arch,
    toolchain: &ToolchainProfile,
    filler_seed: u64,
    filler_count: usize,
    strip: bool,
) -> (Vec<u8>, BuiltExecutable) {
    let src = source_for(pkg.name, version, disabled, filler_seed, filler_count);
    let mut elf = compile_source(
        &src,
        arch,
        &CompilerOptions {
            profile: toolchain.clone(),
            layout: Default::default(),
        },
    )
    .unwrap_or_else(|e| panic!("corpus build {}/{version} on {arch}: {e}", pkg.name));
    let symbols: Vec<(String, u32, u32)> = elf
        .func_symbols()
        .iter()
        .map(|s| (s.name.clone(), s.value, s.size))
        .collect();
    let vuln_names = pkg.version(version).map(|v| v.vulnerable).unwrap_or(&[]);
    let vulnerable: Vec<(String, u32)> = symbols
        .iter()
        .filter(|(n, ..)| vuln_names.contains(&n.as_str()))
        .map(|(n, a, _)| (n.clone(), *a))
        .collect();
    if strip {
        elf.strip(pkg.library);
    }
    (
        elf.write(),
        BuiltExecutable {
            part_name: pkg.executable.to_string(),
            package: pkg.name.to_string(),
            version: version.to_string(),
            disabled_features: disabled.iter().map(|s| (*s).to_string()).collect(),
            symbols,
            vulnerable,
        },
    )
}

/// Build a **query** executable: the CVE package compiled like the
/// paper's queries ("the latest vulnerable version … compiled with
/// gcc 5.2 at the default optimization level"), not stripped.
///
/// # Panics
///
/// Panics on an unknown package; scan paths handling external input use
/// [`try_build_query`].
pub fn build_query(package_name: &str, arch: Arch) -> (firmup_obj::Elf, String) {
    try_build_query(package_name, arch).unwrap_or_else(|e| panic!("query build: {e}"))
}

/// Fallible [`build_query`]: unknown packages are a
/// [`crate::packages::PackageError`]. A compile failure of a *known*
/// package still panics — the package tests rule that out, so it is an
/// internal corpus bug, not an input condition.
///
/// # Errors
///
/// [`crate::packages::PackageError`] for unknown packages or a
/// versionless spec.
pub fn try_build_query(
    package_name: &str,
    arch: Arch,
) -> Result<(firmup_obj::Elf, String), crate::packages::PackageError> {
    let pkg = crate::packages::package(package_name)
        .ok_or_else(|| crate::packages::PackageError::UnknownPackage(package_name.to_string()))?;
    // Latest version that is vulnerable to *something*.
    let version = pkg
        .versions
        .iter()
        .rev()
        .find(|v| !v.vulnerable.is_empty())
        .or_else(|| pkg.latest())
        .ok_or_else(|| crate::packages::PackageError::NoVersions(package_name.to_string()))?
        .version;
    let src = crate::packages::try_source_for(pkg.name, version, &[], 0, 0)?;
    let elf = compile_source(&src, arch, &CompilerOptions::default())
        .unwrap_or_else(|e| panic!("query build {package_name} on {arch}: {e}"));
    Ok((elf, version.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::unpack;

    #[test]
    fn corpus_is_deterministic() {
        let a = generate(&CorpusConfig::tiny());
        let b = generate(&CorpusConfig::tiny());
        assert_eq!(a.images.len(), b.images.len());
        for (x, y) in a.images.iter().zip(&b.images) {
            assert_eq!(x.blob, y.blob);
            assert_eq!(x.meta, y.meta);
        }
    }

    #[test]
    fn plan_then_build_matches_generate() {
        // build_device is pure: building devices out of order must
        // reproduce generate()'s bytes exactly.
        let config = CorpusConfig::tiny();
        let whole = generate(&config);
        let p = plan(&config);
        assert_eq!(p.image_count(), whole.images.len());
        let mut rebuilt: Vec<Vec<CorpusImage>> = vec![Vec::new(); p.devices.len()];
        for (slot, dp) in p.devices.iter().enumerate().rev() {
            rebuilt[slot] = build_device(dp, config.strip);
        }
        let flat: Vec<&CorpusImage> = rebuilt.iter().flatten().collect();
        assert_eq!(flat.len(), whole.images.len());
        for (x, y) in flat.iter().zip(&whole.images) {
            assert_eq!(x.blob, y.blob);
            assert_eq!(x.meta, y.meta);
            assert_eq!(x.device, y.device);
            assert_eq!(x.is_latest, y.is_latest);
        }
    }

    #[test]
    fn scale_presets_parse_and_size() {
        for p in ScalePreset::all() {
            assert_eq!(ScalePreset::parse(p.name()), Some(p));
        }
        assert_eq!(ScalePreset::parse("nope"), None);
        assert_eq!(
            ScalePreset::Smoke.config().devices,
            CorpusConfig::default().devices
        );
        // Planning is cheap (no compilation) even at paper scale; check
        // the presets hit their advertised image counts.
        let medium = plan(&ScalePreset::Medium.config());
        assert!(
            medium.image_count() >= 500,
            "medium preset must plan >= 500 images, got {}",
            medium.image_count()
        );
        let paper = plan(&ScalePreset::Paper.config());
        assert!(
            paper.image_count() >= 2000,
            "paper preset must plan >= 2000 images, got {}",
            paper.image_count()
        );
    }

    #[test]
    fn images_unpack_and_parse() {
        let c = generate(&CorpusConfig::tiny());
        assert!(!c.images.is_empty());
        for img in &c.images {
            let u = unpack(&img.blob).unwrap();
            assert!(u.issues.is_empty(), "{}: {:?}", img.meta, u.issues);
            assert_eq!(u.parts.len(), img.truth.len());
            for part in &u.parts {
                let elf = firmup_obj::Elf::parse(&part.data).unwrap();
                assert!(
                    elf.text().is_some(),
                    "{}: {} has no text",
                    img.meta,
                    part.name
                );
            }
        }
    }

    #[test]
    fn stripping_respects_library_exports() {
        let c = generate(&CorpusConfig {
            devices: 6,
            ..CorpusConfig::tiny()
        });
        let mut saw_stripped = false;
        let mut saw_exported = false;
        for img in &c.images {
            let u = unpack(&img.blob).unwrap();
            for (part, t) in u.parts.iter().zip(&img.truth) {
                let elf = firmup_obj::Elf::parse(&part.data).unwrap();
                if t.package == "busybox" || !crate::packages::package(&t.package).unwrap().library
                {
                    assert!(elf.is_stripped(), "{} should be fully stripped", t.package);
                    saw_stripped = true;
                } else if !elf.symbols.is_empty() {
                    assert!(elf.symbols.iter().all(|s| s.global));
                    saw_exported = true;
                }
            }
        }
        assert!(saw_stripped);
        let _ = saw_exported; // libraries may or may not appear in a tiny corpus
    }

    #[test]
    fn ground_truth_records_vulnerable_procedures() {
        let c = generate(&CorpusConfig {
            devices: 9,
            max_firmware_versions: 2,
            ..CorpusConfig::tiny()
        });
        let vulns: usize = c
            .images
            .iter()
            .flat_map(|i| i.truth.iter().map(|t| t.vulnerable.len()))
            .sum();
        assert!(
            vulns > 0,
            "a 9-device corpus must contain vulnerable builds"
        );
        // Every vulnerable entry has a resolvable symbol.
        for img in &c.images {
            for t in &img.truth {
                for (name, addr) in &t.vulnerable {
                    assert_eq!(t.addr_of(name), Some(*addr));
                }
            }
        }
    }

    #[test]
    fn devices_have_exactly_one_latest() {
        let c = generate(&CorpusConfig {
            devices: 5,
            max_firmware_versions: 3,
            ..CorpusConfig::tiny()
        });
        let mut by_device: HashMap<usize, usize> = HashMap::new();
        for img in &c.images {
            if img.is_latest {
                *by_device.entry(img.device).or_default() += 1;
            }
        }
        assert_eq!(by_device.len(), 5);
        assert!(by_device.values().all(|&n| n == 1));
    }

    #[test]
    fn query_builds_are_not_stripped() {
        for arch in Arch::all() {
            let (elf, version) = build_query("wget", arch);
            assert!(!elf.is_stripped());
            assert!(elf.symbols.iter().any(|s| s.name == "ftp_retrieve_glob"));
            assert_eq!(version, "1.15", "latest vulnerable wget");
        }
    }

    #[test]
    fn unknown_query_package_is_an_error() {
        use crate::packages::PackageError;
        let e = try_build_query("definitely-not-a-package", Arch::Mips32).unwrap_err();
        assert_eq!(
            e,
            PackageError::UnknownPackage("definitely-not-a-package".into())
        );
    }

    #[test]
    fn corpus_counts() {
        let c = generate(&CorpusConfig::tiny());
        assert!(c.executable_count() >= c.images.len());
        assert!(
            c.procedure_count() > c.executable_count() * 10,
            "packages have many procedures"
        );
    }
}
