//! CRC-32 (IEEE 802.3), used by the firmware image part table.

/// Compute the CRC-32 of `data` (polynomial `0xEDB88320`, standard
/// initial/final XOR).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"firmware image payload".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            let mut corrupted = data.clone();
            corrupted[i] ^= 1;
            assert_ne!(crc32(&corrupted), base, "flip at byte {i} undetected");
        }
    }
}
