//! Crash-safe filesystem primitives for every on-disk FirmUp artifact.
//!
//! The corpus pipeline's on-disk artifacts (`corpus.fui`, checkpoint
//! segments, the manifest journal, metrics sidecars) must survive the
//! failures a 200K-executable indexing run actually meets: a `kill -9`
//! mid-write, ENOSPC, a concurrent writer, transient `EINTR`s. This
//! module is the single seam all of them go through:
//!
//! * [`write_atomic`] — temp file in the target directory → write →
//!   fsync file → rename over the destination → fsync directory.
//!   Readers observe either the old complete file or the new complete
//!   file, never a torn hybrid.
//! * [`acquire_lock`] — an advisory lock file (`index.lock`, pid +
//!   heartbeat mtime) so two concurrent `firmup index --out DIR`
//!   writers fail fast with a structured [`LockError::Held`] instead of
//!   corrupting each other's output. Stale locks (dead pid, or a
//!   heartbeat older than [`LockOptions::stale_after`]) are stolen.
//! * [`retry_io`] — bounded retry with exponential backoff for
//!   *transient* IO failures, jittered by the crate's deterministic
//!   SplitMix64 so chaos trials replay byte-for-byte.
//! * [`crash_point`] — deterministic crash injection: when the
//!   [`CRASH_POINT_ENV`] environment variable arms a named point, the
//!   process aborts the n-th time execution reaches it. The
//!   crash-consistency chaos matrix (`firmup chaos --crash-matrix`)
//!   uses this to kill a child `firmup index` at exact points
//!   (after-temp-write, before-rename, mid-journal-append, between
//!   segments) and then assert that resume restores a byte-identical
//!   index.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::rng::SmallRng;

/// File name of the advisory writer lock inside an index directory.
pub const LOCK_FILE: &str = "index.lock";

/// Environment variable arming one deterministic crash point:
/// `name[:n]` aborts the process the n-th time [`crash_point`] is
/// reached with that name (default n = 1).
pub const CRASH_POINT_ENV: &str = "FIRMUP_CRASH_POINT";

/// Crash point: the temp file's bytes are written but not yet fsynced
/// or renamed into place.
pub const CP_AFTER_TEMP_WRITE: &str = "durable.after_temp_write";
/// Crash point: the temp file is durable but the rename over the
/// destination has not happened.
pub const CP_BEFORE_RENAME: &str = "durable.before_rename";
/// Crash point: half of a journal entry's bytes are on disk (a torn
/// append the journal reader must detect and discard).
pub const CP_MID_JOURNAL_APPEND: &str = "journal.mid_append";
/// Crash point: between two committed per-image index segments.
pub const CP_BETWEEN_SEGMENTS: &str = "index.between_segments";

static CRASH_HITS: AtomicU64 = AtomicU64::new(0);

/// Parse a crash spec `name[:n]` into its point name and 1-based
/// trigger count (a missing or unparseable count means 1).
pub fn parse_crash_spec(spec: &str) -> (&str, u64) {
    match spec.rsplit_once(':') {
        Some((name, n)) => match n.parse::<u64>() {
            Ok(n) if n > 0 => (name, n),
            _ => (spec, 1),
        },
        None => (spec, 1),
    }
}

/// Whether the named crash point is armed by [`CRASH_POINT_ENV`]
/// (regardless of how many hits remain before it fires). Callers that
/// need to stage partial writes around a point (the journal's torn
/// append) use this to avoid paying the staging cost in normal runs.
pub fn crash_armed(name: &str) -> bool {
    std::env::var(CRASH_POINT_ENV).is_ok_and(|spec| parse_crash_spec(&spec).0 == name)
}

/// Deterministic crash injection: if [`CRASH_POINT_ENV`] arms this
/// point, count the hit and abort the process (no destructors, no
/// flushes — the closest safe approximation of `kill -9`) when the
/// armed occurrence is reached. A no-op in normal runs.
pub fn crash_point(name: &str) {
    let Ok(spec) = std::env::var(CRASH_POINT_ENV) else {
        return;
    };
    let (point, nth) = parse_crash_spec(&spec);
    if point != name {
        return;
    }
    let hit = CRASH_HITS.fetch_add(1, Ordering::SeqCst) + 1;
    if hit == nth {
        eprintln!("firmup: injected crash at {name} (hit {hit})");
        std::process::abort();
    }
}

/// FNV-1a 64-bit over a sequence of byte chunks (chunk boundaries are
/// delimited so `["ab","c"]` and `["a","bc"]` hash differently).
pub fn fnv1a_64(chunks: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut step = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for chunk in chunks {
        for &b in *chunk {
            step(b);
        }
        step(0xff);
    }
    h
}

/// Maximum attempts [`retry_io`] makes (1 initial + retries).
pub const MAX_IO_ATTEMPTS: u32 = 4;

/// Whether an IO error is worth retrying: interruption and
/// resource-pressure kinds that routinely clear on their own. Anything
/// else (ENOSPC, permission, missing path) fails immediately.
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Backoff before retry number `attempt` (1-based): exponential base
/// with SplitMix64 jitter, deterministic for a given rng stream so
/// chaos trials replay identically. Capped well under a second — this
/// is for transient hiccups, not outage-riding.
pub fn backoff_delay(attempt: u32, rng: &mut SmallRng) -> Duration {
    let base_ms = 1u64 << attempt.min(6);
    Duration::from_micros(base_ms * 1000 + rng.gen_range(0..1000u64))
}

/// Run `op`, retrying transient IO failures up to [`MAX_IO_ATTEMPTS`]
/// total attempts with deterministic jittered backoff (seeded from
/// `label`, so a given call site always replays the same delays).
///
/// Telemetry: each retry increments `io.retries`.
///
/// # Errors
///
/// The last error once attempts are exhausted, or the first
/// non-transient error immediately.
pub fn retry_io<T>(label: &str, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let mut rng = SmallRng::seed_from_u64(fnv1a_64(&[label.as_bytes()]));
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if attempt + 1 < MAX_IO_ATTEMPTS && is_transient(&e) => {
                attempt += 1;
                firmup_telemetry::incr("io.retries");
                std::thread::sleep(backoff_delay(attempt, &mut rng));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Durably replace `path` with `bytes`: write a temp file in the same
/// directory, fsync it, rename it over `path`, then fsync the
/// directory so the rename itself is durable. A crash at any point
/// leaves either the old complete file or the new complete file (plus,
/// at worst, a stray `.*.tmp.*` file that `firmup fsck` sweeps).
///
/// # Errors
///
/// Any filesystem failure after transient-retry exhaustion; the temp
/// file is removed on error.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "write_atomic: no file name"))?;
    let tmp = parent.join(format!(".{name}.tmp.{}", std::process::id()));
    let result = (|| {
        let mut f = retry_io("write_atomic.create", || File::create(&tmp))?;
        // `write_all` already retries `Interrupted` internally.
        f.write_all(bytes)?;
        crash_point(CP_AFTER_TEMP_WRITE);
        retry_io("write_atomic.sync", || f.sync_all())?;
        drop(f);
        crash_point(CP_BEFORE_RENAME);
        retry_io("write_atomic.rename", || fs::rename(&tmp, path))?;
        // Make the directory entry durable too; best effort — some
        // filesystems refuse fsync on directories.
        if let Ok(d) = File::open(&parent) {
            let _ = d.sync_all();
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Whether a directory entry name looks like a [`write_atomic`] temp
/// file (`.NAME.tmp.PID`) — the only kind of debris an interrupted
/// atomic write can leave. `firmup fsck` sweeps these.
pub fn is_tmp_debris(name: &str) -> bool {
    name.starts_with('.') && name.contains(".tmp.")
}

// ---- advisory writer lock ------------------------------------------------

/// Structured lock-acquisition failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// Another live writer holds the lock.
    Held {
        /// Pid recorded in the lock file (0 if unreadable).
        pid: u64,
        /// The lock file path.
        path: String,
        /// The holder's operation scope (`index`, `add`, `compact`,
        /// `fsck`; empty when the lock predates scoping or the body was
        /// unreadable).
        scope: String,
    },
    /// Filesystem failure while creating or inspecting the lock.
    Io {
        /// The lock file path.
        path: String,
        /// Rendered `std::io::Error`.
        message: String,
    },
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Held { pid, path, scope } => {
                let what = if scope.is_empty() {
                    "a `firmup` writer".to_string()
                } else {
                    format!("a `firmup {scope}` run")
                };
                write!(
                    f,
                    "index lock held by pid {pid} ({path}): {what} is writing this directory — \
                     wait for it, or delete the lock file if that process is gone"
                )
            }
            LockError::Io { path, message } => write!(f, "lock file {path}: {message}"),
        }
    }
}

impl std::error::Error for LockError {}

/// Lock-acquisition tuning.
#[derive(Debug, Clone)]
pub struct LockOptions {
    /// A lock whose heartbeat mtime is older than this is presumed
    /// abandoned and stolen (the dead-pid check catches most crashes
    /// instantly on Linux; this bound also covers hung writers and
    /// recycled pids).
    pub stale_after: Duration,
    /// Operation scope recorded in the lock body (`index`, `add`,
    /// `compact`, `fsck`). A rival writer's [`LockError::Held`] carries
    /// the holder's scope, so `firmup compact` colliding with a live
    /// `firmup index --add` names exactly what it collided with.
    pub scope: String,
}

impl Default for LockOptions {
    fn default() -> LockOptions {
        LockOptions {
            stale_after: Duration::from_secs(600),
            scope: "index".to_string(),
        }
    }
}

impl LockOptions {
    /// Defaults, with `FIRMUP_LOCK_STALE_MS` overriding the staleness
    /// bound (used by tests to exercise the steal path quickly).
    pub fn from_env() -> LockOptions {
        let mut opts = LockOptions::default();
        if let Some(ms) = std::env::var("FIRMUP_LOCK_STALE_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            opts.stale_after = Duration::from_millis(ms);
        }
        opts
    }

    /// Environment defaults with an explicit operation scope.
    pub fn scoped(scope: &str) -> LockOptions {
        let mut opts = LockOptions::from_env();
        opts.scope = scope.to_string();
        opts
    }
}

/// A held advisory lock; dropping it releases (deletes) the lock file.
/// An aborted process leaves the file behind with a dead pid, which the
/// next writer detects and steals.
#[derive(Debug)]
pub struct LockGuard {
    path: PathBuf,
    scope: String,
}

impl LockGuard {
    /// The lock file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The operation scope this lock was acquired under.
    pub fn scope(&self) -> &str {
        &self.scope
    }

    /// Refresh the heartbeat mtime (writers call this after each
    /// committed segment so a long build is never mistaken for stale).
    pub fn heartbeat(&self) {
        let _ = fs::write(&self.path, lock_body(&self.scope));
    }
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

fn lock_body(scope: &str) -> String {
    format!("pid {}\nscope {scope}\n", std::process::id())
}

/// Parse the pid out of a lock file's contents.
fn parse_lock_pid(contents: &str) -> Option<u64> {
    let rest = contents.strip_prefix("pid ")?;
    rest.lines().next()?.trim().parse().ok()
}

/// Parse the operation scope out of a lock file's contents. Empty for
/// pre-scoping lock bodies (a bare `pid N\n` line still parses — old
/// and new writers interoperate on the same directory).
fn parse_lock_scope(contents: &str) -> String {
    contents
        .lines()
        .find_map(|l| l.strip_prefix("scope "))
        .unwrap_or("")
        .trim()
        .to_string()
}

/// Whether the process with `pid` is alive: `Some(true/false)` on
/// Linux (via `/proc`), `None` where liveness cannot be determined.
pub fn pid_alive(pid: u64) -> Option<bool> {
    #[cfg(target_os = "linux")]
    {
        Some(Path::new(&format!("/proc/{pid}")).exists())
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = pid;
        None
    }
}

/// Acquire the advisory writer lock for `dir` (created if needed).
///
/// A fresh lock file is created with `O_EXCL`; if one already exists it
/// is stolen only when stale — its pid is dead (Linux), its contents
/// are garbage (a writer died mid-create), or its heartbeat mtime is
/// older than [`LockOptions::stale_after`]. Stealing goes through a
/// rename so two stealers cannot both win.
///
/// # Errors
///
/// [`LockError::Held`] when a live writer holds the lock;
/// [`LockError::Io`] for filesystem failures.
pub fn acquire_lock(dir: &Path, opts: &LockOptions) -> Result<LockGuard, LockError> {
    let path = dir.join(LOCK_FILE);
    let io_err = |e: io::Error| LockError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    };
    fs::create_dir_all(dir).map_err(io_err)?;
    for attempt in 0..2 {
        match OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(mut f) => {
                f.write_all(lock_body(&opts.scope).as_bytes())
                    .map_err(io_err)?;
                let _ = f.sync_all();
                return Ok(LockGuard {
                    path,
                    scope: opts.scope.clone(),
                });
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                let contents = fs::read_to_string(&path).ok();
                let holder = contents.as_deref().and_then(parse_lock_pid);
                let holder_scope = contents
                    .as_deref()
                    .map(parse_lock_scope)
                    .unwrap_or_default();
                let age = fs::metadata(&path)
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|t| t.elapsed().ok());
                let dead = match holder {
                    None => true, // unreadable or garbage: writer died mid-create
                    Some(pid) => pid_alive(pid) == Some(false),
                };
                let expired = age.is_some_and(|a| a >= opts.stale_after);
                if (dead || expired) && attempt == 0 {
                    let side = dir.join(format!(".{LOCK_FILE}.stale.{}", std::process::id()));
                    if fs::rename(&path, &side).is_ok() {
                        let _ = fs::remove_file(&side);
                    }
                    continue;
                }
                return Err(LockError::Held {
                    pid: holder.unwrap_or(0),
                    path: path.display().to_string(),
                    scope: holder_scope,
                });
            }
            Err(e) => return Err(io_err(e)),
        }
    }
    Err(LockError::Held {
        pid: 0,
        path: path.display().to_string(),
        scope: String::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "firmup-durable-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn write_atomic_creates_and_replaces() {
        let dir = temp_dir("atomic");
        let path = dir.join("data.bin");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer contents").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer contents");
        // No temp debris left behind.
        let leftovers: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| is_tmp_debris(n))
            .collect();
        assert!(leftovers.is_empty(), "debris: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_rejects_pathless_targets() {
        assert!(write_atomic(Path::new("/"), b"x").is_err());
    }

    #[test]
    fn retry_recovers_from_transient_errors() {
        firmup_telemetry::enable();
        let before = firmup_telemetry::counter("io.retries").get();
        let mut failures = 2;
        let v = retry_io("test.transient", || {
            if failures > 0 {
                failures -= 1;
                Err(io::Error::new(io::ErrorKind::Interrupted, "eintr"))
            } else {
                Ok(42)
            }
        })
        .unwrap();
        assert_eq!(v, 42);
        assert_eq!(failures, 0);
        assert!(firmup_telemetry::counter("io.retries").get() >= before + 2);
    }

    #[test]
    fn retry_gives_up_on_hard_errors_immediately() {
        let mut calls = 0;
        let r: io::Result<()> = retry_io("test.hard", || {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::PermissionDenied, "nope"))
        });
        assert!(r.is_err());
        assert_eq!(calls, 1, "non-transient errors must not retry");
    }

    #[test]
    fn retry_exhausts_bounded_attempts() {
        let mut calls = 0;
        let r: io::Result<()> = retry_io("test.exhaust", || {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::WouldBlock, "busy"))
        });
        assert!(r.is_err());
        assert_eq!(calls, MAX_IO_ATTEMPTS, "must stop at the attempt cap");
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for attempt in 1..MAX_IO_ATTEMPTS {
            let da = backoff_delay(attempt, &mut a);
            let db = backoff_delay(attempt, &mut b);
            assert_eq!(da, db, "jitter must replay");
            assert!(da < Duration::from_millis(200), "backoff too long: {da:?}");
        }
    }

    #[test]
    fn crash_spec_parses_names_and_counts() {
        assert_eq!(
            parse_crash_spec("durable.before_rename"),
            ("durable.before_rename", 1)
        );
        assert_eq!(
            parse_crash_spec("index.between_segments:3"),
            ("index.between_segments", 3)
        );
        // A malformed count falls back to the whole spec, count 1.
        assert_eq!(
            parse_crash_spec("weird:notanumber"),
            ("weird:notanumber", 1)
        );
    }

    #[test]
    fn crash_point_is_inert_without_the_env() {
        // The test harness must not set the env; reaching every point is
        // then a no-op.
        assert!(std::env::var(CRASH_POINT_ENV).is_err());
        crash_point(CP_AFTER_TEMP_WRITE);
        crash_point(CP_BEFORE_RENAME);
        crash_point(CP_MID_JOURNAL_APPEND);
        crash_point(CP_BETWEEN_SEGMENTS);
        assert!(!crash_armed(CP_MID_JOURNAL_APPEND));
    }

    #[test]
    fn lock_roundtrip_and_mutual_exclusion() {
        let dir = temp_dir("lock");
        let opts = LockOptions::default();
        let guard = acquire_lock(&dir, &opts).unwrap();
        assert!(guard.path().is_file());
        // Second acquisition fails fast with the holder's pid and scope.
        match acquire_lock(&dir, &opts) {
            Err(LockError::Held { pid, path, scope }) => {
                assert_eq!(pid, u64::from(std::process::id()));
                assert!(path.contains(LOCK_FILE));
                assert_eq!(scope, "index");
            }
            other => panic!("expected Held, got {other:?}"),
        }
        let lock_path = guard.path().to_path_buf();
        drop(guard);
        assert!(!lock_path.exists(), "drop must release the lock");
        // Reacquisition succeeds after release.
        let again = acquire_lock(&dir, &opts).unwrap();
        drop(again);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_pid_lock_is_stolen() {
        let dir = temp_dir("stale-pid");
        // Pid far above any default pid_max: guaranteed dead.
        fs::write(dir.join(LOCK_FILE), "pid 4199999999\n").unwrap();
        let guard = acquire_lock(&dir, &LockOptions::default()).unwrap();
        drop(guard);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rival_scopes_collide_and_name_each_other() {
        let dir = temp_dir("scopes");
        let add = acquire_lock(&dir, &LockOptions::scoped("add")).unwrap();
        assert_eq!(add.scope(), "add");
        // A concurrent compact fails fast and learns it hit an add.
        match acquire_lock(&dir, &LockOptions::scoped("compact")) {
            Err(LockError::Held { scope, .. }) => assert_eq!(scope, "add"),
            other => panic!("expected Held, got {other:?}"),
        }
        // The rendered error names the holder's operation, so the
        // structured FirmUpError wrapping it does too.
        let err = acquire_lock(&dir, &LockOptions::scoped("compact")).unwrap_err();
        assert!(err.to_string().contains("firmup add"), "{err}");
        // Heartbeats preserve the scope line.
        add.heartbeat();
        match acquire_lock(&dir, &LockOptions::scoped("index")) {
            Err(LockError::Held { scope, .. }) => assert_eq!(scope, "add"),
            other => panic!("expected Held, got {other:?}"),
        }
        drop(add);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_scopeless_lock_bodies_still_parse() {
        let dir = temp_dir("legacy-lock");
        // A live-pid legacy lock (no scope line) must still read as Held
        // with an empty scope, not as garbage to steal.
        fs::write(dir.join(LOCK_FILE), format!("pid {}\n", std::process::id())).unwrap();
        match acquire_lock(&dir, &LockOptions::scoped("add")) {
            Err(LockError::Held { pid, scope, .. }) => {
                assert_eq!(pid, u64::from(std::process::id()));
                assert_eq!(scope, "");
            }
            other => panic!("expected Held, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_add_and_compact_locks_are_stolen() {
        // One steal drill per writer scope: a dead-pid lock left by a
        // crashed `index --add` or `compact` must not wedge the next run.
        for scope in ["add", "compact"] {
            let dir = temp_dir(&format!("stale-{scope}"));
            fs::write(
                dir.join(LOCK_FILE),
                format!("pid 4199999999\nscope {scope}\n"),
            )
            .unwrap();
            let guard = acquire_lock(&dir, &LockOptions::scoped(scope)).unwrap();
            assert_eq!(guard.scope(), scope);
            drop(guard);
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn garbage_lock_contents_are_stolen() {
        let dir = temp_dir("stale-garbage");
        fs::write(dir.join(LOCK_FILE), "???").unwrap();
        let guard = acquire_lock(&dir, &LockOptions::default()).unwrap();
        drop(guard);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn heartbeat_defeats_mtime_staleness() {
        let dir = temp_dir("heartbeat");
        let opts = LockOptions {
            stale_after: Duration::from_millis(80),
            ..LockOptions::default()
        };
        let guard = acquire_lock(&dir, &opts).unwrap();
        std::thread::sleep(Duration::from_millis(120));
        guard.heartbeat();
        // The heartbeat refreshed mtime; a rival must still see Held.
        assert!(matches!(
            acquire_lock(&dir, &opts),
            Err(LockError::Held { .. })
        ));
        drop(guard);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv_distinguishes_chunk_boundaries() {
        assert_ne!(fnv1a_64(&[b"ab", b"c"]), fnv1a_64(&[b"a", b"bc"]));
        assert_eq!(fnv1a_64(&[b"abc"]), fnv1a_64(&[b"abc"]));
    }

    #[test]
    fn tmp_debris_names_are_recognized() {
        assert!(is_tmp_debris(".corpus.fui.tmp.1234"));
        assert!(!is_tmp_debris("corpus.fui"));
        assert!(!is_tmp_debris(".hidden"));
    }
}
