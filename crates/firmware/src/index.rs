//! The on-disk corpus-index container ("FUIX") — byte-level layer.
//!
//! `firmup index` persists lifted-and-canonicalized executables so that
//! repeated scans (`firmup scan --index DIR`) skip the dominant
//! unpack → parse → lift → canonicalize cost entirely. This module owns
//! the *container*: a versioned, checksummed, truncation-safe record
//! file, deliberately shaped like the FWIM image format ([`crate::image`])
//! so the same fault-injection operators exercise both parsers. The
//! *typed* layer — how `ExecutableRep`, the strand postings table, and
//! the global context are encoded into record payloads — lives in
//! `firmup-core::persist`, which depends on this crate (never the other
//! way around).
//!
//! # File layout (format version 1)
//!
//! ```text
//! offset 0   magic           b"FUIX"
//! offset 4   format version  u32 LE (1)
//! offset 8   record count    u32 LE (N, capped at 1_048_576)
//! then       record table    N × { name: u32 len + UTF-8 bytes,
//!                                  payload length: u32 LE,
//!                                  payload crc32:  u32 LE }
//! then       payloads        concatenated in table order
//! ```
//!
//! # File layout (format version 2 — offset table, lazy reads)
//!
//! ```text
//! offset 0   magic           b"FUIX"
//! offset 4   format version  u32 LE (2)
//! offset 8   record count    u32 LE (N, capped at 1_048_576)
//! then       record table    N × { name: u32 len + UTF-8 bytes,
//!                                  payload offset: u64 LE (absolute),
//!                                  payload length: u32 LE,
//!                                  payload crc32:  u32 LE }
//! then       table crc32     u32 LE over bytes [4 .. table end)
//! then       payload region  (offsets point into it, table order)
//! ```
//!
//! The explicit offsets let a reader locate any record without touching
//! the others — [`read_table`] parses and verifies *only* the header and
//! table (the table CRC catches offset-table bit flips eagerly), and
//! [`record_bytes`] bounds-checks and CRC-verifies one payload on
//! demand. That is the substrate of the lazy `CorpusIndex` load path in
//! `firmup-core::persist`: postings and metadata records are decoded at
//! open, each `exe:<i>` only when a scan actually needs that candidate.
//!
//! Integrity and forward-compatibility rules (see ARCHITECTURE.md §4 for
//! the full specification):
//!
//! * every multi-byte read is bounds-checked — a cut-short file yields
//!   [`IndexError::Truncated`], never a panic or a wild slice;
//! * each record payload carries a CRC-32 ([`crate::crc::crc32`]); a
//!   mismatch yields [`IndexError::ChecksumMismatch`] naming the record;
//! * in version 2 the record table additionally carries its own CRC-32,
//!   so a damaged offset table is rejected at open instead of steering
//!   lazy reads to wrong byte ranges;
//! * a future *compatible* extension adds new record names — readers
//!   must skip records they do not recognize;
//! * an *incompatible* change bumps the format version; readers reject
//!   versions above [`MAX_SUPPORTED_VERSION`] with
//!   [`IndexError::UnsupportedVersion`] instead of misparsing them.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::crc::crc32;

/// Container magic (`b"FUIX"` — FirmUp IndeX).
pub const MAGIC: &[u8; 4] = b"FUIX";

/// Format version 1: length-only record table, payloads concatenated
/// after it. Readable (eagerly) and writable for back compat.
pub const FORMAT_V1: u32 = 1;

/// Format version 2: record table with absolute payload offsets and a
/// table-level CRC-32, enabling lazy per-record reads.
pub const FORMAT_V2: u32 = 2;

/// Highest format version this build reads. Bump only for layout
/// changes an older reader would misparse; additive changes use new
/// record names instead.
pub const MAX_SUPPORTED_VERSION: u32 = FORMAT_V2;

/// Highest record count a reader accepts; anything larger is treated as
/// a corrupt header (the same defensive cap the FWIM unpacker applies
/// to its part table).
pub const MAX_RECORDS: u32 = 1 << 20;

/// File name of the index inside its directory (`firmup index --out DIR`
/// writes `DIR/corpus.fui`).
pub const INDEX_FILE: &str = "corpus.fui";

/// Path of the index file inside an index directory.
pub fn index_path(dir: &Path) -> PathBuf {
    dir.join(INDEX_FILE)
}

/// One named, checksummed record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Record name (e.g. `meta`, `exe:3`, `postings`, `context`).
    pub name: String,
    /// Raw payload bytes; the typed encoding is `firmup-core`'s concern.
    pub payload: Vec<u8>,
}

impl Record {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, payload: Vec<u8>) -> Record {
        Record {
            name: name.into(),
            payload,
        }
    }
}

/// Structured container read failure. Every variant is a *diagnosis*:
/// chaos testing requires that no input — bit-flipped, truncated,
/// version-bumped, or oversized — escalates past this enum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// No index file exists at the path (distinct from a damaged one:
    /// the fix is `firmup index`, not repair).
    Missing {
        /// Path that was opened.
        path: String,
    },
    /// The blob does not start with the FUIX magic.
    NotAnIndex,
    /// The file declares a format version this reader does not support.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Highest version this reader supports.
        supported: u32,
    },
    /// The file ran out while reading the named structure.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// A record payload's CRC-32 did not match its table entry.
    ChecksumMismatch {
        /// Name of the damaged record.
        record: String,
    },
    /// A structurally invalid value (bogus record count, non-UTF-8 name,
    /// undecodable typed payload).
    Malformed {
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Missing { path } => write!(
                f,
                "no index at {path} — run `firmup index` first (or wait for an in-progress build)"
            ),
            IndexError::NotAnIndex => f.write_str("not a firmup index (bad magic)"),
            IndexError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported index format version {found} (this build reads ≤ {supported})"
            ),
            IndexError::Truncated { context } => {
                write!(f, "truncated index while reading {context}")
            }
            IndexError::ChecksumMismatch { record } => {
                write!(f, "index record `{record}` failed its checksum")
            }
            IndexError::Malformed { reason } => write!(f, "malformed index: {reason}"),
        }
    }
}

impl std::error::Error for IndexError {}

fn push_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn read_u32(b: &[u8], pos: &mut usize, context: &'static str) -> Result<u32, IndexError> {
    let s = b
        .get(*pos..pos.saturating_add(4))
        .ok_or(IndexError::Truncated { context })?;
    *pos += 4;
    Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
}

fn read_u64(b: &[u8], pos: &mut usize, context: &'static str) -> Result<u64, IndexError> {
    let s = b
        .get(*pos..pos.saturating_add(8))
        .ok_or(IndexError::Truncated { context })?;
    *pos += 8;
    Ok(u64::from_le_bytes([
        s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
    ]))
}

fn read_str(b: &[u8], pos: &mut usize, context: &'static str) -> Result<String, IndexError> {
    let len = read_u32(b, pos, context)? as usize;
    if len > b.len() {
        return Err(IndexError::Truncated { context });
    }
    let s = b
        .get(*pos..pos.saturating_add(len))
        .ok_or(IndexError::Truncated { context })?;
    *pos += len;
    String::from_utf8(s.to_vec()).map_err(|_| IndexError::Malformed {
        reason: format!("non-UTF-8 string in {context}"),
    })
}

// ---------------------------------------------------------------------------
// Varints
// ---------------------------------------------------------------------------

/// Append `v` as an LEB128 varint: 7 data bits per byte, least
/// significant group first, high bit set on every byte but the last.
/// A `u64` takes at most 10 bytes; values below 128 take one.
pub fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read one LEB128 varint written by [`push_varint`]. Structured
/// failure on truncation, on runs longer than 10 bytes, and on a 10th
/// byte that would shift bits past the 64th — a damaged length can
/// never escalate into a panic or a silently wrapped value.
pub fn read_varint(b: &[u8], pos: &mut usize, context: &'static str) -> Result<u64, IndexError> {
    let mut v: u64 = 0;
    for i in 0..10 {
        let byte = *b
            .get(pos.saturating_add(i))
            .ok_or(IndexError::Truncated { context })?;
        let data = u64::from(byte & 0x7f);
        // Bytes 0..9 contribute 63 bits; the 10th may only carry the
        // single remaining one.
        if i == 9 && data > 1 {
            return Err(IndexError::Malformed {
                reason: format!("varint overflows u64 in {context}"),
            });
        }
        v |= data << (7 * i);
        if byte & 0x80 == 0 {
            *pos += i + 1;
            return Ok(v);
        }
    }
    Err(IndexError::Malformed {
        reason: format!("varint longer than 10 bytes in {context}"),
    })
}

/// Serialize records into a version-1 FUIX container blob (the
/// back-compat writer; new indexes use [`write_container_v2`]).
pub fn write_container(records: &[Record]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_V1.to_le_bytes());
    out.extend_from_slice(&(records.len() as u32).to_le_bytes());
    for r in records {
        push_str(&mut out, &r.name);
        out.extend_from_slice(&(r.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&r.payload).to_le_bytes());
    }
    for r in records {
        out.extend_from_slice(&r.payload);
    }
    out
}

/// Serialize records into a version-2 FUIX container blob: the record
/// table carries absolute payload offsets and is sealed with its own
/// CRC-32, so readers can verify the table eagerly and fetch payloads
/// lazily.
pub fn write_container_v2(records: &[Record]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_V2.to_le_bytes());
    out.extend_from_slice(&(records.len() as u32).to_le_bytes());
    // The table's byte size is known up front: name fields plus the
    // fixed 16 bytes (offset u64 + len u32 + crc u32) per record, plus
    // the trailing table CRC.
    let table_bytes: usize = records.iter().map(|r| 4 + r.name.len() + 16).sum();
    let mut offset = (out.len() + table_bytes + 4) as u64;
    for r in records {
        push_str(&mut out, &r.name);
        out.extend_from_slice(&offset.to_le_bytes());
        out.extend_from_slice(&(r.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&r.payload).to_le_bytes());
        offset += r.payload.len() as u64;
    }
    let table_crc = crc32(&out[4..]);
    out.extend_from_slice(&table_crc.to_le_bytes());
    for r in records {
        out.extend_from_slice(&r.payload);
    }
    out
}

/// One parsed record-table row: where a payload lives and how to verify
/// it, without having read it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableEntry {
    /// Record name.
    pub name: String,
    /// Absolute offset of the payload in the blob.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// CRC-32 of the payload.
    pub crc: u32,
}

/// Parse and verify a FUIX container's header and record table only —
/// no payload bytes are read. Returns the format version and one
/// [`TableEntry`] per record (for version 1, offsets are synthesized
/// from the cumulative lengths, so the lazy accessors work on both
/// layouts). For version 2 the table CRC is verified here, so a
/// bit-flipped or truncated offset table is a structured error at open
/// — it can never steer a later [`record_bytes`] to a wrong range.
///
/// # Errors
///
/// [`IndexError::NotAnIndex`] (bad magic),
/// [`IndexError::UnsupportedVersion`], [`IndexError::Truncated`]
/// (header or table cut short), [`IndexError::Malformed`] (bogus record
/// count, non-UTF-8 name, payload offset inside the table), or
/// [`IndexError::ChecksumMismatch`] on the v2 table CRC (reported as
/// record `<table>`).
pub fn read_table(blob: &[u8]) -> Result<(u32, Vec<TableEntry>), IndexError> {
    if blob.len() < 4 || &blob[0..4] != MAGIC {
        return Err(IndexError::NotAnIndex);
    }
    let mut pos = 4usize;
    let version = read_u32(blob, &mut pos, "format version")?;
    if version > MAX_SUPPORTED_VERSION {
        return Err(IndexError::UnsupportedVersion {
            found: version,
            supported: MAX_SUPPORTED_VERSION,
        });
    }
    let count = read_u32(blob, &mut pos, "record count")?;
    if count > MAX_RECORDS {
        return Err(IndexError::Malformed {
            reason: format!("record count {count} exceeds the {MAX_RECORDS} cap"),
        });
    }
    let mut entries = Vec::with_capacity(count as usize);
    if version >= FORMAT_V2 {
        for _ in 0..count {
            let name = read_str(blob, &mut pos, "record table")?;
            let offset = read_u64(blob, &mut pos, "record table")?;
            let len = read_u32(blob, &mut pos, "record table")?;
            let crc = read_u32(blob, &mut pos, "record table")?;
            entries.push(TableEntry {
                name,
                offset,
                len,
                crc,
            });
        }
        let table_end = pos;
        let declared = read_u32(blob, &mut pos, "record table checksum")?;
        if crc32(&blob[4..table_end]) != declared {
            return Err(IndexError::ChecksumMismatch {
                record: "<table>".to_string(),
            });
        }
        // Offsets pointing back into the header/table would alias
        // structure bytes as payload — structurally invalid even if the
        // payload CRC happens to hold.
        let payload_base = pos as u64;
        if let Some(e) = entries.iter().find(|e| e.offset < payload_base) {
            return Err(IndexError::Malformed {
                reason: format!(
                    "record `{}` declares payload offset {} inside the table (payloads start at \
                     {payload_base})",
                    e.name, e.offset
                ),
            });
        }
    } else {
        for _ in 0..count {
            let name = read_str(blob, &mut pos, "record table")?;
            let len = read_u32(blob, &mut pos, "record table")?;
            let crc = read_u32(blob, &mut pos, "record table")?;
            entries.push(TableEntry {
                name,
                offset: 0,
                len,
                crc,
            });
        }
        // v1 has no explicit offsets: payloads follow the table in
        // record order.
        let mut offset = pos as u64;
        for e in &mut entries {
            e.offset = offset;
            offset += u64::from(e.len);
        }
    }
    Ok((version, entries))
}

/// Fetch and verify one record's payload bytes by its table entry —
/// the lazy read path. Bounds are checked (a cut-short payload region
/// is [`IndexError::Truncated`]) and the payload CRC-32 is verified on
/// every call.
///
/// # Errors
///
/// [`IndexError::Truncated`] when the blob ends before the payload
/// range, [`IndexError::ChecksumMismatch`] naming the record when its
/// bytes fail the CRC.
pub fn record_bytes<'a>(blob: &'a [u8], entry: &TableEntry) -> Result<&'a [u8], IndexError> {
    let start = usize::try_from(entry.offset).map_err(|_| IndexError::Truncated {
        context: "record payload",
    })?;
    let payload = blob
        .get(start..start.saturating_add(entry.len as usize))
        .ok_or(IndexError::Truncated {
            context: "record payload",
        })?;
    if crc32(payload) != entry.crc {
        return Err(IndexError::ChecksumMismatch {
            record: entry.name.clone(),
        });
    }
    Ok(payload)
}

/// Parse a FUIX container blob (either format version) back into its
/// records, eagerly verifying every payload.
///
/// # Errors
///
/// Returns a structured [`IndexError`] for every class of damage: wrong
/// magic, unsupported version, truncation anywhere (header, table,
/// payload region), a bogus record count, a non-UTF-8 record name, a
/// damaged v2 table checksum, or a payload whose CRC-32 disagrees with
/// the table. Unlike the FWIM unpacker there is no carving fallback and
/// no quarantine: an index is a *cache*, so any damage invalidates the
/// whole file and the caller rebuilds it from the source images.
pub fn read_container(blob: &[u8]) -> Result<Vec<Record>, IndexError> {
    let (_, entries) = read_table(blob)?;
    let mut records = Vec::with_capacity(entries.len());
    for entry in entries {
        let payload = record_bytes(blob, &entry)?.to_vec();
        records.push(Record {
            name: entry.name,
            payload,
        });
    }
    Ok(records)
}

// ---- manifest journal & checkpoint segments ------------------------------

/// File name of the checkpoint manifest journal inside an index
/// directory: one line per committed per-image segment.
pub const JOURNAL_FILE: &str = "journal.fuj";

/// Subdirectory holding per-image checkpoint segments.
pub const SEGMENTS_DIR: &str = "segments";

/// Path of the manifest journal inside an index directory.
pub fn journal_path(dir: &Path) -> PathBuf {
    dir.join(JOURNAL_FILE)
}

/// Path of the segments subdirectory inside an index directory.
pub fn segments_dir(dir: &Path) -> PathBuf {
    dir.join(SEGMENTS_DIR)
}

/// Canonical segment file name for an image digest.
pub fn segment_file_name(digest: u64) -> String {
    format!("seg-{digest:016x}.fui")
}

/// Content digest of a source image: FNV-1a 64 over the path tag and
/// the raw bytes (chunk-delimited, so tag/content confusion is
/// impossible). Identifies which segment belongs to which image across
/// restarts.
pub fn image_digest(tag: &str, bytes: &[u8]) -> u64 {
    crate::durable::fnv1a_64(&[tag.as_bytes(), bytes])
}

/// One committed checkpoint: image digest → durable segment file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// [`image_digest`] of the source image.
    pub digest: u64,
    /// CRC-32 of the full segment file's bytes.
    pub crc: u32,
    /// Number of executables the segment holds.
    pub executables: u32,
    /// Segment file name inside [`SEGMENTS_DIR`].
    pub segment: String,
}

/// Render one journal line: `seg <digest> <crc> <count> <file> <linecrc>\n`,
/// where `linecrc` is the CRC-32 of everything before its own field —
/// a torn append (crash mid-write) fails this check and is discarded by
/// [`parse_journal`] instead of poisoning the manifest.
pub fn render_journal_entry(e: &JournalEntry) -> String {
    let body = format!(
        "seg {:016x} {:08x} {} {}",
        e.digest, e.crc, e.executables, e.segment
    );
    let linecrc = crc32(body.as_bytes());
    format!("{body} {linecrc:08x}\n")
}

fn parse_journal_line(line: &str) -> Option<JournalEntry> {
    let (body, crc_field) = line.rsplit_once(' ')?;
    let linecrc = u32::from_str_radix(crc_field.trim(), 16).ok()?;
    if crc32(body.as_bytes()) != linecrc {
        return None;
    }
    let mut fields = body.split(' ');
    if fields.next()? != "seg" {
        return None;
    }
    let digest = u64::from_str_radix(fields.next()?, 16).ok()?;
    let crc = u32::from_str_radix(fields.next()?, 16).ok()?;
    let executables = fields.next()?.parse().ok()?;
    let segment = fields.next()?.to_string();
    if fields.next().is_some() || segment.contains('/') || segment.contains("..") {
        return None;
    }
    Some(JournalEntry {
        digest,
        crc,
        executables,
        segment,
    })
}

/// Parse a manifest journal: valid entries in order, plus whether a
/// torn (unparseable) tail was found. Parsing stops at the first bad
/// line — anything after a torn append is untrusted.
pub fn parse_journal(bytes: &[u8]) -> (Vec<JournalEntry>, bool) {
    let text = String::from_utf8_lossy(bytes);
    let mut entries = Vec::new();
    for line in text.split('\n') {
        if line.is_empty() {
            continue;
        }
        match parse_journal_line(line) {
            Some(e) => entries.push(e),
            None => return (entries, true),
        }
    }
    (entries, false)
}

/// Append one entry to the journal and fsync it. When the
/// `journal.mid_append` crash point is armed, the entry is staged in
/// two synced halves so an injected crash leaves a *real* torn tail on
/// disk (which [`parse_journal`] must then discard).
///
/// # Errors
///
/// Any filesystem failure opening, writing, or syncing the journal.
pub fn append_journal(path: &Path, entry: &JournalEntry) -> std::io::Result<()> {
    use std::io::Write;
    let line = render_journal_entry(entry);
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    if crate::durable::crash_armed(crate::durable::CP_MID_JOURNAL_APPEND) {
        let half = line.len() / 2;
        f.write_all(&line.as_bytes()[..half])?;
        f.sync_all()?;
        crate::durable::crash_point(crate::durable::CP_MID_JOURNAL_APPEND);
        f.write_all(&line.as_bytes()[half..])?;
    } else {
        f.write_all(line.as_bytes())?;
    }
    f.sync_all()
}

// ---- live-segment manifest (incremental `index --add`) -------------------

/// File name of the live-segment manifest inside an index directory.
///
/// The manifest is the *reader-visible* list of segments: `corpus.fui`
/// plus the manifest's segments, in manifest order, are the whole
/// corpus. The journal ([`JOURNAL_FILE`]) remains the *writer*'s
/// crash-recovery log — a segment can be journaled (durable, reusable
/// by `--resume`) without being manifested (visible to readers) yet.
pub const MANIFEST_FILE: &str = "segments.fum";

/// Path of the live-segment manifest inside an index directory.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST_FILE)
}

/// Parsed live-segment manifest: a generation counter plus the ordered
/// list of live (not-yet-compacted) segments.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// Generation counter: bumped by every `index --add` and `compact`
    /// publish, so `firmup serve` can report reload progress.
    pub epoch: u64,
    /// Live segments in append order (the merge order readers use).
    pub entries: Vec<JournalEntry>,
}

/// Render a manifest document. Every line carries a trailing CRC-32 of
/// its own body (the journal-line convention), and the footer repeats
/// the entry count — a truncated or torn manifest fails one of the two
/// and is diagnosed instead of silently dropping segments:
///
/// ```text
/// fum <epoch> <linecrc>
/// seg <digest> <crc> <count> <file> <linecrc>   (one per segment)
/// end <n> <linecrc>
/// ```
pub fn render_manifest(m: &Manifest) -> String {
    let mut out = String::new();
    let header = format!("fum {}", m.epoch);
    out.push_str(&format!("{header} {:08x}\n", crc32(header.as_bytes())));
    for e in &m.entries {
        out.push_str(&render_journal_entry(e));
    }
    let footer = format!("end {}", m.entries.len());
    out.push_str(&format!("{footer} {:08x}\n", crc32(footer.as_bytes())));
    out
}

/// Tolerant manifest walk (the fsck view): header epoch if readable,
/// the valid prefix of entries, and whether the document is damaged
/// (torn tail, bad line CRC, missing or disagreeing footer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestScan {
    /// Epoch from the header, when the header line was intact.
    pub epoch: Option<u64>,
    /// Longest valid prefix of segment entries.
    pub entries: Vec<JournalEntry>,
    /// Whether any damage was found (the strict parse would fail).
    pub torn: bool,
}

fn parse_crc_line<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let (body, crc_field) = line.rsplit_once(' ')?;
    let linecrc = u32::from_str_radix(crc_field.trim(), 16).ok()?;
    if crc32(body.as_bytes()) != linecrc {
        return None;
    }
    body.strip_prefix(keyword)?.strip_prefix(' ')
}

/// Walk a manifest tolerantly: never fails, reports the valid prefix
/// and whether the document was damaged. `fsck --repair` rewrites the
/// manifest from this prefix ("repair to a consistent prefix").
pub fn scan_manifest(bytes: &[u8]) -> ManifestScan {
    let text = String::from_utf8_lossy(bytes);
    let mut lines = text.split('\n').filter(|l| !l.is_empty());
    let epoch = lines
        .next()
        .and_then(|l| parse_crc_line(l, "fum"))
        .and_then(|rest| rest.parse::<u64>().ok());
    let mut entries = Vec::new();
    let mut torn = epoch.is_none();
    let mut footer_count: Option<usize> = None;
    for line in lines {
        if torn && epoch.is_none() {
            // Header damage poisons everything after it: a seg line we
            // cannot anchor to an epoch is untrusted.
            break;
        }
        if let Some(rest) = parse_crc_line(line, "end") {
            footer_count = rest.parse::<usize>().ok();
            break;
        }
        match parse_journal_line(line) {
            Some(e) => entries.push(e),
            None => {
                torn = true;
                break;
            }
        }
    }
    if footer_count != Some(entries.len()) {
        torn = true;
    }
    ManifestScan {
        epoch,
        entries,
        torn,
    }
}

/// Parse a manifest strictly — the reader path. Any damage (bad header,
/// torn seg line, missing or disagreeing footer) is a structured
/// [`IndexError::Malformed`]: a reader must never silently scan a
/// shorter corpus than the writer published.
///
/// # Errors
///
/// [`IndexError::Malformed`] naming the damage.
pub fn parse_manifest(bytes: &[u8]) -> Result<Manifest, IndexError> {
    let scan = scan_manifest(bytes);
    if scan.torn {
        return Err(IndexError::Malformed {
            reason: format!(
                "torn segment manifest ({} valid entr{} salvageable — run `firmup fsck --repair`)",
                scan.entries.len(),
                if scan.entries.len() == 1 { "y" } else { "ies" }
            ),
        });
    }
    Ok(Manifest {
        epoch: scan.epoch.unwrap_or(0),
        entries: scan.entries,
    })
}

/// Read the manifest of an index directory. A missing file is
/// `Ok(None)` — a plain single-file index (or one written by an older
/// build) simply has no live segments.
///
/// # Errors
///
/// [`IndexError::Malformed`] for a damaged manifest, or an I/O failure
/// surfaced as [`IndexError::Malformed`] naming the path.
pub fn read_manifest(dir: &Path) -> Result<Option<Manifest>, IndexError> {
    let path = manifest_path(dir);
    match std::fs::read(&path) {
        Ok(bytes) => parse_manifest(&bytes).map(Some),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(IndexError::Malformed {
            reason: format!("reading {}: {e}", path.display()),
        }),
    }
}

/// Atomically publish a manifest (tmp + fsync + rename via
/// [`crate::durable::write_atomic`], so the `durable.*` crash points
/// cover the publish step).
///
/// # Errors
///
/// Any filesystem failure of the atomic write.
pub fn write_manifest(dir: &Path, m: &Manifest) -> std::io::Result<()> {
    crate::durable::write_atomic(&manifest_path(dir), render_manifest(m).as_bytes())
}

// ---- tolerant per-record verification (fsck) -----------------------------

/// Verdict for one record during a tolerant [`scan_container`] walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordStatus {
    /// Payload present and its CRC-32 matches.
    Ok,
    /// Payload present but its CRC-32 disagrees with the table.
    ChecksumMismatch,
    /// The payload region ends before this record's bytes.
    TruncatedPayload,
}

/// One row of an fsck verdict table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordCheck {
    /// Record name from the table.
    pub name: String,
    /// Declared payload length.
    pub len: u32,
    /// Verification verdict.
    pub status: RecordStatus,
}

/// Walk a FUIX container *tolerantly*, producing a per-record verdict
/// instead of stopping at the first damaged record — `firmup fsck`'s
/// view. Header or record-table damage still fails the whole file (no
/// table means nothing to itemize).
///
/// # Errors
///
/// Structured [`IndexError`] when the header or record table is
/// unreadable.
pub fn scan_container(blob: &[u8]) -> Result<Vec<RecordCheck>, IndexError> {
    if blob.is_empty() {
        return Err(IndexError::Truncated {
            context: "empty index file",
        });
    }
    let (_, entries) = read_table(blob)?;
    let mut checks = Vec::with_capacity(entries.len());
    for entry in entries {
        let status = match record_bytes(blob, &entry) {
            Ok(_) => RecordStatus::Ok,
            Err(IndexError::ChecksumMismatch { .. }) => RecordStatus::ChecksumMismatch,
            Err(_) => RecordStatus::TruncatedPayload,
        };
        checks.push(RecordCheck {
            name: entry.name,
            len: entry.len,
            status,
        });
    }
    Ok(checks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Record> {
        vec![
            Record::new("meta", vec![1, 0, 0, 0]),
            Record::new("exe:0", (0u8..200).collect()),
            Record::new("postings", vec![]),
        ]
    }

    #[test]
    fn container_roundtrip() {
        let records = sample();
        let blob = write_container(&records);
        assert_eq!(read_container(&blob).unwrap(), records);
    }

    #[test]
    fn container_v2_roundtrip() {
        let records = sample();
        let blob = write_container_v2(&records);
        assert_eq!(blob[4..8], FORMAT_V2.to_le_bytes());
        assert_eq!(read_container(&blob).unwrap(), records);
        // Lazy path: table-only parse, then each payload on demand.
        let (version, entries) = read_table(&blob).unwrap();
        assert_eq!(version, FORMAT_V2);
        assert_eq!(entries.len(), records.len());
        for (e, r) in entries.iter().zip(&records) {
            assert_eq!(e.name, r.name);
            assert_eq!(record_bytes(&blob, e).unwrap(), &r.payload[..]);
        }
    }

    #[test]
    fn v1_table_synthesizes_correct_offsets() {
        let records = sample();
        let blob = write_container(&records);
        let (version, entries) = read_table(&blob).unwrap();
        assert_eq!(version, FORMAT_V1);
        for (e, r) in entries.iter().zip(&records) {
            assert_eq!(record_bytes(&blob, e).unwrap(), &r.payload[..]);
        }
    }

    #[test]
    fn empty_container_roundtrips() {
        let blob = write_container(&[]);
        assert_eq!(read_container(&blob).unwrap(), vec![]);
        let blob = write_container_v2(&[]);
        assert_eq!(read_container(&blob).unwrap(), vec![]);
    }

    #[test]
    fn bad_magic_is_not_an_index() {
        let mut blob = write_container(&sample());
        blob[0] = b'X';
        assert_eq!(read_container(&blob), Err(IndexError::NotAnIndex));
        assert_eq!(read_container(&[]), Err(IndexError::NotAnIndex));
    }

    #[test]
    fn future_version_is_rejected_not_misparsed() {
        for blob in [write_container(&sample()), write_container_v2(&sample())] {
            let mut blob = blob;
            blob[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
            assert_eq!(
                read_container(&blob),
                Err(IndexError::UnsupportedVersion {
                    found: u32::MAX,
                    supported: MAX_SUPPORTED_VERSION,
                })
            );
        }
    }

    #[test]
    fn every_truncation_point_is_a_structured_error() {
        for blob in [write_container(&sample()), write_container_v2(&sample())] {
            for cut in 0..blob.len() {
                match read_container(&blob[..cut]) {
                    Err(_) => {}
                    Ok(_) => panic!("cut at {cut} of {} parsed successfully", blob.len()),
                }
            }
        }
    }

    #[test]
    fn v2_table_bitflips_are_caught_eagerly() {
        let blob = write_container_v2(&sample());
        // Find where the table ends: header(12) + per-record name/offset/
        // len/crc fields + the 4-byte table CRC.
        let table_end: usize = 12
            + sample()
                .iter()
                .map(|r| 4 + r.name.len() + 16)
                .sum::<usize>()
            + 4;
        // Every single-bit flip inside the version, count, table, or
        // table-CRC bytes must be rejected by read_table itself — the
        // lazy path never trusts a damaged table.
        for pos in 4..table_end {
            for bit in 0..8 {
                let mut damaged = blob.clone();
                damaged[pos] ^= 1 << bit;
                assert!(
                    read_table(&damaged).is_err(),
                    "table flip at byte {pos} bit {bit} accepted"
                );
            }
        }
    }

    #[test]
    fn v2_offsets_into_the_table_are_malformed() {
        // Hand-craft a v2 container whose record points at the header,
        // with a recomputed table CRC so only the offset check can
        // reject it.
        let payload = vec![7u8; 8];
        let mut blob = Vec::new();
        blob.extend_from_slice(MAGIC);
        blob.extend_from_slice(&FORMAT_V2.to_le_bytes());
        blob.extend_from_slice(&1u32.to_le_bytes());
        blob.extend_from_slice(&1u32.to_le_bytes()); // name len
        blob.push(b'x');
        blob.extend_from_slice(&0u64.to_le_bytes()); // offset inside header
        blob.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        blob.extend_from_slice(&crc32(&payload).to_le_bytes());
        let table_crc = crc32(&blob[4..]);
        blob.extend_from_slice(&table_crc.to_le_bytes());
        blob.extend_from_slice(&payload);
        assert!(matches!(
            read_table(&blob),
            Err(IndexError::Malformed { .. })
        ));
    }

    #[test]
    fn payload_bitflip_fails_the_record_checksum() {
        let records = sample();
        for mut blob in [write_container(&records), write_container_v2(&records)] {
            let n = blob.len();
            blob[n - 1] ^= 0x80; // last byte of exe:0's payload region
            match read_container(&blob) {
                Err(IndexError::ChecksumMismatch { record }) => assert_eq!(record, "exe:0"),
                other => panic!("expected ChecksumMismatch, got {other:?}"),
            }
        }
    }

    #[test]
    fn bogus_record_count_is_malformed() {
        let mut blob = write_container(&sample());
        blob[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_container(&blob),
            Err(IndexError::Malformed { .. }) | Err(IndexError::Truncated { .. })
        ));
    }

    #[test]
    fn non_utf8_record_name_is_malformed() {
        let mut blob = write_container(&[Record::new("abcd", vec![])]);
        // The name bytes start after magic+version+count+name-length.
        blob[16] = 0xff;
        blob[17] = 0xfe;
        assert!(matches!(
            read_container(&blob),
            Err(IndexError::Malformed { .. })
        ));
    }

    #[test]
    fn index_path_appends_the_canonical_file_name() {
        assert_eq!(
            index_path(Path::new("/tmp/idx")),
            PathBuf::from("/tmp/idx/corpus.fui")
        );
    }

    fn entry(i: u64) -> JournalEntry {
        JournalEntry {
            digest: 0x1234_5678_9abc_def0 ^ i,
            crc: 0xdead_beef ^ i as u32,
            executables: 3 + i as u32,
            segment: segment_file_name(0x1234_5678_9abc_def0 ^ i),
        }
    }

    #[test]
    fn journal_roundtrips_and_orders() {
        let mut bytes = Vec::new();
        for i in 0..5 {
            bytes.extend_from_slice(render_journal_entry(&entry(i)).as_bytes());
        }
        let (entries, torn) = parse_journal(&bytes);
        assert!(!torn);
        assert_eq!(entries, (0..5).map(entry).collect::<Vec<_>>());
    }

    #[test]
    fn torn_journal_tail_is_discarded_not_fatal() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(render_journal_entry(&entry(0)).as_bytes());
        bytes.extend_from_slice(render_journal_entry(&entry(1)).as_bytes());
        let full = bytes.len();
        bytes.extend_from_slice(render_journal_entry(&entry(2)).as_bytes());
        // Tear the last append anywhere mid-line: the first two entries
        // survive, the tail is flagged.
        for cut in full + 1..bytes.len() - 1 {
            let (entries, torn) = parse_journal(&bytes[..cut]);
            assert!(torn, "cut at {cut} not flagged torn");
            assert_eq!(entries.len(), 2, "cut at {cut} lost committed entries");
        }
    }

    #[test]
    fn corrupted_journal_line_fails_its_own_crc() {
        let mut line = render_journal_entry(&entry(7)).into_bytes();
        line[6] ^= 0x01; // flip one digest nibble; linecrc now disagrees
        let (entries, torn) = parse_journal(&line);
        assert!(torn);
        assert!(entries.is_empty());
    }

    #[test]
    fn journal_rejects_path_traversal_in_segment_names() {
        let body = "seg 0000000000000001 00000001 1 ../evil.fui";
        let line = format!("{body} {:08x}\n", crc32(body.as_bytes()));
        let (entries, torn) = parse_journal(line.as_bytes());
        assert!(entries.is_empty() && torn);
    }

    #[test]
    fn append_journal_survives_restart() {
        let dir = std::env::temp_dir().join(format!("firmup-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = journal_path(&dir);
        append_journal(&path, &entry(0)).unwrap();
        append_journal(&path, &entry(1)).unwrap();
        let (entries, torn) = parse_journal(&std::fs::read(&path).unwrap());
        assert!(!torn);
        assert_eq!(entries, vec![entry(0), entry(1)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_roundtrips_with_epoch_and_order() {
        let m = Manifest {
            epoch: 7,
            entries: (0..4).map(entry).collect(),
        };
        let text = render_manifest(&m);
        assert_eq!(parse_manifest(text.as_bytes()).unwrap(), m);
        // Empty manifests (post-compact) roundtrip too.
        let empty = Manifest {
            epoch: 9,
            entries: vec![],
        };
        assert_eq!(
            parse_manifest(render_manifest(&empty).as_bytes()).unwrap(),
            empty
        );
    }

    #[test]
    fn torn_manifest_is_rejected_strictly_and_salvaged_tolerantly() {
        let m = Manifest {
            epoch: 3,
            entries: (0..3).map(entry).collect(),
        };
        let text = render_manifest(&m).into_bytes();
        // Every truncation point either still parses (only when nothing
        // was lost — i.e. never, because the footer seals the count) or
        // is a structured Malformed error; the tolerant scan salvages
        // exactly the whole lines before the cut.
        for cut in 0..text.len() - 1 {
            let sliced = &text[..cut];
            assert!(
                matches!(parse_manifest(sliced), Err(IndexError::Malformed { .. })),
                "cut at {cut} of {} parsed strictly",
                text.len()
            );
            let scan = scan_manifest(sliced);
            assert!(scan.torn, "cut at {cut} not flagged");
            assert!(scan.entries.len() <= 3);
            for (got, want) in scan.entries.iter().zip(m.entries.iter()) {
                assert_eq!(got, want, "salvaged prefix diverged at cut {cut}");
            }
        }
        // A flipped byte inside a seg line fails that line's CRC.
        let mut damaged = text.clone();
        let seg_line_start = render_manifest(&Manifest {
            epoch: 3,
            entries: vec![],
        })
        .lines()
        .next()
        .unwrap()
        .len()
            + 1;
        damaged[seg_line_start + 6] ^= 0x01;
        let scan = scan_manifest(&damaged);
        assert!(scan.torn);
        assert!(scan.entries.is_empty());
        // A damaged header poisons the document entirely.
        let mut bad_header = text;
        bad_header[1] = b'x';
        let scan = scan_manifest(&bad_header);
        assert!(scan.torn && scan.epoch.is_none() && scan.entries.is_empty());
    }

    #[test]
    fn manifest_footer_count_seals_the_entry_list() {
        let m = Manifest {
            epoch: 1,
            entries: (0..2).map(entry).collect(),
        };
        let text = render_manifest(&m);
        // Drop one seg line but keep the (now disagreeing) footer: the
        // count mismatch must be diagnosed.
        let mut lines: Vec<&str> = text.lines().collect();
        lines.remove(1);
        let forged = format!("{}\n", lines.join("\n"));
        assert!(parse_manifest(forged.as_bytes()).is_err());
        let scan = scan_manifest(forged.as_bytes());
        assert!(scan.torn);
        assert_eq!(scan.entries.len(), 1);
    }

    #[test]
    fn manifest_read_write_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join(format!("firmup-manifest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), None);
        let m = Manifest {
            epoch: 2,
            entries: (0..2).map(entry).collect(),
        };
        write_manifest(&dir, &m).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), Some(m));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn image_digest_separates_tag_and_content() {
        assert_ne!(image_digest("a.fwim", b"xy"), image_digest("a.fwimx", b"y"));
        assert_eq!(image_digest("a.fwim", b"xy"), image_digest("a.fwim", b"xy"));
    }

    #[test]
    fn scan_container_itemizes_damage_per_record() {
        let records = sample();
        for blob in [write_container(&records), write_container_v2(&records)] {
            // Pristine: every record Ok.
            let checks = scan_container(&blob).unwrap();
            assert_eq!(checks.len(), records.len());
            assert!(checks.iter().all(|c| c.status == RecordStatus::Ok));

            // Flip a byte in the middle record's payload: only it reports
            // ChecksumMismatch, the rest stay Ok (unlike read_container,
            // which stops at the first failure).
            let mut damaged = blob.clone();
            let n = damaged.len();
            damaged[n - 100] ^= 0xff; // inside exe:0's 200-byte payload
            let checks = scan_container(&damaged).unwrap();
            assert_eq!(checks[0].status, RecordStatus::Ok);
            assert_eq!(checks[1].status, RecordStatus::ChecksumMismatch);
            assert_eq!(checks[2].status, RecordStatus::Ok);

            // Truncate into the payload region: the cut record (and any
            // after it) report TruncatedPayload.
            let cut = blob.len() - 150;
            let checks = scan_container(&blob[..cut]).unwrap();
            assert_eq!(checks[0].status, RecordStatus::Ok);
            assert_eq!(checks[1].status, RecordStatus::TruncatedPayload);
        }
    }

    #[test]
    fn scan_container_rejects_unreadable_headers() {
        assert!(matches!(
            scan_container(&[]),
            Err(IndexError::Truncated { .. })
        ));
        let mut blob = write_container(&sample());
        blob[0] = b'X';
        assert_eq!(scan_container(&blob), Err(IndexError::NotAnIndex));
    }
}
