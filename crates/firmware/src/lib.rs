//! Firmware images, the synthetic package corpus, and corpus generation.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod corpus;
pub mod crc;
pub mod durable;
pub mod faultinject;
pub mod image;
pub mod index;
pub mod packages;
pub mod rng;
