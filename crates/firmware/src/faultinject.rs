//! Deterministic fault injection for the scan pipeline.
//!
//! Real firmware corpora are dominated by damaged inputs — truncated
//! downloads, vendors that lie in part tables, ELFs with mangled
//! section headers. This module produces that damage *on demand and
//! reproducibly*: every corruption operator is driven by the crate's
//! SplitMix64 [`SmallRng`], so a pinned seed replays the exact same
//! corruption in CI, in a failing test, and under a debugger.
//!
//! The operators are structure-aware: when the blob is a FWIM image or
//! contains an embedded ELF they aim at the part table / section
//! headers specifically, because random bit noise rarely exercises the
//! interesting parsing paths. On unrecognized blobs they fall back to
//! random-offset damage.

use crate::image::MAGIC;
use crate::rng::SmallRng;

/// The ELF magic (duplicated from `firmup-obj` to keep this module
/// byte-oriented).
const ELF_MAGIC: [u8; 4] = [0x7f, b'E', b'L', b'F'];

/// A corruption operator: one class of damage seen in real corpora.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorruptOp {
    /// Flip 1–64 random bits anywhere in the blob.
    BitFlip,
    /// Cut the blob at a random point (download truncation).
    Truncate,
    /// Overwrite part CRCs with garbage (checksum smash).
    CrcSmash,
    /// Rewrite a part-table entry with a bogus name length and a wild
    /// payload length.
    BogusPartHeader,
    /// Make two part declarations claim overlapping payload bytes by
    /// inflating an early part's declared length.
    OverlapParts,
    /// Scribble over an embedded ELF's section header table.
    MangleSectionTable,
    /// Declare an absurdly oversized length field (part table or ELF
    /// section size).
    OversizeLength,
    /// Rewrite a container's format-version field (FWIM or FUIX index)
    /// with a wild future version: index loaders must reject it with a
    /// structured "unsupported version" error instead of misparsing.
    VersionBump,
    /// Cut the blob at a 512-byte sector boundary — the shape a crashed
    /// non-atomic rename/write leaves behind (whole leading sectors
    /// durable, the tail gone). Distinct from [`CorruptOp::Truncate`],
    /// whose cut lands anywhere.
    TornRename,
    /// Overwrite the blob's header with advisory-lock-file text
    /// (`pid N\n...`) — what a reader sees if it opens the wrong file in
    /// an index directory, or a buggy writer leaks lock contents into a
    /// data file. Parsers must diagnose "not an index/image", not panic.
    StaleLock,
    /// Cut a line-oriented segment manifest (`segments.fum`) strictly
    /// *mid-line* — the residue of a crashed non-atomic manifest writer.
    /// Line CRCs (and the count-sealing footer) must flag the document
    /// torn; the strict reader rejects it and `fsck --repair` salvages
    /// the valid prefix. Falls back to an arbitrary-offset cut on blobs
    /// that are not manifests.
    TornManifest,
}

impl CorruptOp {
    /// All operators, in a stable order (the chaos matrix iterates
    /// this).
    pub fn all() -> [CorruptOp; 11] {
        [
            CorruptOp::BitFlip,
            CorruptOp::Truncate,
            CorruptOp::CrcSmash,
            CorruptOp::BogusPartHeader,
            CorruptOp::OverlapParts,
            CorruptOp::MangleSectionTable,
            CorruptOp::OversizeLength,
            CorruptOp::VersionBump,
            CorruptOp::TornRename,
            CorruptOp::StaleLock,
            CorruptOp::TornManifest,
        ]
    }

    /// Stable name for reports and telemetry keys.
    pub fn name(self) -> &'static str {
        match self {
            CorruptOp::BitFlip => "bit_flip",
            CorruptOp::Truncate => "truncate",
            CorruptOp::CrcSmash => "crc_smash",
            CorruptOp::BogusPartHeader => "bogus_part_header",
            CorruptOp::OverlapParts => "overlap_parts",
            CorruptOp::MangleSectionTable => "mangle_section_table",
            CorruptOp::OversizeLength => "oversize_length",
            CorruptOp::VersionBump => "version_bump",
            CorruptOp::TornRename => "torn_rename",
            CorruptOp::StaleLock => "stale_lock",
            CorruptOp::TornManifest => "torn_manifest",
        }
    }
}

/// Apply `op` to a copy of `blob`, deterministically: the same
/// `(blob, op, seed)` triple always produces the same corrupted bytes.
/// Never panics, for any input (including empty blobs).
pub fn corrupt(blob: &[u8], op: CorruptOp, seed: u64) -> Vec<u8> {
    // Mix the operator into the stream so the same seed exercises
    // different offsets per operator.
    let mut rng = SmallRng::seed_from_u64(seed ^ (0x5eed_0000 + op as u64));
    let mut out = blob.to_vec();
    if out.is_empty() {
        return out;
    }
    match op {
        CorruptOp::BitFlip => {
            let flips = rng.gen_range(1..=64usize);
            for _ in 0..flips {
                let pos = rng.gen_range(0..out.len());
                let bit = rng.gen_range(0..8u32);
                out[pos] ^= 1u8 << bit;
            }
        }
        CorruptOp::Truncate => {
            let keep = rng.gen_range(0..out.len());
            out.truncate(keep);
        }
        CorruptOp::CrcSmash => {
            if let Some(table) = part_table(&out) {
                for entry in table.entries {
                    let crc = entry.crc_off;
                    if crc + 4 <= out.len() {
                        let garbage = rng.next_u64() as u32;
                        out[crc..crc + 4].copy_from_slice(&garbage.to_le_bytes());
                    }
                }
            } else {
                scribble(&mut out, &mut rng, 4);
            }
        }
        CorruptOp::BogusPartHeader => {
            if let Some(table) = part_table(&out) {
                if let Some(entry) = pick(&table.entries, &mut rng) {
                    // Wild name length: drives the string reader into
                    // its truncation guards.
                    let name_len = entry.name_len_off;
                    if name_len + 4 <= out.len() {
                        let wild = rng.next_u64() as u32 | 0x0100_0000;
                        out[name_len..name_len + 4].copy_from_slice(&wild.to_le_bytes());
                    }
                }
            } else {
                scribble(&mut out, &mut rng, 8);
            }
        }
        CorruptOp::OverlapParts => {
            if let Some(table) = part_table(&out) {
                // Inflate an early part's declared length so its
                // payload claim swallows (overlaps) its successors'.
                if let Some(entry) = pick(&table.entries, &mut rng) {
                    let len = entry.len_off;
                    if len + 4 <= out.len() {
                        let declared = u32::from_le_bytes([
                            out[len],
                            out[len + 1],
                            out[len + 2],
                            out[len + 3],
                        ]);
                        let inflated = declared.saturating_mul(2).saturating_add(64);
                        out[len..len + 4].copy_from_slice(&inflated.to_le_bytes());
                    }
                }
            } else {
                scribble(&mut out, &mut rng, 8);
            }
        }
        CorruptOp::MangleSectionTable => {
            if let Some(elf_off) = find_elf(&out, &mut rng) {
                // e_shoff/e_shentsize/e_shnum live at +32/+46/+48.
                for field in [32usize, 46, 48] {
                    let pos = elf_off + field;
                    if pos + 2 <= out.len() {
                        let garbage = rng.next_u64();
                        out[pos] = garbage as u8;
                        out[pos + 1] = (garbage >> 8) as u8;
                    }
                }
            } else {
                scribble(&mut out, &mut rng, 16);
            }
        }
        CorruptOp::OversizeLength => {
            // An oversized length: a part-table len when available,
            // else an ELF section size, else a random u32 field.
            if let Some(table) = part_table(&out) {
                if let Some(entry) = pick(&table.entries, &mut rng) {
                    let len = entry.len_off;
                    if len + 4 <= out.len() {
                        out[len..len + 4].copy_from_slice(&u32::MAX.to_le_bytes());
                    }
                }
            } else if out.len() >= 4 {
                let pos = rng.gen_range(0..out.len().saturating_sub(3).max(1));
                if pos + 4 <= out.len() {
                    out[pos..pos + 4].copy_from_slice(&0xffff_fff0u32.to_le_bytes());
                }
            }
        }
        CorruptOp::VersionBump => {
            // Both FWIM and FUIX keep a u32 format version at offset 4.
            let recognized =
                out.len() >= 8 && (&out[0..4] == MAGIC || &out[0..4] == crate::index::MAGIC);
            if recognized {
                let wild = (rng.next_u64() as u32) | 0x8000_0000;
                out[4..8].copy_from_slice(&wild.to_le_bytes());
            } else {
                scribble(&mut out, &mut rng, 4);
            }
        }
        CorruptOp::TornRename => {
            // Keep only whole leading 512-byte sectors, never the full
            // blob: the on-disk residue of a crash between a partial
            // write and its rename.
            let sectors = out.len() / 512;
            let max_keep = if out.len().is_multiple_of(512) {
                sectors.saturating_sub(1)
            } else {
                sectors
            };
            if max_keep == 0 {
                out.truncate(0);
            } else {
                let keep = 512 * rng.gen_range(1..=max_keep);
                out.truncate(keep);
            }
        }
        CorruptOp::StaleLock => {
            // Stamp advisory-lock text over the header region.
            let pid = rng.gen_range(2..100_000u64);
            let text = format!("pid {pid}\n");
            let n = text.len().min(out.len());
            out[..n].copy_from_slice(&text.as_bytes()[..n]);
        }
        CorruptOp::TornManifest => {
            // Cut a `fum ` manifest strictly mid-line: pick a line, keep
            // everything before it plus a partial prefix of it, so the
            // torn line's trailing CRC field never survives intact.
            let line_starts: Vec<usize> = if out.starts_with(b"fum ") {
                std::iter::once(0)
                    .chain(
                        out.iter()
                            .enumerate()
                            .filter(|&(_, &b)| b == b'\n')
                            .map(|(i, _)| i + 1),
                    )
                    .filter(|&s| s < out.len())
                    .collect()
            } else {
                Vec::new()
            };
            if line_starts.is_empty() {
                // Not a manifest (or a headerless scrap): arbitrary cut,
                // still always shrinking non-empty blobs.
                let keep = rng.gen_range(0..out.len());
                out.truncate(keep);
            } else {
                let start = *pick(&line_starts, &mut rng).expect("non-empty");
                let line_end = out[start..]
                    .iter()
                    .position(|&b| b == b'\n')
                    .map_or(out.len(), |p| start + p + 1);
                // Keep at least one byte of the line (a cut at the line
                // start would be indistinguishable from a clean shorter
                // document for non-final lines) and never the whole line.
                let keep = start + 1 + rng.gen_range(0..(line_end - start - 1).max(1));
                out.truncate(keep.min(out.len() - 1));
            }
        }
    }
    out
}

/// Random single-byte scribbles: the structure-agnostic fallback.
fn scribble(out: &mut [u8], rng: &mut SmallRng, n: usize) {
    for _ in 0..n {
        let pos = rng.gen_range(0..out.len());
        out[pos] = rng.next_u64() as u8;
    }
}

fn pick<'a, T>(items: &'a [T], rng: &mut SmallRng) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        items.get(rng.gen_range(0..items.len()))
    }
}

/// Byte offsets of one FWIM part-table / FUIX record-table entry's
/// fields (the two formats deliberately share the entry shape).
struct PartEntry {
    name_len_off: usize,
    len_off: usize,
    crc_off: usize,
}

struct PartTable {
    entries: Vec<PartEntry>,
}

/// Walk a FWIM or FUIX header far enough to locate the part/record
/// table entries (offsets only; payloads untouched). Returns `None` for
/// unrecognized or structurally hopeless blobs.
fn part_table(blob: &[u8]) -> Option<PartTable> {
    if blob.len() < 8 {
        return None;
    }
    let is_fwim = &blob[0..4] == MAGIC;
    let is_fuix = &blob[0..4] == crate::index::MAGIC;
    if !is_fwim && !is_fuix {
        return None;
    }
    let mut pos = 8usize; // magic + format version
    let read_u32 = |pos: &mut usize| -> Option<u32> {
        let s = blob.get(*pos..*pos + 4)?;
        *pos += 4;
        Some(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    };
    if is_fwim {
        // vendor, device, version strings (FUIX has no metadata block).
        for _ in 0..3 {
            let len = read_u32(&mut pos)? as usize;
            pos = pos.checked_add(len)?;
            if pos > blob.len() {
                return None;
            }
        }
    }
    let count = read_u32(&mut pos)? as usize;
    if count > 4096 {
        return None;
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len_off = pos;
        let name_len = read_u32(&mut pos)? as usize;
        pos = pos.checked_add(name_len)?;
        if pos > blob.len() {
            return None;
        }
        let len_off = pos;
        let _len = read_u32(&mut pos)?;
        let crc_off = pos;
        let _crc = read_u32(&mut pos)?;
        entries.push(PartEntry {
            name_len_off,
            len_off,
            crc_off,
        });
    }
    Some(PartTable { entries })
}

/// Offset of one embedded ELF magic, chosen deterministically among all
/// occurrences.
fn find_elf(blob: &[u8], rng: &mut SmallRng) -> Option<usize> {
    if blob.len() < 52 {
        return None;
    }
    let hits: Vec<usize> = (0..blob.len() - 4)
        .filter(|&i| blob[i..i + 4] == ELF_MAGIC)
        .collect();
    pick(&hits, rng).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{pack, unpack, ImageMeta, Part};

    fn sample_image() -> Vec<u8> {
        let mut b = firmup_obj::write::ElfBuilder::new(8, 0x1000);
        b.text(0x1000, vec![0x90u8; 64]);
        let elf = b.build().write();
        pack(
            &ImageMeta {
                vendor: "ACME".into(),
                device: "X1".into(),
                version: "1.0".into(),
            },
            &[
                Part {
                    name: "bin/a".into(),
                    data: elf.clone(),
                },
                Part {
                    name: "bin/b".into(),
                    data: elf,
                },
            ],
        )
    }

    #[test]
    fn corruption_is_deterministic() {
        let img = sample_image();
        for op in CorruptOp::all() {
            let a = corrupt(&img, op, 42);
            let b = corrupt(&img, op, 42);
            let c = corrupt(&img, op, 43);
            assert_eq!(a, b, "{}: same seed must replay", op.name());
            // Different seeds *usually* differ; at minimum they must
            // not be required to match.
            let _ = c;
        }
    }

    #[test]
    fn every_operator_changes_the_blob() {
        let img = sample_image();
        for op in CorruptOp::all() {
            let damaged = corrupt(&img, op, 7);
            assert_ne!(damaged, img, "{} was a no-op", op.name());
        }
    }

    #[test]
    fn empty_and_tiny_blobs_never_panic() {
        for op in CorruptOp::all() {
            for blob in [&[][..], &[0x7f][..], &[1, 2, 3][..]] {
                let _ = corrupt(blob, op, 1);
            }
        }
    }

    #[test]
    fn part_table_locator_matches_pack_layout() {
        let img = sample_image();
        let table = part_table(&img).expect("sample is a FWIM image");
        assert_eq!(table.entries.len(), 2);
        // Smashing the located CRCs must trip the unpacker's checksum
        // issue — proof the offsets are right.
        let smashed = corrupt(&img, CorruptOp::CrcSmash, 99);
        let u = unpack(&smashed).expect("structure intact");
        assert!(
            !u.issues.is_empty(),
            "CRC smash must be noticed by the unpacker"
        );
    }

    #[test]
    fn version_bump_rewrites_the_header_version() {
        let img = sample_image();
        let bumped = corrupt(&img, CorruptOp::VersionBump, 3);
        assert_eq!(&bumped[0..4], MAGIC, "magic untouched");
        let v = u32::from_le_bytes([bumped[4], bumped[5], bumped[6], bumped[7]]);
        assert!(v >= 0x8000_0000, "version must be wild, got {v:#x}");
    }

    #[test]
    fn structure_aware_ops_target_fuix_record_tables() {
        use crate::index::{read_container, write_container, IndexError, Record};
        let blob = write_container(&[
            Record::new("meta", vec![1, 2, 3, 4]),
            Record::new("exe:0", vec![9u8; 64]),
        ]);
        let table = part_table(&blob).expect("FUIX blob has a locatable record table");
        assert_eq!(table.entries.len(), 2);
        // Smashing the located CRCs must trip the container's checksum
        // verification — proof the offsets are right for FUIX too.
        let smashed = corrupt(&blob, CorruptOp::CrcSmash, 11);
        assert!(matches!(
            read_container(&smashed),
            Err(IndexError::ChecksumMismatch { .. })
        ));
        // And a version bump must be rejected as unsupported.
        let bumped = corrupt(&blob, CorruptOp::VersionBump, 11);
        assert!(matches!(
            read_container(&bumped),
            Err(IndexError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn torn_rename_cuts_on_sector_boundaries() {
        let img = sample_image();
        for seed in 0..32 {
            let torn = corrupt(&img, CorruptOp::TornRename, seed);
            assert!(torn.len() < img.len(), "seed {seed}: nothing torn off");
            assert_eq!(torn.len() % 512, 0, "seed {seed}: cut mid-sector");
            assert_eq!(torn, img[..torn.len()], "seed {seed}: prefix altered");
        }
        // Sub-sector blobs lose everything (the single partial sector
        // was never durable).
        assert!(corrupt(&[7u8; 100], CorruptOp::TornRename, 1).is_empty());
        // Exact-multiple blobs still always shrink.
        let exact = vec![3u8; 1024];
        let torn = corrupt(&exact, CorruptOp::TornRename, 5);
        assert_eq!(torn.len(), 512);
    }

    #[test]
    fn stale_lock_spoils_the_magic_with_lock_text() {
        use crate::index::{read_container, write_container, IndexError, Record};
        let blob = write_container(&[Record::new("meta", vec![1, 2, 3, 4])]);
        let damaged = corrupt(&blob, CorruptOp::StaleLock, 9);
        assert!(damaged.starts_with(b"pid "), "lock text not stamped");
        assert_eq!(read_container(&damaged), Err(IndexError::NotAnIndex));
        let img = sample_image();
        let damaged = corrupt(&img, CorruptOp::StaleLock, 9);
        assert!(!damaged.starts_with(MAGIC), "FWIM magic must be spoiled");
        // The unpacker may still carve embedded ELFs (degraded mode);
        // it must simply not panic.
        let _ = unpack(&damaged);
    }

    #[test]
    fn torn_manifest_cuts_mid_line_and_is_always_diagnosed() {
        use crate::index::{
            parse_manifest, scan_manifest, segment_file_name, JournalEntry, Manifest,
        };
        let m = Manifest {
            epoch: 5,
            entries: (0..4)
                .map(|i| JournalEntry {
                    digest: 0x1000 + i,
                    crc: 0xabcd ^ i as u32,
                    executables: 2,
                    segment: segment_file_name(0x1000 + i),
                })
                .collect(),
        };
        let blob = crate::index::render_manifest(&m).into_bytes();
        for seed in 0..64 {
            let torn = corrupt(&blob, CorruptOp::TornManifest, seed);
            assert!(torn.len() < blob.len(), "seed {seed}: nothing torn off");
            assert_eq!(torn, blob[..torn.len()], "seed {seed}: prefix altered");
            // The cut must land mid-line: the residue never ends in '\n'.
            assert_ne!(*torn.last().unwrap(), b'\n', "seed {seed}: clean cut");
            // The strict reader rejects it; the tolerant scan salvages a
            // valid prefix of the original entries.
            assert!(parse_manifest(&torn).is_err(), "seed {seed}: accepted");
            let scan = scan_manifest(&torn);
            assert!(scan.torn, "seed {seed}: not flagged");
            assert!(scan.entries.len() <= m.entries.len());
            for (got, want) in scan.entries.iter().zip(m.entries.iter()) {
                assert_eq!(got, want, "seed {seed}: salvage diverged");
            }
        }
        // Non-manifest blobs fall back to a plain shrinking cut.
        let img = sample_image();
        let torn = corrupt(&img, CorruptOp::TornManifest, 3);
        assert!(torn.len() < img.len());
        assert_eq!(torn, img[..torn.len()]);
    }

    #[test]
    fn unpack_survives_every_operator() {
        let img = sample_image();
        for op in CorruptOp::all() {
            for seed in 0..16 {
                let damaged = corrupt(&img, op, seed);
                // Structured error or degraded success — the unpacker
                // itself must never panic.
                let _ = unpack(&damaged);
            }
        }
    }
}
