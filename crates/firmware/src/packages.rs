//! The synthetic package corpus.
//!
//! The paper's evaluation searches for CVE-affected procedures from
//! seven real packages (Table 2: vsftpd, bftpd, libcurl, dbus, wget;
//! §5.3 adds libexif and net-snmp). We model each as a MinC program
//! whose procedures mirror the *shape* of the originals — string and
//! buffer handling, parsing loops, dispatch tables — with one named
//! vulnerable procedure per CVE, multiple released versions (patched /
//! unpatched / deprecated predecessors), and optional feature groups
//! (the `--disable-opie` story from §2.2 that breaks full-matching
//! approaches).
//!
//! Everything here is source *generation*: the actual binaries come out
//! of `firmup-compiler` under whatever toolchain profile the corpus
//! generator picks, exactly like vendor firmware builds.

use std::fmt;

use crate::rng::SmallRng;

/// Package metadata lookup failure: the caller named a package or
/// version the corpus does not model. These are *inputs* (CLI flags,
/// CVE specs), not internal invariants, so they are errors rather than
/// panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackageError {
    /// No package with this name.
    UnknownPackage(String),
    /// The package exists but has no such version.
    UnknownVersion {
        /// Package name.
        package: String,
        /// Requested version.
        version: String,
    },
    /// The package declares no versions at all.
    NoVersions(String),
}

impl fmt::Display for PackageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackageError::UnknownPackage(p) => write!(f, "unknown package `{p}`"),
            PackageError::UnknownVersion { package, version } => {
                write!(f, "unknown version `{version}` for `{package}`")
            }
            PackageError::NoVersions(p) => write!(f, "package `{p}` has no versions"),
        }
    }
}

impl std::error::Error for PackageError {}

/// A package version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionSpec {
    /// Version string (e.g. `"1.15"`).
    pub version: &'static str,
    /// Release order (higher = newer).
    pub order: u32,
    /// Names of procedures that are vulnerable in this version.
    pub vulnerable: &'static [&'static str],
}

/// A package.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackageSpec {
    /// Package name.
    pub name: &'static str,
    /// Executable file name inside firmware images.
    pub executable: &'static str,
    /// Libraries keep their exported (`pub fn`) symbols under stripping.
    pub library: bool,
    /// Released versions, oldest first.
    pub versions: &'static [VersionSpec],
    /// Optional feature groups a vendor may disable.
    pub features: &'static [&'static str],
}

impl PackageSpec {
    /// The newest version, `None` for a (malformed) versionless spec.
    pub fn latest(&self) -> Option<&VersionSpec> {
        self.versions.last()
    }

    /// Find a version by string.
    pub fn version(&self, v: &str) -> Option<&VersionSpec> {
        self.versions.iter().find(|s| s.version == v)
    }
}

/// The CVE queries of the evaluation (Table 2 plus the two §5.3
/// additions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CveSpec {
    /// CVE identifier.
    pub cve: &'static str,
    /// Package containing the vulnerable procedure.
    pub package: &'static str,
    /// The vulnerable procedure.
    pub procedure: &'static str,
    /// Whether the procedure is exported (findable by name even in
    /// stripped libraries).
    pub exported: bool,
}

/// All packages.
pub fn all_packages() -> Vec<PackageSpec> {
    vec![
        WGET_SPEC,
        VSFTPD_SPEC,
        BFTPD_SPEC,
        LIBCURL_SPEC,
        DBUS_SPEC,
        LIBEXIF_SPEC,
        NETSNMP_SPEC,
        BUSYBOX_SPEC,
    ]
}

/// Find a package by name.
pub fn package(name: &str) -> Option<PackageSpec> {
    all_packages().into_iter().find(|p| p.name == name)
}

/// The evaluation's CVE list, in Table 2 order (lines 1–7), then the two
/// exported-procedure queries added for the §5.3 comparison.
pub fn all_cves() -> Vec<CveSpec> {
    vec![
        CveSpec {
            cve: "CVE-2011-0762",
            package: "vsftpd",
            procedure: "vsf_filename_passes_filter",
            exported: false,
        },
        CveSpec {
            cve: "CVE-2009-4593",
            package: "bftpd",
            procedure: "bftpdutmp_log",
            exported: false,
        },
        CveSpec {
            cve: "CVE-2012-0036",
            package: "libcurl",
            procedure: "curl_easy_unescape",
            exported: true,
        },
        CveSpec {
            cve: "CVE-2013-1944",
            package: "libcurl",
            procedure: "tailmatch",
            exported: false,
        },
        CveSpec {
            cve: "CVE-2013-2168",
            package: "dbus",
            procedure: "printf_string_upper_bound",
            exported: false,
        },
        CveSpec {
            cve: "CVE-2014-4877",
            package: "wget",
            procedure: "ftp_retrieve_glob",
            exported: false,
        },
        CveSpec {
            cve: "CVE-2016-8618",
            package: "libcurl",
            procedure: "alloc_addbyter",
            exported: false,
        },
        CveSpec {
            cve: "CVE-2012-2841",
            package: "libexif",
            procedure: "exif_entry_get_value",
            exported: true,
        },
        CveSpec {
            cve: "CVE-2014-3565",
            package: "net-snmp",
            procedure: "snmp_pdu_parse",
            exported: true,
        },
    ]
}

/// Shared "libc" helpers compiled into every executable.
const PRELUDE: &str = r#"
global wkbuf: [byte; 160];

fn str_len(p: int) -> int {
    var n = 0;
    while (peek8(p + n) != 0) { n = n + 1; }
    return n;
}

fn str_cpy(dst: int, src: int) -> int {
    var i = 0;
    var c = peek8(src);
    while (c != 0) {
        poke8(dst + i, c);
        i = i + 1;
        c = peek8(src + i);
    }
    poke8(dst + i, 0);
    return i;
}

fn str_ncpy(dst: int, src: int, n: int) -> int {
    var i = 0;
    while (i < n) {
        var c = peek8(src + i);
        poke8(dst + i, c);
        if (c == 0) { return i; }
        i = i + 1;
    }
    poke8(dst + n, 0);
    return n;
}

fn str_cmp(a: int, b: int) -> int {
    var i = 0;
    while (1) {
        var ca = peek8(a + i);
        var cb = peek8(b + i);
        if (ca != cb) { return ca - cb; }
        if (ca == 0) { break; }
        i = i + 1;
    }
    return 0;
}

fn str_chr(p: int, want: int) -> int {
    var i = 0;
    var c = peek8(p);
    while (c != 0) {
        if (c == want) { return i; }
        i = i + 1;
        c = peek8(p + i);
    }
    return 0 - 1;
}

fn to_lower(c: int) -> int {
    if (c >= 65 && c <= 90) { return c + 32; }
    return c;
}

fn is_digit(c: int) -> int {
    if (c >= 48 && c <= 57) { return 1; }
    return 0;
}

fn is_alpha(c: int) -> int {
    var lc = to_lower(c);
    if (lc >= 97 && lc <= 122) { return 1; }
    return 0;
}

fn mem_set(p: int, v: int, n: int) {
    var i = 0;
    while (i < n) { poke8(p + i, v); i = i + 1; }
}

fn mem_cpy(dst: int, src: int, n: int) {
    var i = 0;
    while (i < n) { poke8(dst + i, peek8(src + i)); i = i + 1; }
}

fn hash_str(p: int) -> int {
    var h = 5381;
    var i = 0;
    var c = peek8(p);
    while (c != 0) {
        h = (h << 5) + h + c;
        i = i + 1;
        c = peek8(p + i);
    }
    return h;
}

fn parse_int(p: int) -> int {
    var v = 0;
    var i = 0;
    var neg = 0;
    if (peek8(p) == 45) { neg = 1; i = 1; }
    while (is_digit(peek8(p + i))) {
        v = v * 10 + (peek8(p + i) - 48);
        i = i + 1;
    }
    if (neg) { return 0 - v; }
    return v;
}

fn append_dec(dst: int, v: int) -> int {
    var n = 0;
    if (v == 0) { poke8(dst, 48); poke8(dst + 1, 0); return 1; }
    var x = v;
    if (x < 0) { poke8(dst, 45); n = 1; x = 0 - x; }
    var digits = 0;
    var probe = x;
    while (probe > 0) { digits = digits + 1; probe = probe - (probe >> 1) - ((probe - (probe >> 1)) - probe * 0); probe = 0; }
    var i = 0;
    while (x > 0) {
        var q = 0;
        var r = x;
        while (r >= 10) { r = r - 10; q = q + 1; }
        poke8(dst + n + i, 48 + r);
        x = q;
        i = i + 1;
    }
    poke8(dst + n + i, 0);
    return n + i;
}
"#;

// ------------------------------------------------------------------
// wget
// ------------------------------------------------------------------

/// wget: the Table 2 line-6 package (CVE-2014-4877, `ftp_retrieve_glob`).
pub const WGET_SPEC: PackageSpec = PackageSpec {
    name: "wget",
    executable: "bin/wget",
    library: false,
    versions: &[
        VersionSpec {
            version: "1.12",
            order: 1,
            vulnerable: &["ftp_retrieve_glob"],
        },
        VersionSpec {
            version: "1.15",
            order: 2,
            vulnerable: &["ftp_retrieve_glob"],
        },
        VersionSpec {
            version: "1.16",
            order: 3,
            vulnerable: &[],
        },
    ],
    features: &["opie", "cookies"],
};

fn wget_source(version: &str, disabled: &[&str]) -> String {
    let mut s = String::new();
    s.push_str(
        r#"
global urlbuf: [byte; 128];
global hostbuf: [byte; 64];
global globpat: [byte; 64];
global listing: [byte; 160];
global ftp_state: [int; 8];
global msg_glob = "globbing";
global msg_err = "ftp error";
"#,
    );
    // url_parse: scheme/host/path splitting.
    s.push_str(
        r#"
fn url_parse(url: int, hostout: int) -> int {
    var i = str_chr(url, 58);
    if (i < 0) { return 0 - 1; }
    var j = 0;
    var p = url + i + 3;
    var c = peek8(p);
    while (c != 0 && c != 47 && j < 63) {
        poke8(hostout + j, to_lower(c));
        j = j + 1;
        c = peek8(p + j);
    }
    poke8(hostout + j, 0);
    if (j == 0) { return 0 - 1; }
    return i + 3 + j;
}

fn host_lookup(host: int) -> int {
    var h = hash_str(host);
    var bucket = h & 1023;
    if (bucket == 0) { return 0 - 1; }
    return bucket;
}

fn fnmatch_glob(pat: int, name: int) -> int {
    var pi = 0;
    var ni = 0;
    while (1) {
        var pc = peek8(pat + pi);
        var nc = peek8(name + ni);
        if (pc == 0) {
            if (nc == 0) { return 1; }
            return 0;
        }
        if (pc == 42) {
            if (peek8(pat + pi + 1) == 0) { return 1; }
            while (nc != 0) {
                if (fnmatch_glob(pat + pi + 1, name + ni)) { return 1; }
                ni = ni + 1;
                nc = peek8(name + ni);
            }
            return 0;
        }
        if (pc == 63) {
            if (nc == 0) { return 0; }
        } else if (pc != nc) {
            return 0;
        }
        pi = pi + 1;
        ni = ni + 1;
    }
    return 0;
}

fn ftp_parse_ls(list: int, out: int) -> int {
    var i = 0;
    var count = 0;
    var o = 0;
    var c = peek8(list);
    while (c != 0) {
        if (c == 10) {
            poke8(out + o, 0);
            count = count + 1;
            o = o + 1;
        } else {
            if (c != 13) { poke8(out + o, c); o = o + 1; }
        }
        i = i + 1;
        c = peek8(list + i);
    }
    poke8(out + o, 0);
    return count;
}
"#,
    );
    // The vulnerable procedure: 1.15 matches the paper's query; 1.12 is
    // the older divergent body (the paper's false-positive source);
    // 1.16 adds the sanitation fix for CVE-2014-4877.
    match version {
        "1.12" => s.push_str(
            r#"
fn ftp_retrieve_glob(action: int) -> int {
    var matched = 0;
    var count = ftp_parse_ls(&listing, &wkbuf);
    var idx = 0;
    var off = 0;
    while (idx < count) {
        if (fnmatch_glob(&globpat, &wkbuf + off)) {
            matched = matched + 1;
            ftp_state[1] = idx;
        }
        off = off + str_len(&wkbuf + off) + 1;
        idx = idx + 1;
    }
    ftp_state[0] = matched;
    if (matched == 0 && action == 31) { return 0 - 1; }
    return matched;
}
"#,
        ),
        _ => {
            let sanitize = if version == "1.16" {
                // The fix: reject path components escaping the cwd.
                r#"
        var dot = peek8(&wkbuf + off);
        if (dot == 46 && peek8(&wkbuf + off + 1) == 46) {
            log_msg(&msg_err, idx);
            off = off + str_len(&wkbuf + off) + 1;
            idx = idx + 1;
            continue;
        }
"#
            } else {
                ""
            };
            s.push_str(&format!(
                r#"
fn ftp_retrieve_glob(action: int) -> int {{
    var matched = 0;
    var err = 0;
    var count = ftp_parse_ls(&listing, &wkbuf);
    var idx = 0;
    var off = 0;
    log_msg(&msg_glob, count);
    while (idx < count) {{{sanitize}
        var hit = fnmatch_glob(&globpat, &wkbuf + off);
        if (hit) {{
            matched = matched + 1;
            ftp_state[1] = idx;
            if (get_ftp(&wkbuf + off, action) < 0) {{ err = err + 1; }}
        }}
        off = off + str_len(&wkbuf + off) + 1;
        idx = idx + 1;
    }}
    ftp_state[0] = matched;
    if (action == 31 && matched == 0) {{ return 0 - 31; }}
    if (err > 0) {{ return 0 - err; }}
    return matched;
}}
"#
            ));
        }
    }
    s.push_str(
        r#"
fn get_ftp(path: int, flags: int) -> int {
    var h = host_lookup(&hostbuf);
    if (h < 0) { return 0 - 2; }
    var n = str_len(path);
    if (n == 0) { return 0 - 1; }
    ftp_state[2] = ftp_state[2] + 1;
    ftp_state[3] = flags;
    if ((flags & 8) != 0) {
        ftp_state[4] = h ^ n;
    }
    return n;
}

fn read_response(buf: int, cap: int) -> int {
    var i = 0;
    var code = 0;
    while (i < 3 && i < cap) {
        var c = peek8(buf + i);
        if (!is_digit(c)) { return 0 - 1; }
        code = code * 10 + (c - 48);
        i = i + 1;
    }
    return code;
}

fn http_get(url: int, flags: int) -> int {
    var plen = url_parse(url, &hostbuf);
    if (plen < 0) { return 0 - 1; }
    var code = read_response(&listing, 160);
    if (code >= 400) { return 0 - code; }
    return plen + (flags & 3);
}

fn header_parse(buf: int, nameout: int) -> int {
    var colon = str_chr(buf, 58);
    if (colon < 0) { return 0 - 1; }
    var i = 0;
    while (i < colon && i < 31) {
        poke8(nameout + i, to_lower(peek8(buf + i)));
        i = i + 1;
    }
    poke8(nameout + i, 0);
    var v = colon + 1;
    while (peek8(buf + v) == 32) { v = v + 1; }
    return v;
}

fn http_post(url: int, body: int, flags: int) -> int {
    var plen = url_parse(url, &hostbuf);
    if (plen < 0) { return 0 - 1; }
    var blen = str_len(body);
    if (blen == 0 && (flags & 4) == 0) { return 0 - 2; }
    ftp_state[5] = ftp_state[5] + blen;
    var code = read_response(&listing, 160);
    if (code == 301 || code == 302) {
        return http_get(url, flags | 16);
    }
    return code;
}

fn ftp_login(user: int, pass: int) -> int {
    var uh = hash_str(user);
    if (str_len(pass) == 0) { return 0 - 530; }
    var ph = hash_str(pass);
    ftp_state[6] = (uh ^ ph) & 0xffff;
    if (ftp_state[6] == 0) { return 0 - 1; }
    return 230;
}

fn log_msg(msg: int, v: int) {
    var n = str_len(msg);
    if (n > 120) { n = 120; }
    mem_cpy(&wkbuf, msg, n);
    ftp_state[7] = ftp_state[7] + v;
}

fn retrieve_url(url: int, action: int) -> int {
    var kind = str_chr(url, 58);
    if (kind < 0) { return 0 - 1; }
    if (peek8(url) == 102) {
        return ftp_retrieve_glob(action);
    }
    return http_get(url, action);
}
"#,
    );
    if !disabled.contains(&"opie") {
        s.push_str(
            r#"
fn skey_resp(challenge: int, out: int) -> int {
    var seq = parse_int(challenge);
    var i = str_chr(challenge, 32);
    if (i < 0) { return 0 - 1; }
    var h = hash_str(challenge + i + 1);
    var round = 0;
    while (round < seq) {
        h = (h << 3) + (h >> 5) + round;
        h = h ^ 0x5c5c;
        round = round + 1;
    }
    return append_dec(out, h);
}
"#,
        );
    }
    if !disabled.contains(&"cookies") {
        s.push_str(
            r#"
global cookiejar: [byte; 160];
global cookiecnt: [int; 1];

fn cookie_store(name: int, value: int) -> int {
    var off = cookiecnt[0];
    var n = str_cpy(&cookiejar + off, name);
    poke8(&cookiejar + off + n, 61);
    var m = str_cpy(&cookiejar + off + n + 1, value);
    cookiecnt[0] = off + n + m + 2;
    return cookiecnt[0];
}

fn cookie_lookup(name: int) -> int {
    var off = 0;
    while (off < cookiecnt[0]) {
        var eq = str_chr(&cookiejar + off, 61);
        if (eq > 0) {
            poke8(&cookiejar + off + eq, 0);
            var r = str_cmp(&cookiejar + off, name);
            poke8(&cookiejar + off + eq, 61);
            if (r == 0) { return off + eq + 1; }
        }
        off = off + str_len(&cookiejar + off) + 1;
    }
    return 0 - 1;
}
"#,
        );
    }
    // Entry point that keeps everything reachable.
    let mut calls = String::from(
        "    var r = retrieve_url(&urlbuf, a);\n    r = r + get_ftp(&globpat, 1);\n    r = r + http_post(&urlbuf, &listing, a) + ftp_login(&hostbuf, &urlbuf);\n    r = r + header_parse(&listing, &wkbuf);\n",
    );
    if !disabled.contains(&"opie") {
        calls.push_str("    r = r + skey_resp(&listing, &wkbuf);\n");
    }
    if !disabled.contains(&"cookies") {
        calls.push_str("    r = r + cookie_store(&hostbuf, &urlbuf) + cookie_lookup(&hostbuf);\n");
    }
    s.push_str(&format!(
        "\nfn main(a: int) -> int {{\n{calls}    return r;\n}}\n"
    ));
    s
}

// ------------------------------------------------------------------
// vsftpd
// ------------------------------------------------------------------

/// vsftpd: Table 2 line 1 (CVE-2011-0762, `vsf_filename_passes_filter`).
pub const VSFTPD_SPEC: PackageSpec = PackageSpec {
    name: "vsftpd",
    executable: "bin/vsftpd",
    library: false,
    versions: &[
        VersionSpec {
            version: "2.3.2",
            order: 1,
            vulnerable: &["vsf_filename_passes_filter"],
        },
        VersionSpec {
            version: "2.3.5",
            order: 2,
            vulnerable: &["vsf_filename_passes_filter"],
        },
        VersionSpec {
            version: "3.0.2",
            order: 3,
            vulnerable: &[],
        },
    ],
    features: &["ssl"],
};

fn vsftpd_source(version: &str, disabled: &[&str]) -> String {
    let mut s = String::new();
    s.push_str(
        r#"
global cmdbuf: [byte; 128];
global userbuf: [byte; 64];
global filter: [byte; 64];
global sess: [int; 16];
global resp_ok = "200 ok";
global resp_no = "550 denied";
"#,
    );
    // The vulnerable filter: unbounded recursion on `{}`/`*` patterns
    // (the DoS); the fix bounds iterations.
    let guard_decl = if version == "3.0.2" {
        "var steps = 0;\n    "
    } else {
        ""
    };
    let guard = if version == "3.0.2" {
        "steps = steps + 1;\n        if (steps > 128) { return 0; }\n        "
    } else {
        ""
    };
    s.push_str(&format!(
        r#"
fn vsf_filename_passes_filter(name: int, filt: int) -> int {{
    var ni = 0;
    var fi = 0;
    {guard_decl}var matched = 1;
    while (1) {{
        {guard}var fc = peek8(filt + fi);
        var nc = peek8(name + ni);
        if (fc == 0) {{
            if (nc != 0) {{ matched = 0; }}
            break;
        }}
        if (fc == 42) {{
            var rest = filt + fi + 1;
            while (nc != 0) {{
                if (vsf_filename_passes_filter(name + ni, rest)) {{ return 1; }}
                ni = ni + 1;
                nc = peek8(name + ni);
            }}
            return vsf_filename_passes_filter(name + ni, rest);
        }}
        if (fc == 123) {{
            var close = str_chr(filt + fi, 125);
            if (close < 0) {{ matched = 0; break; }}
            fi = fi + close;
        }} else {{
            if (fc != nc) {{ matched = 0; break; }}
            ni = ni + 1;
        }}
        fi = fi + 1;
    }}
    return matched;
}}
"#
    ));
    s.push_str(
        r#"
fn vsf_sanitize_filename(name: int, filt: int) -> int {
    var ni = 0;
    var fi = 0;
    var matched = 1;
    var dots = 0;
    var slashes = 0;
    while (1) {
        var fc = peek8(filt + fi);
        var nc = peek8(name + ni);
        if (fc == 0) {
            if (nc != 0) { matched = 0; }
            break;
        }
        if (fc == 42) {
            var rest = filt + fi + 1;
            while (nc != 0) {
                if (vsf_sanitize_filename(name + ni, rest)) { return 1 + dots; }
                ni = ni + 1;
                nc = peek8(name + ni);
            }
            return vsf_sanitize_filename(name + ni, rest);
        }
        if (fc == 123) {
            var close = str_chr(filt + fi, 125);
            if (close < 0) { matched = 0; break; }
            fi = fi + close;
        } else {
            if (nc == 46) { dots = dots + 1; }
            if (nc == 47) { slashes = slashes + 1; }
            if (fc != nc) { matched = 0; break; }
            ni = ni + 1;
        }
        fi = fi + 1;
    }
    if (slashes > 4) { return 0; }
    if (dots > 2 && matched) { return 2; }
    return matched;
}

fn str_locate(hay: int, needle: int) -> int {
    var i = 0;
    var hc = peek8(hay);
    while (hc != 0) {
        var j = 0;
        while (1) {
            var nc = peek8(needle + j);
            if (nc == 0) { return i; }
            if (peek8(hay + i + j) != nc) { break; }
            j = j + 1;
        }
        i = i + 1;
        hc = peek8(hay + i);
    }
    return 0 - 1;
}

fn tunable_lookup(name: int) -> int {
    var h = hash_str(name);
    var slot = h & 15;
    return sess[slot];
}

fn send_reply(text: int, code: int) -> int {
    var n = str_len(text);
    mem_cpy(&wkbuf, text, n);
    sess[1] = code;
    return n;
}

fn handle_user(arg: int) -> int {
    var n = str_ncpy(&userbuf, arg, 63);
    if (n == 0) { return send_reply(&resp_no, 550); }
    sess[2] = hash_str(&userbuf);
    return send_reply(&resp_ok, 331);
}

fn handle_pass(arg: int) -> int {
    var h = hash_str(arg) ^ sess[2];
    if ((h & 0xff) == 0x2a) {
        sess[3] = 1;
        return send_reply(&resp_ok, 230);
    }
    return send_reply(&resp_no, 530);
}

fn handle_retr(arg: int) -> int {
    if (!sess[3]) { return send_reply(&resp_no, 530); }
    if (!vsf_filename_passes_filter(arg, &filter)) {
        return send_reply(&resp_no, 550);
    }
    sess[4] = sess[4] + 1;
    return send_reply(&resp_ok, 150);
}

fn handle_stor(arg: int) -> int {
    if (!sess[3]) { return send_reply(&resp_no, 530); }
    var bad = str_locate(arg, &resp_no);
    if (bad >= 0) { return send_reply(&resp_no, 553); }
    sess[5] = sess[5] + 1;
    return send_reply(&resp_ok, 150);
}

fn ascii_convert(buf: int, n: int) -> int {
    var i = 0;
    var m = n;
    var converted = 0;
    while (i < m) {
        var c = peek8(buf + i);
        if (c == 13) {
            var j = i;
            while (j + 1 < m) {
                poke8(buf + j, peek8(buf + j + 1));
                j = j + 1;
            }
            m = m - 1;
            converted = converted + 1;
        } else {
            i = i + 1;
        }
    }
    return converted;
}

fn handle_list(arg: int) -> int {
    if (!sess[3]) { return send_reply(&resp_no, 530); }
    var count = 0;
    var off = 0;
    var n = str_len(arg + off);
    while (n > 0 && off < 96) {
        if (vsf_filename_passes_filter(arg + off, &filter)) { count = count + 1; }
        off = off + n + 1;
        n = str_len(arg + off);
    }
    sess[8] = count;
    return send_reply(&resp_ok, 150);
}

fn handle_cwd(arg: int) -> int {
    if (str_locate(arg, &resp_no) >= 0) { return send_reply(&resp_no, 550); }
    if (secure_chroot(arg) < 0) { return send_reply(&resp_no, 550); }
    sess[9] = hash_str(arg);
    return send_reply(&resp_ok, 250);
}

fn data_channel_send(buf: int, n: int) -> int {
    var sent = 0;
    if (sess[10]) { sent = ascii_convert(buf, n); }
    sess[11] = sess[11] + n - sent;
    return n - sent;
}

fn secure_chroot(path: int) -> int {
    var n = str_len(path);
    if (n == 0 || peek8(path) != 47) { return 0 - 1; }
    sess[6] = hash_str(path);
    return 0;
}

fn session_init(uid: int) -> int {
    var i = 0;
    while (i < 16) { sess[i] = 0; i = i + 1; }
    sess[0] = uid;
    return secure_chroot(&cmdbuf);
}

fn cmd_dispatch(cmd: int, arg: int) -> int {
    var h = hash_str(cmd) & 7;
    if (h == 0) { return handle_user(arg); }
    if (h == 1) { return handle_pass(arg); }
    if (h == 2) { return handle_retr(arg); }
    if (h == 3) { return handle_stor(arg); }
    if (h == 4) { return tunable_lookup(arg); }
    if (h == 5) { return vsf_sanitize_filename(arg, &filter); }
    if (h == 6) { return handle_list(arg); }
    if (h == 7) { return handle_cwd(arg); }
    return send_reply(&resp_no, 500);
}
"#,
    );
    if !disabled.contains(&"ssl") {
        s.push_str(
            r#"
fn ssl_handshake(seed: int) -> int {
    var state = seed | 1;
    var round = 0;
    while (round < 16) {
        state = state * 0x343fd + 0x269ec3;
        state = state ^ (state >> 16);
        round = round + 1;
    }
    sess[7] = state;
    return state & 0x7fffffff;
}
"#,
        );
    }
    let ssl_call = if disabled.contains(&"ssl") {
        ""
    } else {
        "    r = r + ssl_handshake(a);\n"
    };
    s.push_str(&format!(
        "\nfn main(a: int) -> int {{\n    var r = session_init(a);\n    r = r + cmd_dispatch(&cmdbuf, &userbuf);\n    r = r + data_channel_send(&cmdbuf, a & 63);\n{ssl_call}    return r;\n}}\n"
    ));
    s
}

// ------------------------------------------------------------------
// bftpd
// ------------------------------------------------------------------

/// bftpd: Table 2 line 2 (CVE-2009-4593, `bftpdutmp_log`).
pub const BFTPD_SPEC: PackageSpec = PackageSpec {
    name: "bftpd",
    executable: "bin/bftpd",
    library: false,
    versions: &[
        VersionSpec {
            version: "2.1",
            order: 1,
            vulnerable: &["bftpdutmp_log"],
        },
        VersionSpec {
            version: "4.6",
            order: 2,
            vulnerable: &[],
        },
    ],
    features: &[],
};

fn bftpd_source(version: &str, _disabled: &[&str]) -> String {
    let mut s = String::new();
    s.push_str(
        r#"
global utmp: [byte; 160];
global utmp_pos: [int; 1];
global linebuf: [byte; 128];
global conf: [int; 8];
global motd = "220 bftpd ready";
"#,
    );
    // Vulnerable: no bounds check on the utmp record write; fixed
    // version clamps.
    let clamp = if version == "4.6" {
        "    if (utmp_pos[0] + n + 8 > 152) { utmp_pos[0] = 0; }\n"
    } else {
        ""
    };
    s.push_str(&format!(
        r#"
fn bftpdutmp_log(user: int, action: int) -> int {{
    var pos = utmp_pos[0];
    var n = str_len(user);
{clamp}    pos = utmp_pos[0];
    poke8(&utmp + pos, action);
    var i = 0;
    while (i < n) {{
        poke8(&utmp + pos + 1 + i, peek8(user + i));
        i = i + 1;
    }}
    poke8(&utmp + pos + 1 + n, 0);
    utmp_pos[0] = pos + n + 2;
    conf[1] = conf[1] + 1;
    return pos;
}}
"#
    ));
    s.push_str(
        r#"
fn config_read(key: int) -> int {
    var h = hash_str(key);
    return conf[h & 7];
}

fn path_resolve(path: int, out: int) -> int {
    var i = 0;
    var o = 0;
    var c = peek8(path);
    while (c != 0) {
        if (c == 47 && peek8(path + i + 1) == 47) {
            i = i + 1;
        } else {
            poke8(out + o, c);
            o = o + 1;
            i = i + 1;
        }
        c = peek8(path + i);
    }
    poke8(out + o, 0);
    return o;
}

fn chroot_setup(root: int) -> int {
    var n = path_resolve(root, &linebuf);
    if (n == 0 || peek8(&linebuf) != 47) { return 0 - 1; }
    conf[3] = hash_str(&linebuf);
    return n;
}

fn xfer_stats(nbytes: int, ticks: int) -> int {
    if (ticks <= 0) { return nbytes; }
    var rate = 0;
    var left = nbytes;
    while (left >= ticks) { left = left - ticks; rate = rate + 1; }
    conf[4] = rate;
    return rate;
}

fn login_check(user: int, pass: int) -> int {
    var uh = hash_str(user);
    var ph = hash_str(pass);
    if ((uh ^ ph) == 0) { return 0 - 1; }
    bftpdutmp_log(user, 1);
    return (uh + ph) & 0xffff;
}

fn send_line(text: int) -> int {
    var n = str_ncpy(&linebuf, text, 127);
    conf[2] = conf[2] + n;
    return n;
}

fn command_loop(cmd: int) -> int {
    var total = 0;
    var kind = peek8(cmd);
    if (kind == 85) { total = login_check(cmd + 5, cmd + 10); }
    else if (kind == 81) { bftpdutmp_log(cmd + 5, 0); total = send_line(&motd); }
    else { total = path_resolve(cmd, &linebuf); }
    return total;
}

fn main(a: int) -> int {
    var r = send_line(&motd);
    r = r + command_loop(&linebuf) + config_read(&motd) + a;
    r = r + chroot_setup(&linebuf) + xfer_stats(a * 100, a & 7);
    return r;
}
"#,
    );
    s
}

// ------------------------------------------------------------------
// libcurl
// ------------------------------------------------------------------

/// libcurl: Table 2 lines 3, 4 and 7 (three CVEs across versions), plus
/// the deprecated `curl_unescape` predecessor (§5.2's "deprecated
/// procedures" finding).
pub const LIBCURL_SPEC: PackageSpec = PackageSpec {
    name: "libcurl",
    executable: "lib/libcurl.so",
    library: true,
    versions: &[
        VersionSpec {
            version: "7.15",
            order: 1,
            vulnerable: &["curl_unescape", "tailmatch"],
        },
        VersionSpec {
            version: "7.24",
            order: 2,
            vulnerable: &["curl_easy_unescape", "tailmatch"],
        },
        VersionSpec {
            version: "7.50",
            order: 3,
            vulnerable: &["alloc_addbyter"],
        },
    ],
    features: &["cookies"],
};

fn libcurl_source(version: &str, disabled: &[&str]) -> String {
    let mut s = String::new();
    s.push_str(
        r#"
global outbuf: [byte; 160];
global fmtbuf: [byte; 128];
global curl_state: [int; 8];
"#,
    );
    fn unescape_body(name: &str, guarded: bool) -> String {
        // CVE-2012-0036: %-decoding without length validation; the fixed
        // variant validates both hex digits.
        let check = if guarded {
            "if (h1 < 0 || h2 < 0) { poke8(dst + o, c); o = o + 1; i = i + 1; continue; }\n            "
        } else {
            ""
        };
        format!(
            r#"
{pub_kw}fn {name}(src: int, dst: int, len: int) -> int {{
    var i = 0;
    var o = 0;
    var n = len;
    if (n == 0) {{ n = str_len(src); }}
    while (i < n) {{
        var c = peek8(src + i);
        if (c == 37) {{
            var h1 = hex_val(peek8(src + i + 1));
            var h2 = hex_val(peek8(src + i + 2));
            {check}poke8(dst + o, (h1 << 4) | h2);
            o = o + 1;
            i = i + 3;
        }} else {{
            poke8(dst + o, c);
            o = o + 1;
            i = i + 1;
        }}
    }}
    poke8(dst + o, 0);
    return o;
}}
"#,
            pub_kw = "pub ",
            name = name,
            check = check
        )
    }
    s.push_str(
        r#"
fn hex_val(c: int) -> int {
    if (c >= 48 && c <= 57) { return c - 48; }
    var lc = to_lower(c);
    if (lc >= 97 && lc <= 102) { return lc - 87; }
    return 0 - 1;
}
"#,
    );
    match version {
        "7.15" => s.push_str(&unescape_body("curl_unescape", false)),
        "7.24" => s.push_str(&unescape_body("curl_easy_unescape", false)),
        _ => s.push_str(&unescape_body("curl_easy_unescape", true)),
    }
    // tailmatch — CVE-2013-1944: matches cookie domains from the tail
    // without checking the boundary; fixed adds the dot check.
    let tail_fix = if version == "7.50" {
        "    if (hl > nl) {\n        var boundary = peek8(hay + hl - nl - 1);\n        if (boundary != 46) { return 0; }\n    }\n"
    } else {
        ""
    };
    s.push_str(&format!(
        r#"
fn tailmatch(hay: int, needle: int) -> int {{
    var hl = str_len(hay);
    var nl = str_len(needle);
    if (nl > hl) {{ return 0; }}
    var i = 0;
    while (i < nl) {{
        var hc = to_lower(peek8(hay + hl - nl + i));
        var nc = to_lower(peek8(needle + i));
        if (hc != nc) {{ return 0; }}
        i = i + 1;
    }}
{tail_fix}    return 1;
}}
"#
    ));
    // alloc_addbyter — CVE-2016-8618: unbounded doubling. 7.50 carries
    // the vulnerable body (Table 2 line 7); older versions cap it.
    let cap = if version == "7.50" {
        ""
    } else {
        "    if (newsize > 1024) { newsize = 1024; }\n"
    };
    s.push_str(&format!(
        r#"
fn hostmatch(hay: int, needle: int) -> int {{
    var hl = str_len(hay);
    var nl = str_len(needle);
    var wild = 0;
    if (peek8(needle) == 42) {{ wild = 1; nl = nl - 1; }}
    if (nl > hl) {{ return 0; }}
    var i = 0;
    while (i < nl) {{
        var hc = to_lower(peek8(hay + hl - nl + i));
        var nc = to_lower(peek8(needle + wild + i));
        if (hc != nc) {{ return 0; }}
        i = i + 1;
    }}
    if (wild == 0 && hl != nl) {{ return 0; }}
    return 1;
}}

fn alloc_addbyter(c: int, used: int, size: int) -> int {{
    var newsize = size;
    if (used + 1 >= size) {{
        newsize = size * 2;
{cap}        curl_state[2] = curl_state[2] + 1;
    }}
    poke8(&outbuf + (used & 127), c);
    curl_state[3] = used + 1;
    return newsize;
}}

fn mprintf_fmt(fmt: int, arg: int) -> int {{
    var i = 0;
    var size = 16;
    var used = 0;
    var c = peek8(fmt);
    while (c != 0) {{
        if (c == 37) {{
            var n = append_dec(&fmtbuf, arg);
            var j = 0;
            while (j < n) {{
                size = alloc_addbyter(peek8(&fmtbuf + j), used, size);
                used = used + 1;
                j = j + 1;
            }}
            i = i + 2;
        }} else {{
            size = alloc_addbyter(c, used, size);
            used = used + 1;
            i = i + 1;
        }}
        c = peek8(fmt + i);
    }}
    return used;
}}

pub fn curl_easy_perform(handle: int) -> int {{
    var r = mprintf_fmt(&fmtbuf, handle);
    if (tailmatch(&outbuf, &fmtbuf)) {{ r = r + 1; }}
    if (hostmatch(&outbuf, &fmtbuf)) {{ r = r + 2; }}
    curl_state[0] = r;
    return r;
}}

pub fn curl_easy_escape(src: int, dst: int) -> int {{
    var i = 0;
    var o = 0;
    var c = peek8(src);
    while (c != 0) {{
        if (is_alpha(c) || is_digit(c) || c == 45 || c == 46 || c == 95) {{
            poke8(dst + o, c);
            o = o + 1;
        }} else {{
            poke8(dst + o, 37);
            var hi = (c >> 4) & 15;
            var lo = c & 15;
            if (hi < 10) {{ poke8(dst + o + 1, 48 + hi); }} else {{ poke8(dst + o + 1, 55 + hi); }}
            if (lo < 10) {{ poke8(dst + o + 2, 48 + lo); }} else {{ poke8(dst + o + 2, 55 + lo); }}
            o = o + 3;
        }}
        i = i + 1;
        c = peek8(src + i);
    }}
    poke8(dst + o, 0);
    return o;
}}

fn header_append(name: int, value: int) -> int {{
    var n = str_ncpy(&fmtbuf, name, 60);
    poke8(&fmtbuf + n, 58);
    poke8(&fmtbuf + n + 1, 32);
    var m = str_ncpy(&fmtbuf + n + 2, value, 60);
    curl_state[5] = curl_state[5] + 1;
    return n + m + 2;
}}

fn url_decode_path(p: int) -> int {{
    var depth = 0;
    var i = 0;
    var c = peek8(p);
    while (c != 0) {{
        if (c == 47) {{ depth = depth + 1; }}
        i = i + 1;
        c = peek8(p + i);
    }}
    return depth;
}}
"#
    ));
    if !disabled.contains(&"cookies") {
        s.push_str(
            r#"
global cookiebuf: [byte; 160];

fn cookie_add(domain: int, value: int) -> int {
    if (!tailmatch(domain, value)) { return 0 - 1; }
    var n = str_ncpy(&cookiebuf, domain, 80);
    curl_state[4] = curl_state[4] + 1;
    return n;
}
"#,
        );
    }
    let unescape_entry = match version {
        "7.15" => "curl_unescape",
        _ => "curl_easy_unescape",
    };
    let cookie_call = if disabled.contains(&"cookies") {
        String::new()
    } else {
        "    r = r + cookie_add(&outbuf, &fmtbuf);\n".to_string()
    };
    s.push_str(&format!(
        "\nfn main(a: int) -> int {{\n    var r = curl_easy_perform(a);\n    r = r + {unescape_entry}(&fmtbuf, &outbuf, 0) + url_decode_path(&outbuf);\n    r = r + curl_easy_escape(&outbuf, &fmtbuf) + header_append(&outbuf, &fmtbuf);\n{cookie_call}    return r;\n}}\n"
    ));
    s
}

// ------------------------------------------------------------------
// dbus
// ------------------------------------------------------------------

/// dbus: Table 2 line 5 (CVE-2013-2168, `printf_string_upper_bound`).
pub const DBUS_SPEC: PackageSpec = PackageSpec {
    name: "dbus",
    executable: "lib/libdbus.so",
    library: true,
    versions: &[
        VersionSpec {
            version: "1.4.0",
            order: 1,
            vulnerable: &["printf_string_upper_bound"],
        },
        VersionSpec {
            version: "1.6.12",
            order: 2,
            vulnerable: &[],
        },
    ],
    features: &[],
};

fn dbus_source(version: &str, _disabled: &[&str]) -> String {
    // Vulnerable: the %-scanner miscounts wide specifiers; fixed version
    // accounts for the length modifier.
    let wide = if version == "1.6.12" {
        "            if (spec == 108) { bound = bound + 10; i = i + 1; }\n"
    } else {
        ""
    };
    format!(
        r#"
global msgbuf: [byte; 160];
global paths: [byte; 128];
global bus: [int; 8];

fn printf_string_upper_bound(fmt: int, arg: int) -> int {{
    var bound = 1;
    var i = 0;
    var c = peek8(fmt);
    while (c != 0) {{
        if (c == 37) {{
            var spec = peek8(fmt + i + 1);
{wide}            if (spec == 100) {{ bound = bound + 11; }}
            else if (spec == 115) {{ bound = bound + str_len(arg); }}
            else {{ bound = bound + 1; }}
            i = i + 2;
        }} else {{
            bound = bound + 1;
            i = i + 1;
        }}
        c = peek8(fmt + i);
    }}
    return bound;
}}

fn printf_int_upper_bound(fmt: int, radix: int) -> int {{
    var bound = 1;
    var i = 0;
    var c = peek8(fmt);
    while (c != 0) {{
        if (c == 37) {{
            var spec = peek8(fmt + i + 1);
            if (spec == 120) {{ bound = bound + 8 + radix; }}
            else if (spec == 100) {{ bound = bound + 11; }}
            else {{ bound = bound + 2; }}
            i = i + 2;
        }} else {{
            bound = bound + 1;
            i = i + 1;
        }}
        c = peek8(fmt + i);
    }}
    return bound + radix;
}}

fn marshal_int(buf: int, off: int, v: int) -> int {{
    poke8(buf + off, v & 0xff);
    poke8(buf + off + 1, (v >> 8) & 0xff);
    poke8(buf + off + 2, (v >> 16) & 0xff);
    poke8(buf + off + 3, (v >> 24) & 0xff);
    return off + 4;
}}

fn demarshal_int(buf: int, off: int) -> int {{
    var v = peek8(buf + off);
    v = v | (peek8(buf + off + 1) << 8);
    v = v | (peek8(buf + off + 2) << 16);
    v = v | (peek8(buf + off + 3) << 24);
    return v;
}}

fn validate_path(p: int) -> int {{
    if (peek8(p) != 47) {{ return 0; }}
    var i = 1;
    var c = peek8(p + 1);
    while (c != 0) {{
        if (c == 47 && peek8(p + i + 1) == 47) {{ return 0; }}
        if (!is_alpha(c) && !is_digit(c) && c != 47 && c != 95) {{ return 0; }}
        i = i + 1;
        c = peek8(p + i);
    }}
    return 1;
}}

pub fn message_append(msg: int, v: int) -> int {{
    var off = bus[0];
    var bound = printf_string_upper_bound(msg, msg);
    if (bound > 150) {{ return 0 - 1; }}
    off = marshal_int(&msgbuf, off, v);
    bus[0] = off;
    return off;
}}

fn auth_handshake(cred: int) -> int {{
    var state = 0;
    var i = 0;
    var c = peek8(cred + i);
    while (c != 0) {{
        if (state == 0 && c == 65) {{ state = 1; }}
        else if (state == 1 && c == 85) {{ state = 2; }}
        else if (state == 2 && is_digit(c)) {{ state = 3; }}
        else if (state == 3 && c == 13) {{ return bus[2] | 1; }}
        i = i + 1;
        c = peek8(cred + i);
    }}
    return 0 - state;
}}

fn watch_dispatch(fd: int, events: int) -> int {{
    var handled = 0;
    if ((events & 1) != 0) {{ bus[3] = bus[3] + 1; handled = handled + 1; }}
    if ((events & 4) != 0) {{ bus[4] = bus[4] + 1; handled = handled + 1; }}
    if ((events & 8) != 0) {{ bus[5] = fd; return 0 - 1; }}
    return handled;
}}

fn bus_connect(addr: int) -> int {{
    if (!validate_path(addr)) {{ return 0 - 1; }}
    bus[1] = hash_str(addr);
    return bus[1] & 0xffff;
}}

fn main(a: int) -> int {{
    var r = bus_connect(&paths);
    r = r + message_append(&msgbuf, a);
    r = r + demarshal_int(&msgbuf, 0);
    r = r + printf_int_upper_bound(&msgbuf, a & 15);
    r = r + auth_handshake(&msgbuf) + watch_dispatch(a, a & 13);
    return r;
}}
"#
    )
}

// ------------------------------------------------------------------
// libexif
// ------------------------------------------------------------------

/// libexif: the §5.3 exported-procedure query (CVE-2012-2841).
pub const LIBEXIF_SPEC: PackageSpec = PackageSpec {
    name: "libexif",
    executable: "lib/libexif.so",
    library: true,
    versions: &[
        VersionSpec {
            version: "0.6.20",
            order: 1,
            vulnerable: &["exif_entry_get_value"],
        },
        VersionSpec {
            version: "0.6.21",
            order: 2,
            vulnerable: &[],
        },
    ],
    features: &[],
};

fn libexif_source(version: &str, _disabled: &[&str]) -> String {
    // Vulnerable: off-by-one when NUL-terminating the formatted value.
    let bound = if version == "0.6.21" {
        "cap - 1"
    } else {
        "cap"
    };
    format!(
        r#"
global ifd: [byte; 160];
global valbuf: [byte; 64];
global exif_meta: [int; 8];

fn exif_get_short(buf: int, off: int) -> int {{
    return peek8(buf + off) | (peek8(buf + off + 1) << 8);
}}

fn exif_get_long(buf: int, off: int) -> int {{
    return exif_get_short(buf, off) | (exif_get_short(buf, off + 2) << 16);
}}

fn exif_tag_name(tag: int) -> int {{
    if (tag == 0x010f) {{ return 1; }}
    if (tag == 0x0110) {{ return 2; }}
    if (tag == 0x0112) {{ return 3; }}
    if (tag == 0x8769) {{ return 4; }}
    return 0;
}}

pub fn exif_entry_get_value(entry: int, out: int, cap: int) -> int {{
    var tag = exif_get_short(entry, 0);
    var kind = exif_get_short(entry, 2);
    var count = exif_get_long(entry, 4);
    var name = exif_tag_name(tag);
    if (name == 0) {{ return 0 - 1; }}
    var n = 0;
    if (kind == 2) {{
        var i = 0;
        while (i < count && i < {bound}) {{
            poke8(out + i, peek8(entry + 8 + i));
            i = i + 1;
        }}
        poke8(out + i, 0);
        n = i;
    }} else {{
        n = append_dec(out, count);
    }}
    exif_meta[1] = exif_meta[1] + 1;
    return n;
}}

fn exif_get_rational(buf: int, off: int, denomout: int) -> int {{
    var numer = exif_get_long(buf, off);
    var denom = exif_get_long(buf, off + 4);
    if (denom == 0) {{ poke(denomout, 1); return 0; }}
    poke(denomout, denom);
    return numer;
}}

pub fn exif_data_save(buf: int, len: int) -> int {{
    if (len < 8) {{ return 0 - 1; }}
    poke8(buf, 0x49);
    poke8(buf + 1, 0x49);
    poke8(buf + 2, 42);
    poke8(buf + 3, 0);
    var off = 8;
    poke8(buf + 4, off & 255);
    poke8(buf + 5, 0);
    poke8(buf + 6, 0);
    poke8(buf + 7, 0);
    exif_meta[2] = exif_meta[2] + 1;
    return off;
}}

fn exif_parse_ifd(buf: int, off: int) -> int {{
    var count = exif_get_short(buf, off);
    var i = 0;
    var good = 0;
    while (i < count && i < 16) {{
        var entry = buf + off + 2 + i * 12;
        if (exif_entry_get_value(entry, &valbuf, 64) >= 0) {{ good = good + 1; }}
        i = i + 1;
    }}
    exif_meta[0] = good;
    return good;
}}

pub fn exif_data_load(buf: int, len: int) -> int {{
    if (len < 8) {{ return 0 - 1; }}
    if (exif_get_short(buf, 0) != 0x4949) {{ return 0 - 2; }}
    var off = exif_get_long(buf, 4);
    if (off + 2 > len) {{ return 0 - 3; }}
    return exif_parse_ifd(buf, off);
}}

fn main(a: int) -> int {{
    var r = exif_data_load(&ifd, 160) + a;
    r = r + exif_data_save(&ifd, 160) + exif_get_rational(&ifd, 8, &exif_meta);
    return r;
}}
"#
    )
}

// ------------------------------------------------------------------
// net-snmp
// ------------------------------------------------------------------

/// net-snmp: the §5.3 exported-procedure query (`snmp_pdu_parse`).
pub const NETSNMP_SPEC: PackageSpec = PackageSpec {
    name: "net-snmp",
    executable: "bin/snmpd",
    library: true,
    versions: &[
        VersionSpec {
            version: "5.7.2",
            order: 1,
            vulnerable: &["snmp_pdu_parse"],
        },
        VersionSpec {
            version: "5.7.3",
            order: 2,
            vulnerable: &[],
        },
    ],
    features: &[],
};

fn netsnmp_source(version: &str, _disabled: &[&str]) -> String {
    // Vulnerable: incomplete varbind list parsing leaves a dangling
    // element (CVE-2014-3565-style); fixed zeroes the tail.
    let fix = if version == "5.7.3" {
        "    while (n < 16) { pdu[n & 15] = 0; n = n + 1; }\n"
    } else {
        ""
    };
    format!(
        r#"
global packet: [byte; 160];
global community: [byte; 32];
global pdu: [int; 16];
global oidbuf: [int; 16];

fn asn_parse_len(buf: int, off: int) -> int {{
    var b = peek8(buf + off);
    if (b < 128) {{ return b; }}
    var nbytes = b & 127;
    var v = 0;
    var i = 0;
    while (i < nbytes && i < 4) {{
        v = (v << 8) | peek8(buf + off + 1 + i);
        i = i + 1;
    }}
    return v;
}}

fn asn_parse_int(buf: int, off: int) -> int {{
    if (peek8(buf + off) != 2) {{ return 0 - 1; }}
    var len = asn_parse_len(buf, off + 1);
    var v = 0;
    var i = 0;
    while (i < len && i < 4) {{
        v = (v << 8) | peek8(buf + off + 2 + i);
        i = i + 1;
    }}
    return v;
}}

fn asn_parse_string(buf: int, off: int, out: int) -> int {{
    if (peek8(buf + off) != 4) {{ return 0 - 1; }}
    var len = asn_parse_len(buf, off + 1);
    var i = 0;
    while (i < len && i < 31) {{
        poke8(out + i, peek8(buf + off + 2 + i));
        i = i + 1;
    }}
    poke8(out + i, 0);
    return len;
}}

fn oid_compare(a: int, b: int, n: int) -> int {{
    var i = 0;
    while (i < n) {{
        var av = peek(a + i * 4);
        var bv = peek(b + i * 4);
        if (av < bv) {{ return 0 - 1; }}
        if (av > bv) {{ return 1; }}
        i = i + 1;
    }}
    return 0;
}}

fn community_check(buf: int, off: int) -> int {{
    var n = asn_parse_string(buf, off, &community);
    if (n <= 0) {{ return 0 - 1; }}
    return hash_str(&community) & 0xffff;
}}

pub fn snmp_pdu_parse(buf: int, len: int) -> int {{
    if (peek8(buf) != 48) {{ return 0 - 1; }}
    var ver = asn_parse_int(buf, 2);
    if (ver < 0 || ver > 3) {{ return 0 - 2; }}
    var off = 5;
    var comm = community_check(buf, off);
    if (comm < 0) {{ return 0 - 3; }}
    off = off + 2 + (comm & 7);
    var n = 0;
    while (off < len && n < 16) {{
        var t = peek8(buf + off);
        if (t == 6) {{
            pdu[n] = asn_parse_len(buf, off + 1);
            n = n + 1;
        }}
        off = off + 2 + asn_parse_len(buf, off + 1);
    }}
{fix}    pdu[0] = pdu[0] | (n << 8);
    return n;
}}

fn mib_lookup(oid: int, n: int) -> int {{
    var best = 0 - 1;
    var i = 0;
    while (i < 16) {{
        if (oidbuf[i] != 0) {{
            if (oid_compare(oid, &oidbuf, n) <= 0) {{ best = i; }}
        }}
        i = i + 1;
    }}
    return best;
}}

fn snmp_build_response(buf: int, code: int, n: int) -> int {{
    poke8(buf, 48);
    poke8(buf + 1, n & 127);
    poke8(buf + 2, 2);
    poke8(buf + 3, 1);
    poke8(buf + 4, code & 255);
    var i = 0;
    while (i < n && i < 16) {{
        poke8(buf + 5 + i, pdu[i] & 255);
        i = i + 1;
    }}
    return 5 + i;
}}

fn agent_respond(kind: int) -> int {{
    var r = snmp_pdu_parse(&packet, 160);
    if (r < 0) {{ return r; }}
    if (kind == 0) {{ return oid_compare(&pdu, &oidbuf, r & 15); }}
    if (kind == 1) {{ return mib_lookup(&pdu, r & 15); }}
    return snmp_build_response(&packet, r & 3, r & 15);
}}

fn main(a: int) -> int {{
    var r = agent_respond(a);
    return r;
}}
"#
    )
}

// ------------------------------------------------------------------
// busybox (noise package, no CVEs)
// ------------------------------------------------------------------

/// busybox: a no-CVE package that pads firmware images with realistic
/// unrelated procedures.
pub const BUSYBOX_SPEC: PackageSpec = PackageSpec {
    name: "busybox",
    executable: "bin/busybox",
    library: false,
    versions: &[
        VersionSpec {
            version: "1.19",
            order: 1,
            vulnerable: &[],
        },
        VersionSpec {
            version: "1.24",
            order: 2,
            vulnerable: &[],
        },
    ],
    features: &["mount"],
};

fn busybox_source(version: &str, disabled: &[&str]) -> String {
    let mut s = String::new();
    s.push_str(
        r#"
global argbuf: [byte; 128];
global envbuf: [byte; 128];
global applets: [int; 16];

fn getopt_scan(args: int, flagchar: int) -> int {
    var i = 0;
    var c = peek8(args);
    var hits = 0;
    while (c != 0) {
        if (c == 45 && peek8(args + i + 1) == flagchar) { hits = hits + 1; }
        i = i + 1;
        c = peek8(args + i);
    }
    return hits;
}

fn echo_main(args: int) -> int {
    var n = str_len(args);
    mem_cpy(&wkbuf, args, n & 127);
    return n;
}

fn cat_main(args: int) -> int {
    var total = 0;
    var off = 0;
    var n = str_len(args + off);
    while (n > 0) {
        total = total + n;
        off = off + n + 1;
        if (off > 120) { break; }
        n = str_len(args + off);
    }
    return total;
}

fn ls_main(args: int) -> int {
    var longmode = getopt_scan(args, 108);
    var all = getopt_scan(args, 97);
    var count = 0;
    var i = 0;
    while (i < 16) {
        if (applets[i] != 0) {
            count = count + 1;
            if (longmode) { count = count + 1; }
        }
        i = i + 1;
    }
    return count + all;
}

fn wc_main(args: int) -> int {
    var lines = 0;
    var words = 0;
    var inword = 0;
    var i = 0;
    var c = peek8(args + i);
    while (c != 0) {
        if (c == 10) { lines = lines + 1; }
        if (c == 32 || c == 10 || c == 9) {
            inword = 0;
        } else if (!inword) {
            inword = 1;
            words = words + 1;
        }
        i = i + 1;
        c = peek8(args + i);
    }
    return lines * 1000 + words;
}

fn grep_main(pattern: int, text: int) -> int {
    var hits = 0;
    var off = 0;
    var c = peek8(text + off);
    while (c != 0) {
        var j = 0;
        while (1) {
            var pc = peek8(pattern + j);
            if (pc == 0) { hits = hits + 1; break; }
            if (peek8(text + off + j) != pc) { break; }
            j = j + 1;
        }
        off = off + 1;
        c = peek8(text + off);
    }
    return hits;
}

fn head_main(text: int, n: int) -> int {
    var lines = 0;
    var i = 0;
    var c = peek8(text + i);
    while (c != 0 && lines < n) {
        if (c == 10) { lines = lines + 1; }
        i = i + 1;
        c = peek8(text + i);
    }
    return i;
}

fn env_lookup(name: int) -> int {
    var off = 0;
    while (off < 120) {
        var n = str_len(&envbuf + off);
        if (n == 0) { return 0 - 1; }
        var eq = str_chr(&envbuf + off, 61);
        if (eq > 0) {
            poke8(&envbuf + off + eq, 0);
            var r = str_cmp(&envbuf + off, name);
            poke8(&envbuf + off + eq, 61);
            if (r == 0) { return off + eq + 1; }
        }
        off = off + n + 1;
    }
    return 0 - 1;
}
"#,
    );
    if version == "1.24" {
        s.push_str(
            r#"
fn seq_main(lo: int, hi: int) -> int {
    var acc = 0;
    var i = lo;
    while (i <= hi) { acc = acc + i; i = i + 1; }
    return acc;
}
"#,
        );
    }
    if !disabled.contains(&"mount") {
        s.push_str(
            r#"
fn mount_main(args: int) -> int {
    var ro = getopt_scan(args, 114);
    var h = hash_str(args);
    applets[h & 15] = h | ro;
    return h & 0x7fffffff;
}
"#,
        );
    }
    let mut calls = String::from(
        "    var r = echo_main(&argbuf) + cat_main(&argbuf) + ls_main(&argbuf);\n    r = r + env_lookup(&envbuf) + wc_main(&envbuf) + grep_main(&argbuf, &envbuf);\n    r = r + head_main(&envbuf, a & 7);\n",
    );
    if version == "1.24" {
        calls.push_str("    r = r + seq_main(1, a & 15);\n");
    }
    if !disabled.contains(&"mount") {
        calls.push_str("    r = r + mount_main(&argbuf);\n");
    }
    s.push_str(&format!(
        "\nfn applet_dispatch(which: int) -> int {{\n    if (which == 0) {{ return echo_main(&argbuf); }}\n    if (which == 1) {{ return cat_main(&argbuf); }}\n    return ls_main(&argbuf);\n}}\n\nfn main(a: int) -> int {{\n{calls}    r = r + applet_dispatch(a & 3);\n    return r;\n}}\n"
    ));
    s
}

// ------------------------------------------------------------------
// Filler generation
// ------------------------------------------------------------------

/// Deterministically generate `count` filler procedures (vendor-specific
/// service code that pads real firmware executables). Returns the extra
/// source plus statements calling them (spliced into `main` by the
/// assembler — all generated code stays reachable).
pub fn filler_functions(seed: u64, count: usize) -> (String, String) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut src = String::new();
    let mut calls = String::new();
    for k in 0..count {
        let id: u32 = rng.gen_range(0x1000..0xffff);
        let c1: i32 = rng.gen_range(1..200);
        let c2: i32 = rng.gen_range(2..30);
        let c3: i32 = rng.gen_range(3..12);
        let sh: i32 = rng.gen_range(1..6);
        let name = format!("svc_{id:04x}_{k}");
        match rng.gen_range(0..4) {
            0 => src.push_str(&format!(
                r#"
fn {name}(a: int, b: int) -> int {{
    var acc = {c1};
    var i = 0;
    while (i < {c3}) {{
        acc = acc + (a ^ (b << {sh})) * {c2};
        if (acc > 100000) {{ acc = acc - 100000; }}
        i = i + 1;
    }}
    return acc;
}}
"#
            )),
            1 => src.push_str(&format!(
                r#"
fn {name}(a: int, b: int) -> int {{
    if (a < b) {{ return (b - a) * {c2} + {c1}; }}
    if (a == b) {{ return {c1}; }}
    var d = a - b;
    var acc = 0;
    while (d > 0) {{ acc = acc + (d & {c3}); d = d >> 1; }}
    return acc;
}}
"#
            )),
            2 => src.push_str(&format!(
                r#"
fn {name}(p: int, n: int) -> int {{
    var sum = {c1};
    var i = 0;
    while (i < n && i < {c3}) {{
        var c = peek8(p + i);
        sum = (sum << {sh}) ^ c;
        i = i + 1;
    }}
    return sum & 0x7fffffff;
}}
"#
            )),
            _ => src.push_str(&format!(
                r#"
fn {name}(a: int, b: int) -> int {{
    var x = a | {c1};
    var y = b & {c2};
    var acc = 0;
    if ((x ^ y) > {c3}) {{ acc = x * {c2} - y; }} else {{ acc = y * {c3} + x; }}
    return acc ^ (acc >> {sh});
}}
"#
            )),
        }
        calls.push_str(&format!("    r = r + {name}(a, r);\n"));
    }
    (src, calls)
}

/// Assemble the full MinC source for a package build.
///
/// # Panics
///
/// Panics on an unknown package or version; hot paths (scan, corpus
/// generation from external inputs) use [`try_source_for`] instead.
pub fn source_for(
    pkg: &str,
    version: &str,
    disabled_features: &[&str],
    filler_seed: u64,
    filler_count: usize,
) -> String {
    try_source_for(pkg, version, disabled_features, filler_seed, filler_count)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Assemble the full MinC source for a package build, reporting unknown
/// packages/versions as [`PackageError`] instead of panicking.
///
/// # Errors
///
/// [`PackageError::UnknownPackage`] / [`PackageError::UnknownVersion`]
/// when the corpus does not model the request.
pub fn try_source_for(
    pkg: &str,
    version: &str,
    disabled_features: &[&str],
    filler_seed: u64,
    filler_count: usize,
) -> Result<String, PackageError> {
    let spec = package(pkg).ok_or_else(|| PackageError::UnknownPackage(pkg.to_string()))?;
    if spec.version(version).is_none() {
        return Err(PackageError::UnknownVersion {
            package: pkg.to_string(),
            version: version.to_string(),
        });
    }
    let body = match pkg {
        "wget" => wget_source(version, disabled_features),
        "vsftpd" => vsftpd_source(version, disabled_features),
        "bftpd" => bftpd_source(version, disabled_features),
        "libcurl" => libcurl_source(version, disabled_features),
        "dbus" => dbus_source(version, disabled_features),
        "libexif" => libexif_source(version, disabled_features),
        "net-snmp" => netsnmp_source(version, disabled_features),
        "busybox" => busybox_source(version, disabled_features),
        other => return Err(PackageError::UnknownPackage(other.to_string())),
    };
    let (filler_src, filler_calls) = if filler_count > 0 {
        filler_functions(filler_seed, filler_count)
    } else {
        (String::new(), String::new())
    };
    // Splice filler calls into main so every generated function is
    // reachable from the entry point.
    let body = if filler_calls.is_empty() {
        body
    } else {
        let needle = "    return r;\n}\n";
        if let Some(pos) = body.rfind(needle) {
            let mut b = body.clone();
            b.insert_str(pos, &filler_calls);
            b
        } else {
            body
        }
    };
    Ok(format!("{PRELUDE}\n{filler_src}\n{body}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmup_compiler::{compile_source, CompilerOptions, ToolchainProfile};
    use firmup_isa::Arch;

    #[test]
    fn every_package_version_compiles_everywhere() {
        for pkg in all_packages() {
            for ver in pkg.versions {
                let src = source_for(pkg.name, ver.version, &[], 42, 3);
                for arch in Arch::all() {
                    for profile in [
                        ToolchainProfile::gcc_like(),
                        ToolchainProfile::vendor_debug(),
                    ] {
                        compile_source(
                            &src,
                            arch,
                            &CompilerOptions {
                                profile: profile.clone(),
                                layout: Default::default(),
                            },
                        )
                        .unwrap_or_else(|e| {
                            panic!(
                                "{}/{} on {arch}/{}: {e}",
                                pkg.name, ver.version, profile.name
                            )
                        });
                    }
                }
            }
        }
    }

    #[test]
    fn vulnerable_procedures_exist_in_their_versions() {
        for pkg in all_packages() {
            for ver in pkg.versions {
                let src = source_for(pkg.name, ver.version, &[], 1, 0);
                let elf = compile_source(&src, Arch::Mips32, &CompilerOptions::default()).unwrap();
                for vuln in ver.vulnerable {
                    assert!(
                        elf.symbols.iter().any(|s| s.name == *vuln),
                        "{}/{}: missing vulnerable procedure {vuln}",
                        pkg.name,
                        ver.version
                    );
                }
            }
        }
    }

    #[test]
    fn cve_list_is_consistent_with_packages() {
        for cve in all_cves() {
            let pkg =
                package(cve.package).unwrap_or_else(|| panic!("{}: package missing", cve.cve));
            assert!(
                pkg.versions
                    .iter()
                    .any(|v| v.vulnerable.contains(&cve.procedure)),
                "{}: procedure {} never vulnerable in {}",
                cve.cve,
                cve.procedure,
                cve.package
            );
        }
    }

    #[test]
    fn features_control_procedure_presence() {
        let with = source_for("wget", "1.15", &[], 1, 0);
        let without = source_for("wget", "1.15", &["opie"], 1, 0);
        let e_with = compile_source(&with, Arch::Arm32, &CompilerOptions::default()).unwrap();
        let e_without = compile_source(&without, Arch::Arm32, &CompilerOptions::default()).unwrap();
        assert!(e_with.symbols.iter().any(|s| s.name == "skey_resp"));
        assert!(!e_without.symbols.iter().any(|s| s.name == "skey_resp"));
    }

    #[test]
    fn deprecated_predecessor_in_old_curl() {
        let old = source_for("libcurl", "7.15", &[], 1, 0);
        let new = source_for("libcurl", "7.24", &[], 1, 0);
        let e_old = compile_source(&old, Arch::X86, &CompilerOptions::default()).unwrap();
        let e_new = compile_source(&new, Arch::X86, &CompilerOptions::default()).unwrap();
        assert!(e_old.symbols.iter().any(|s| s.name == "curl_unescape"));
        assert!(!e_old.symbols.iter().any(|s| s.name == "curl_easy_unescape"));
        assert!(e_new.symbols.iter().any(|s| s.name == "curl_easy_unescape"));
    }

    #[test]
    fn unknown_package_and_version_are_errors_not_panics() {
        assert_eq!(
            try_source_for("zsh", "5.9", &[], 0, 0),
            Err(PackageError::UnknownPackage("zsh".into()))
        );
        assert_eq!(
            try_source_for("wget", "99.99", &[], 0, 0),
            Err(PackageError::UnknownVersion {
                package: "wget".into(),
                version: "99.99".into(),
            })
        );
        assert!(try_source_for("wget", "1.15", &[], 0, 0).is_ok());
    }

    #[test]
    fn filler_is_deterministic_and_varies_by_seed() {
        let (a1, _) = filler_functions(7, 5);
        let (a2, _) = filler_functions(7, 5);
        let (b, _) = filler_functions(8, 5);
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }

    #[test]
    fn exported_markers_survive_stripping() {
        let src = source_for("libcurl", "7.24", &[], 1, 0);
        let mut elf = compile_source(&src, Arch::Ppc32, &CompilerOptions::default()).unwrap();
        elf.strip(true);
        assert!(elf.symbols.iter().any(|s| s.name == "curl_easy_unescape"));
        assert!(
            !elf.symbols.iter().any(|s| s.name == "tailmatch"),
            "static fn stripped"
        );
    }

    #[test]
    fn packages_execute_without_faulting() {
        // Sanity: main() of each package runs to completion in the
        // emulator on one architecture (exercises the string helpers).
        for pkg in all_packages() {
            let src = source_for(pkg.name, pkg.latest().unwrap().version, &[], 3, 2);
            let elf = compile_source(&src, Arch::Mips32, &CompilerOptions::default()).unwrap();
            firmup_core::emu::call_function(&elf, "main", &[1])
                .unwrap_or_else(|e| panic!("{}: {e}", pkg.name));
        }
    }
}
