//! The firmware image container ("FWIM") and its unpacker.
//!
//! Real firmware ships as vendor-specific blobs that tools like binwalk
//! unpack (§5.1: "We used binwalk for unpacking firmware images"). FWIM
//! is our equivalent: a header with vendor/device/version metadata and a
//! part table whose entries are CRC-checked ELF executables. The
//! unpacker validates structure and checksums; when the part table is
//! damaged it falls back to binwalk-style **carving** — scanning the
//! blob for embedded ELF magics.

use std::fmt;

use crate::crc::crc32;

/// Container magic.
pub const MAGIC: &[u8; 4] = b"FWIM";

/// Metadata identifying a firmware image.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ImageMeta {
    /// Vendor name (e.g. `NETGEAR`).
    pub vendor: String,
    /// Device model.
    pub device: String,
    /// Firmware version string.
    pub version: String,
}

impl fmt::Display for ImageMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} fw {}", self.vendor, self.device, self.version)
    }
}

/// One executable inside an image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Part {
    /// File name inside the image (e.g. `bin/wget`).
    pub name: String,
    /// Raw ELF bytes.
    pub data: Vec<u8>,
}

/// Problems found while unpacking (soft; hard failures are errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnpackIssue {
    /// A part's checksum did not match; the part was still extracted.
    BadChecksum {
        /// Part name.
        name: String,
    },
    /// The part table was unusable; parts were carved by magic scan.
    Carved {
        /// Number of carved candidates.
        count: usize,
    },
    /// A part's declared length overran the blob; the payload was
    /// clipped to the bytes actually present (quarantined, not dropped)
    /// so the rest of the image still unpacks.
    TruncatedPart {
        /// Part name.
        name: String,
        /// Length the part table declared.
        declared: usize,
        /// Bytes actually available (the clipped payload size).
        available: usize,
    },
}

/// Unpack failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// Missing magic and no embedded ELFs to carve.
    NotAnImage,
    /// Structurally truncated.
    Truncated,
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::NotAnImage => {
                f.write_str("not a firmware image (no magic, no embedded ELFs)")
            }
            ImageError::Truncated => f.write_str("truncated firmware image"),
        }
    }
}

impl std::error::Error for ImageError {}

fn push_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn read_u32(b: &[u8], pos: &mut usize) -> Result<u32, ImageError> {
    let s = b.get(*pos..*pos + 4).ok_or(ImageError::Truncated)?;
    *pos += 4;
    Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
}

fn read_str(b: &[u8], pos: &mut usize) -> Result<String, ImageError> {
    let len = read_u32(b, pos)? as usize;
    if len > b.len() {
        return Err(ImageError::Truncated);
    }
    let s = b.get(*pos..*pos + len).ok_or(ImageError::Truncated)?;
    *pos += len;
    Ok(String::from_utf8_lossy(s).into_owned())
}

/// Pack parts into an image blob.
pub fn pack(meta: &ImageMeta, parts: &[Part]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&1u32.to_le_bytes()); // format version
    push_str(&mut out, &meta.vendor);
    push_str(&mut out, &meta.device);
    push_str(&mut out, &meta.version);
    out.extend_from_slice(&(parts.len() as u32).to_le_bytes());
    // Part table: name, length, crc; payloads follow in order.
    for p in parts {
        push_str(&mut out, &p.name);
        out.extend_from_slice(&(p.data.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&p.data).to_le_bytes());
    }
    for p in parts {
        out.extend_from_slice(&p.data);
    }
    out
}

/// The result of unpacking.
#[derive(Debug, Clone)]
pub struct Unpacked {
    /// Image metadata (defaults for carved images).
    pub meta: ImageMeta,
    /// Extracted parts.
    pub parts: Vec<Part>,
    /// Soft problems.
    pub issues: Vec<UnpackIssue>,
}

/// Unpack an image blob.
///
/// # Errors
///
/// [`ImageError::NotAnImage`] when neither the FWIM structure nor any
/// embedded ELF can be found; [`ImageError::Truncated`] when the header
/// or part table is cut short. A part whose *payload* is cut short is
/// not an error: it is clipped and reported as
/// [`UnpackIssue::TruncatedPart`] (counted in
/// `unpack.parts_quarantined`) so the remaining parts still unpack.
pub fn unpack(blob: &[u8]) -> Result<Unpacked, ImageError> {
    let _span = firmup_telemetry::span!("unpack");
    if blob.len() < 8 || &blob[0..4] != MAGIC {
        return carve(blob).inspect_err(|_| firmup_telemetry::incr("image.errors"));
    }
    let mut pos = 4usize;
    let _fmt = read_u32(blob, &mut pos)?;
    let vendor = read_str(blob, &mut pos)?;
    let device = read_str(blob, &mut pos)?;
    let version = read_str(blob, &mut pos)?;
    let count = read_u32(blob, &mut pos)? as usize;
    if count > 4096 {
        // Bogus table: fall back to carving rather than failing.
        return carve(blob);
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let name = read_str(blob, &mut pos)?;
        let len = read_u32(blob, &mut pos)? as usize;
        let crc = read_u32(blob, &mut pos)?;
        entries.push((name, len, crc));
    }
    let mut parts = Vec::with_capacity(count);
    let mut issues = Vec::new();
    for (name, len, crc) in entries {
        // An oversized declared length (truncated blob or bogus table
        // entry) clips to the bytes present instead of failing the
        // whole image: the damaged part is quarantined via an issue and
        // every other part still unpacks.
        let end = pos.saturating_add(len).min(blob.len());
        let start = pos.min(blob.len());
        let data = blob[start..end].to_vec();
        pos = start.saturating_add(len); // next entry's declared position
        if data.len() < len {
            firmup_telemetry::incr("unpack.parts_quarantined");
            issues.push(UnpackIssue::TruncatedPart {
                name: name.clone(),
                declared: len,
                available: data.len(),
            });
        } else if crc32(&data) != crc {
            firmup_telemetry::incr("image.crc_failures");
            issues.push(UnpackIssue::BadChecksum { name: name.clone() });
        }
        parts.push(Part { name, data });
    }
    firmup_telemetry::incr("image.unpacked");
    Ok(Unpacked {
        meta: ImageMeta {
            vendor,
            device,
            version,
        },
        parts,
        issues,
    })
}

/// binwalk-style recovery: find embedded ELFs by magic scan.
fn carve(blob: &[u8]) -> Result<Unpacked, ImageError> {
    let offsets = firmup_obj::Elf::carve_offsets(blob);
    if offsets.is_empty() {
        return Err(ImageError::NotAnImage);
    }
    let mut parts = Vec::new();
    for (i, &off) in offsets.iter().enumerate() {
        let end = offsets.get(i + 1).copied().unwrap_or(blob.len());
        parts.push(Part {
            name: format!("carved_{i}"),
            data: blob[off..end].to_vec(),
        });
    }
    let count = parts.len();
    firmup_telemetry::incr("image.carved");
    firmup_telemetry::incr("image.unpacked");
    Ok(Unpacked {
        meta: ImageMeta {
            vendor: "unknown".into(),
            device: "unknown".into(),
            version: "unknown".into(),
        },
        parts,
        issues: vec![UnpackIssue::Carved { count }],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> ImageMeta {
        ImageMeta {
            vendor: "NETGEAR".into(),
            device: "R7000".into(),
            version: "1.0.3".into(),
        }
    }

    fn elf_bytes() -> Vec<u8> {
        let mut b = firmup_obj::write::ElfBuilder::new(8, 0x40_0000);
        b.text(0x40_0000, vec![0u8; 16]);
        b.build().write()
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let parts = vec![
            Part {
                name: "bin/wget".into(),
                data: elf_bytes(),
            },
            Part {
                name: "bin/vsftpd".into(),
                data: vec![1, 2, 3],
            },
        ];
        let blob = pack(&meta(), &parts);
        let u = unpack(&blob).unwrap();
        assert_eq!(u.meta, meta());
        assert_eq!(u.parts, parts);
        assert!(u.issues.is_empty());
    }

    #[test]
    fn corrupted_payload_reports_checksum() {
        let parts = vec![Part {
            name: "bin/a".into(),
            data: vec![9u8; 64],
        }];
        let mut blob = pack(&meta(), &parts);
        let n = blob.len();
        blob[n - 5] ^= 0xff;
        let u = unpack(&blob).unwrap();
        assert_eq!(
            u.issues,
            vec![UnpackIssue::BadChecksum {
                name: "bin/a".into()
            }]
        );
        assert_eq!(u.parts.len(), 1, "part still extracted");
    }

    #[test]
    fn missing_magic_falls_back_to_carving() {
        let mut blob = vec![0u8; 32];
        blob.extend_from_slice(&elf_bytes());
        let u = unpack(&blob).unwrap();
        assert!(matches!(u.issues[0], UnpackIssue::Carved { count: 1 }));
        assert_eq!(u.parts.len(), 1);
        assert!(firmup_obj::Elf::parse(&u.parts[0].data).is_ok());
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(matches!(unpack(&[0u8; 64]), Err(ImageError::NotAnImage)));
        assert!(unpack(b"FWIM").is_err());
    }

    #[test]
    fn truncated_payload_is_clipped_and_reported() {
        let parts = vec![Part {
            name: "x".into(),
            data: vec![7u8; 100],
        }];
        let blob = pack(&meta(), &parts);
        let u = unpack(&blob[..blob.len() - 10]).unwrap();
        assert_eq!(u.parts.len(), 1, "clipped part is kept, not dropped");
        assert_eq!(u.parts[0].data.len(), 90);
        assert_eq!(
            u.issues,
            vec![UnpackIssue::TruncatedPart {
                name: "x".into(),
                declared: 100,
                available: 90,
            }]
        );
    }

    #[test]
    fn oversized_length_clips_without_starving_other_parts() {
        // Corrupt the first part's declared length to something huge:
        // it must clip, and the second part must still be reported (its
        // payload region is consumed by the oversized claim, so it
        // clips to empty — quarantined, not dropped).
        let parts = vec![
            Part {
                name: "a".into(),
                data: vec![1u8; 8],
            },
            Part {
                name: "b".into(),
                data: vec![2u8; 8],
            },
        ];
        let mut blob = pack(&meta(), &parts);
        // Part table starts after magic(4)+fmt(4)+3 len-prefixed strings.
        let strings = 4 + meta().vendor.len() + 4 + meta().device.len() + 4 + meta().version.len();
        let table = 4 + 4 + strings + 4;
        // Entry a: name(4+1), len(4), crc(4) — len field offset:
        let len_off = table + 4 + 1;
        blob[len_off..len_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let u = unpack(&blob).unwrap();
        assert_eq!(u.parts.len(), 2);
        assert_eq!(u.parts[0].name, "a");
        assert_eq!(u.parts[0].data.len(), 16, "clipped to the bytes present");
        assert_eq!(u.parts[1].data.len(), 0);
        assert_eq!(
            u.issues
                .iter()
                .filter(|i| matches!(i, UnpackIssue::TruncatedPart { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn truncated_header_is_error() {
        let parts = vec![Part {
            name: "x".into(),
            data: vec![7u8; 100],
        }];
        let blob = pack(&meta(), &parts);
        // Cut inside the metadata/part table: a hard structural error.
        assert!(matches!(unpack(&blob[..10]), Err(ImageError::Truncated)));
    }
}
