//! Deterministic pseudo-randomness for corpus generation, replacing the
//! external `rand` crate so the workspace builds with zero registry
//! dependencies.
//!
//! The generator is SplitMix64 — a tiny, fast, well-mixed 64-bit PRNG
//! whose entire state is the seed, which makes corpus generation
//! trivially reproducible (the property `corpus_is_deterministic`
//! asserts). The API mirrors the subset of `rand` the crate used:
//! [`SmallRng::seed_from_u64`], [`SmallRng::gen_range`],
//! [`SmallRng::gen`], [`SmallRng::gen_bool`], and [`SliceRandom::shuffle`].

use std::ops::{Range, RangeInclusive};

/// Small deterministic PRNG (SplitMix64).
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Construct from a 64-bit seed. Equal seeds yield equal streams on
    /// every platform.
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        SmallRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero. Rejection
    /// sampling keeps the distribution exact.
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }

    /// Uniform value from a (half-open or inclusive) integer range.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// An unconstrained random value.
    pub fn gen<T: RandValue>(&mut self) -> T {
        T::rand(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        // 53 high bits give a uniform double in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Types [`SmallRng::gen`] can produce.
pub trait RandValue {
    /// Draw one value.
    fn rand(rng: &mut SmallRng) -> Self;
}

impl RandValue for u64 {
    fn rand(rng: &mut SmallRng) -> u64 {
        rng.next_u64()
    }
}

impl RandValue for bool {
    fn rand(rng: &mut SmallRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`SmallRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample(self, rng: &mut SmallRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi - lo + 1) as u64; // 0 means the full u64 range
                let off = if span == 0 { rng.next_u64() } else { rng.below(span) };
                (lo + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// In-place random reordering of slices.
pub trait SliceRandom {
    /// Fisher–Yates shuffle driven by `rng`.
    fn shuffle(&mut self, rng: &mut SmallRng);
}

impl<T> SliceRandom for [T] {
    fn shuffle(&mut self, rng: &mut SmallRng) {
        for i in (1..self.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let a: usize = rng.gen_range(3..9);
            assert!((3..9).contains(&a));
            let b: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&b));
            let c: u32 = rng.gen_range(0x1000..0xffff);
            assert!((0x1000..0xffff).contains(&c));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.4)).count();
        assert!((3_500..4_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
