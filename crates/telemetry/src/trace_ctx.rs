//! Query-scoped tracing: explicit trace contexts that survive thread
//! hops.
//!
//! PR-1's span timers nest through a thread-local stack, which is
//! correct only while a call tree stays on one thread. The work-stealing
//! executor broke that assumption: a scan unit that runs on a stolen
//! worker opens its spans on a fresh stack, severing the parent link and
//! mis-filing its latency under a truncated path. This module fixes the
//! model with an explicit [`TraceCtx`] — a `(trace id, span id, path)`
//! triple that can be captured on one thread ([`current_ctx`]), shipped
//! to another, and re-entered there ([`TraceCtx::enter`]) so every
//! descendant span lands under the correct parent no matter which worker
//! executed it.
//!
//! **Deterministic identity.** Span ids are *derived*, not allocated:
//! `child id = mix(parent id, name, key)` where the key is either an
//! explicit caller-supplied value (the executor keys unit spans by unit
//! index) or a per-parent sequence number (correct for the serial code
//! inside one unit). For a fixed workload the full span tree — ids,
//! parents, names — is therefore a pure function of the input,
//! *byte-identically reconstructable* at every `--threads N`; only
//! timestamps and worker lanes vary. [`Trace::tree_for`] rebuilds the
//! tree and [`TraceTree::render_stable`] renders exactly the
//! deterministic part.
//!
//! Finished spans are recorded into a bounded global collector when span
//! tracing is on ([`set_span_trace`], the CLI's `--trace-out` /
//! `firmup profile`); [`take_trace`] drains it for export (see
//! [`crate::export`]).

use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Upper bound on buffered span records: a runaway trace degrades into
/// counted drops ([`Trace::dropped`]) instead of unbounded memory.
pub const MAX_TRACE_SPANS: usize = 1 << 20;

static SPAN_TRACE: AtomicBool = AtomicBool::new(false);

/// Turn span-record collection on or off (the `--trace-out` /
/// `firmup profile` gate). Metrics ([`crate::enabled`]) and span
/// collection are independent: collection works even when the metric
/// registry is disabled.
pub fn set_span_trace(on: bool) {
    SPAN_TRACE.store(on, Ordering::Relaxed);
}

/// Whether finished spans are being recorded into the trace collector.
#[inline]
pub fn span_trace_enabled() -> bool {
    SPAN_TRACE.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Deterministic id derivation
// ---------------------------------------------------------------------------

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a: stable across platforms and runs.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Derive a child span id from its parent id, name, and sibling key.
/// Pure and collision-resistant enough for tree reconstruction; never
/// returns 0 (the "no parent" sentinel).
fn derive_id(parent: u64, name: &str, key: u64) -> u64 {
    let h = splitmix64(parent ^ splitmix64(hash_name(name).wrapping_add(key)));
    if h == 0 {
        1
    } else {
        h
    }
}

// ---------------------------------------------------------------------------
// Thread-local span frames + worker lanes
// ---------------------------------------------------------------------------

pub(crate) struct Frame {
    trace_id: u64,
    span_id: u64,
    path: Arc<str>,
    /// Sequence number for the next ambient (un-keyed) child span.
    next_child: u64,
    /// Memo of the last ambient child opened under this frame:
    /// `(name, joined path)`. A hot loop that opens the same span name
    /// thousands of times under one parent (the per-game span inside a
    /// scan unit) re-joins the path once and then pays only an `Arc`
    /// refcount bump per span instead of a fresh `String` each time.
    last_child: Option<(&'static str, Arc<str>)>,
}

thread_local! {
    static FRAMES: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    static WORKER: Cell<Option<u32>> = const { Cell::new(None) };
}

/// Tag this thread as executor worker lane `id` (or `None` for the main
/// lane). Recorded on every span/instant the thread finishes so the
/// Chrome trace export can draw one lane per worker.
pub fn set_worker(id: Option<u32>) {
    WORKER.with(|w| w.set(id));
}

/// The worker lane this thread was tagged with, if any.
pub fn current_worker() -> Option<u32> {
    WORKER.with(Cell::get)
}

/// A span being timed on this thread: the state [`crate::SpanGuard`]
/// records from on drop.
pub(crate) struct ActiveSpan {
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    name: Cow<'static, str>,
    path: Arc<str>,
    attrs: Vec<(String, String)>,
    start_ns: u64,
    started: Instant,
}

/// Open an ambient span: a child of whatever frame is on top of this
/// thread's stack (sequence-keyed), or a fresh root when the stack is
/// empty.
///
/// `name` is `&'static str` (the only caller is [`crate::span()`], whose
/// names are literals) so the active span can borrow it — no allocation
/// per span on the metrics-only path.
pub(crate) fn push_ambient(name: &'static str) -> ActiveSpan {
    let (trace_id, span_id, parent_id, path) = FRAMES.with(|f| {
        let mut frames = f.borrow_mut();
        let ids = match frames.last_mut() {
            Some(p) => {
                let key = p.next_child;
                p.next_child += 1;
                let sid = derive_id(p.span_id, name, key);
                let path = match &p.last_child {
                    Some((n, cached)) if *n == name => Arc::clone(cached),
                    _ => {
                        let mut joined = String::with_capacity(p.path.len() + 1 + name.len());
                        joined.push_str(&p.path);
                        joined.push('/');
                        joined.push_str(name);
                        let joined: Arc<str> = Arc::from(joined);
                        p.last_child = Some((name, Arc::clone(&joined)));
                        joined
                    }
                };
                (p.trace_id, sid, p.span_id, path)
            }
            None => {
                let sid = derive_id(0, name, 0);
                (sid, sid, 0, Arc::<str>::from(name))
            }
        };
        frames.push(Frame {
            trace_id: ids.0,
            span_id: ids.1,
            path: Arc::clone(&ids.3),
            next_child: 0,
            last_child: None,
        });
        ids
    });
    ActiveSpan {
        trace_id,
        span_id,
        parent_id,
        name: Cow::Borrowed(name),
        path,
        attrs: Vec::new(),
        // Only the trace collector consumes start timestamps; with
        // collection off, skip the extra clock read (one per span, and
        // the scan opens a span per game).
        start_ns: if span_trace_enabled() {
            crate::epoch_ns()
        } else {
            0
        },
        started: Instant::now(),
    }
}

/// Push a frame for an explicit context (a cross-thread handoff).
pub(crate) fn push_ctx(ctx: &TraceCtx) -> ActiveSpan {
    let path: Arc<str> = Arc::from(ctx.path.as_str());
    FRAMES.with(|f| {
        f.borrow_mut().push(Frame {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            path: Arc::clone(&path),
            next_child: 0,
            last_child: None,
        });
    });
    ActiveSpan {
        trace_id: ctx.trace_id,
        span_id: ctx.span_id,
        parent_id: ctx.parent_id,
        name: Cow::Owned(ctx.name.clone()),
        path,
        attrs: ctx.attrs.clone(),
        // Only the trace collector consumes start timestamps; with
        // collection off, skip the extra clock read (one per span, and
        // the scan opens a span per game).
        start_ns: if span_trace_enabled() {
            crate::epoch_ns()
        } else {
            0
        },
        started: Instant::now(),
    }
}

/// Close the active span: pop its frame, feed the latency registry, and
/// (when span tracing is on) push a [`SpanRecord`] to the collector.
pub(crate) fn finish(active: ActiveSpan) {
    let dur_ns = active.started.elapsed().as_nanos() as u64;
    FRAMES.with(|f| {
        f.borrow_mut().pop();
    });
    if crate::enabled() {
        crate::record_span_stats(&active.path, dur_ns);
    }
    if span_trace_enabled() {
        record_span(SpanRecord {
            trace_id: active.trace_id,
            span_id: active.span_id,
            parent_id: active.parent_id,
            name: active.name.into_owned(),
            path: active.path.to_string(),
            start_ns: active.start_ns,
            dur_ns,
            worker: current_worker(),
            attrs: active.attrs,
        });
    }
}

impl ActiveSpan {
    pub(crate) fn push_attr(&mut self, key: &str, value: String) {
        self.attrs.push((key.to_string(), value));
    }
}

// ---------------------------------------------------------------------------
// TraceCtx
// ---------------------------------------------------------------------------

/// An explicit trace context: the identity of one span, capturable on
/// one thread and enterable on another. See the module docs for the
/// deterministic-id scheme.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    name: String,
    path: String,
    attrs: Vec<(String, String)>,
}

impl TraceCtx {
    /// A fresh root context. The trace id (and root span id) derive from
    /// `name`, so a fixed workload gets a fixed trace identity.
    pub fn root(name: &str) -> TraceCtx {
        TraceCtx::root_keyed(name, 0)
    }

    /// A fresh root context whose trace id derives from `name` *and*
    /// `key`. A long-lived server roots each request at
    /// `root_keyed("request", request_id)`: every request owns a
    /// distinct trace id, so spans from concurrently executing requests
    /// reconstruct into disjoint per-request trees instead of
    /// interleaving — and the same request id always yields the same
    /// tree identity.
    pub fn root_keyed(name: &str, key: u64) -> TraceCtx {
        let id = derive_id(0, name, key);
        TraceCtx {
            trace_id: id,
            span_id: id,
            parent_id: 0,
            name: name.to_string(),
            path: name.to_string(),
            attrs: Vec::new(),
        }
    }

    /// Derive a child context keyed by `key`. Use an input-derived key
    /// (unit index, part index) when siblings may be created from
    /// different threads or in nondeterministic order — the id must not
    /// depend on scheduling.
    pub fn child(&self, name: &str, key: u64) -> TraceCtx {
        TraceCtx {
            trace_id: self.trace_id,
            span_id: derive_id(self.span_id, name, key),
            parent_id: self.span_id,
            name: name.to_string(),
            path: format!("{}/{}", self.path, name),
            attrs: Vec::new(),
        }
    }

    /// Attach a key-value attribute (exported into the Chrome trace's
    /// `args`).
    #[must_use]
    pub fn with_attr(mut self, key: &str, value: impl ToString) -> TraceCtx {
        self.attrs.push((key.to_string(), value.to_string()));
        self
    }

    /// The trace id this context belongs to.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// This span's id.
    pub fn span_id(&self) -> u64 {
        self.span_id
    }

    /// The `/`-joined path from the trace root to this span.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Begin timing this context's span on the current thread. Nested
    /// ambient spans ([`crate::span()`]) become its children; the span is
    /// recorded when the guard drops. Inert when both metrics and span
    /// tracing are off.
    pub fn enter(self) -> crate::SpanGuard {
        if !crate::enabled() && !span_trace_enabled() {
            return crate::SpanGuard { active: None };
        }
        crate::SpanGuard {
            active: Some(push_ctx(&self)),
        }
    }
}

/// Snapshot the innermost span on this thread as a [`TraceCtx`], for
/// handing work to another thread. `None` when no span is open (or
/// recording is off).
pub fn current_ctx() -> Option<TraceCtx> {
    FRAMES.with(|f| {
        f.borrow().last().map(|frame| TraceCtx {
            trace_id: frame.trace_id,
            span_id: frame.span_id,
            parent_id: 0, // unknown here; only child derivation needs ids
            name: frame
                .path
                .rsplit('/')
                .next()
                .unwrap_or(&frame.path)
                .to_string(),
            path: frame.path.to_string(),
            attrs: Vec::new(),
        })
    })
}

// ---------------------------------------------------------------------------
// Collector
// ---------------------------------------------------------------------------

/// One finished span.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's derived id (never 0).
    pub span_id: u64,
    /// Parent span id, 0 for a root.
    pub parent_id: u64,
    /// Leaf name (one path segment).
    pub name: String,
    /// Full `/`-joined path from the root.
    pub path: String,
    /// Start time in nanoseconds since process start.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Executor worker lane, `None` for the main thread.
    pub worker: Option<u32>,
    /// Key-value attributes.
    pub attrs: Vec<(String, String)>,
}

/// One point event (e.g. a work steal).
#[derive(Clone, Debug, PartialEq)]
pub struct InstantRecord {
    /// Event name.
    pub name: String,
    /// Time in nanoseconds since process start.
    pub ts_ns: u64,
    /// Executor worker lane, `None` for the main thread.
    pub worker: Option<u32>,
    /// Key-value attributes.
    pub attrs: Vec<(String, String)>,
}

/// A drained (or snapshotted) trace buffer.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Finished spans, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Instant events, in emission order.
    pub instants: Vec<InstantRecord>,
    /// Spans discarded after the [`MAX_TRACE_SPANS`] cap was hit.
    pub dropped: u64,
}

fn collector() -> &'static Mutex<Trace> {
    static COLLECTOR: OnceLock<Mutex<Trace>> = OnceLock::new();
    COLLECTOR.get_or_init(|| Mutex::new(Trace::default()))
}

fn record_span(rec: SpanRecord) {
    let mut buf = collector().lock().unwrap();
    if buf.spans.len() >= MAX_TRACE_SPANS {
        buf.dropped += 1;
    } else {
        buf.spans.push(rec);
    }
}

/// Emit one instant event (a zero-duration marker, e.g. a steal) when
/// span tracing is on.
pub fn trace_instant(name: &str, attrs: &[(&str, String)]) {
    if !span_trace_enabled() {
        return;
    }
    let rec = InstantRecord {
        name: name.to_string(),
        ts_ns: crate::epoch_ns(),
        worker: current_worker(),
        attrs: attrs
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect(),
    };
    let mut buf = collector().lock().unwrap();
    if buf.instants.len() >= MAX_TRACE_SPANS {
        buf.dropped += 1;
    } else {
        buf.instants.push(rec);
    }
}

/// Drain the trace collector, returning everything recorded since the
/// last drain.
pub fn take_trace() -> Trace {
    std::mem::take(&mut *collector().lock().unwrap())
}

/// Copy the trace collector without draining it (for tests that share
/// the process-global collector with concurrent tests — filter by trace
/// id via [`Trace::tree_for`]).
pub fn trace_snapshot() -> Trace {
    collector().lock().unwrap().clone()
}

// ---------------------------------------------------------------------------
// Tree reconstruction
// ---------------------------------------------------------------------------

/// One node of a reconstructed span tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceNode {
    /// Derived span id.
    pub span_id: u64,
    /// Span name.
    pub name: String,
    /// How many records carried this id (normally 1).
    pub count: u64,
    /// Total nanoseconds across those records (excluded from
    /// [`TraceTree::render_stable`]).
    pub total_ns: u64,
    /// Children, sorted by span id.
    pub children: Vec<TraceNode>,
}

/// A reconstructed trace: roots sorted by span id.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceTree {
    /// Root spans (parent id 0 or parent never recorded).
    pub roots: Vec<TraceNode>,
}

impl Trace {
    /// Reconstruct the span tree across every trace in the buffer.
    pub fn tree(&self) -> TraceTree {
        self.build_tree(None)
    }

    /// Reconstruct the span tree of one trace only.
    pub fn tree_for(&self, trace_id: u64) -> TraceTree {
        self.build_tree(Some(trace_id))
    }

    fn build_tree(&self, filter: Option<u64>) -> TraceTree {
        struct Agg {
            name: String,
            parent: u64,
            count: u64,
            total_ns: u64,
        }
        let mut by_id: HashMap<u64, Agg> = HashMap::new();
        for s in &self.spans {
            if filter.is_some_and(|t| t != s.trace_id) {
                continue;
            }
            let e = by_id.entry(s.span_id).or_insert(Agg {
                name: s.name.clone(),
                parent: s.parent_id,
                count: 0,
                total_ns: 0,
            });
            e.count += 1;
            e.total_ns += s.dur_ns;
        }
        let mut children: HashMap<u64, Vec<u64>> = HashMap::new();
        let mut roots: Vec<u64> = Vec::new();
        for (&id, agg) in &by_id {
            if agg.parent != 0 && by_id.contains_key(&agg.parent) {
                children.entry(agg.parent).or_default().push(id);
            } else {
                roots.push(id);
            }
        }
        fn build(
            id: u64,
            by_id: &HashMap<u64, Agg>,
            children: &mut HashMap<u64, Vec<u64>>,
        ) -> TraceNode {
            let agg = &by_id[&id];
            let mut kids = children.remove(&id).unwrap_or_default();
            kids.sort_unstable();
            TraceNode {
                span_id: id,
                name: agg.name.clone(),
                count: agg.count,
                total_ns: agg.total_ns,
                children: kids
                    .into_iter()
                    .map(|k| build(k, by_id, children))
                    .collect(),
            }
        }
        roots.sort_unstable();
        TraceTree {
            roots: roots
                .into_iter()
                .map(|r| build(r, &by_id, &mut children))
                .collect(),
        }
    }
}

impl TraceTree {
    /// Render only the deterministic part of the tree — names, derived
    /// ids, structure, and record counts; no timestamps, durations, or
    /// worker lanes. For a fixed workload this string is byte-identical
    /// at every thread count.
    pub fn render_stable(&self) -> String {
        fn walk(node: &TraceNode, depth: usize, out: &mut String) {
            use std::fmt::Write as _;
            let _ = writeln!(
                out,
                "{}{}#{:016x} x{}",
                "  ".repeat(depth),
                node.name,
                node.span_id,
                node.count
            );
            for c in &node.children {
                walk(c, depth + 1, out);
            }
        }
        let mut out = String::new();
        for r in &self.roots {
            walk(r, 0, &mut out);
        }
        out
    }

    /// Total span count in the tree.
    pub fn len(&self) -> usize {
        fn count(n: &TraceNode) -> usize {
            1 + n.children.iter().map(count).sum::<usize>()
        }
        self.roots.iter().map(count).sum()
    }

    /// Whether the tree has no spans.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ids_are_stable_and_key_sensitive() {
        let root = TraceCtx::root("scan");
        assert_eq!(root.trace_id(), TraceCtx::root("scan").trace_id());
        assert_ne!(root.trace_id(), TraceCtx::root("other").trace_id());
        let a = root.child("unit", 0);
        let b = root.child("unit", 1);
        assert_eq!(a, root.child("unit", 0));
        assert_ne!(a.span_id(), b.span_id());
        assert_eq!(a.path(), "scan/unit");
        assert_ne!(a.span_id(), 0, "0 is the no-parent sentinel");
    }

    #[test]
    fn tree_reconstruction_sorts_children_and_filters_by_trace() {
        let root = TraceCtx::root("t-tree");
        let mk = |ctx: &TraceCtx| SpanRecord {
            trace_id: ctx.trace_id(),
            span_id: ctx.span_id(),
            parent_id: ctx.parent_id,
            name: ctx.name.clone(),
            path: ctx.path().to_string(),
            start_ns: 0,
            dur_ns: 10,
            worker: None,
            attrs: Vec::new(),
        };
        let u0 = root.child("unit", 0);
        let u1 = root.child("unit", 1);
        let other = TraceCtx::root("t-other");
        let trace = Trace {
            // Arrival order scrambled on purpose.
            spans: vec![mk(&u1), mk(&other), mk(&root), mk(&u0)],
            instants: Vec::new(),
            dropped: 0,
        };
        let tree = trace.tree_for(root.trace_id());
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.roots[0].name, "t-tree");
        assert_eq!(tree.roots[0].children.len(), 2);
        assert_eq!(tree.len(), 3);
        let mut ids: Vec<u64> = tree.roots[0].children.iter().map(|c| c.span_id).collect();
        let sorted = {
            let mut s = ids.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(ids, sorted, "children sorted by span id");
        ids.dedup();
        assert_eq!(ids.len(), 2);
        // The other trace is excluded; tree() would include it.
        assert_eq!(trace.tree().roots.len(), 2);
        // Stable render is one line per span: name, id, count — and no
        // duration field that could vary between runs.
        let r = tree.render_stable();
        assert_eq!(r.lines().count(), tree.len(), "{r}");
        assert!(r.contains("t-tree#"), "{r}");
        assert!(
            r.lines().all(|l| l.trim_start().matches(' ').count() == 1),
            "{r}"
        );
    }
}
