//! A minimal JSON value type with a renderer and a recursive-descent
//! parser — just enough to emit metrics snapshots and read them back in
//! tests, with no external dependencies.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`; integers round-trip up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Stored as a vector to preserve insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (linear scan; objects here are small).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer view (lossy past 2^53, which metrics never reach).
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| n as u64)
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serialize to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Returns an error message with a byte
    /// offset on malformed input.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected {lit} at byte {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar. Input came from &str, so
                // boundaries are valid.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let doc = Json::Obj(vec![
            ("name".to_string(), Json::Str("lift \"fast\"\n".to_string())),
            ("count".to_string(), Json::Num(42.0)),
            ("ratio".to_string(), Json::Num(0.5)),
            (
                "buckets".to_string(),
                Json::Arr(vec![
                    Json::Num(1.0),
                    Json::Num(2.0),
                    Json::Null,
                    Json::Bool(true),
                ]),
            ),
            ("empty".to_string(), Json::Obj(vec![])),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("123 456").is_err());
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(0.25).render(), "0.25");
    }
}
