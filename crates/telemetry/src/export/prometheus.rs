//! Prometheus text exposition (format version 0.0.4) over a metric
//! [`Snapshot`] — the `/metrics` payload a future `firmup serve` will
//! return.
//!
//! Mapping:
//!
//! - counters → `firmup_<name>_total` (TYPE `counter`)
//! - gauges → `firmup_<name>` (TYPE `gauge`)
//! - log2 histograms → `firmup_<name>` (TYPE `histogram`) with
//!   *cumulative* `_bucket{le="..."}` series. A registry bucket with
//!   inclusive lower bound `lo > 0` covers `[lo, 2*lo)`, so its
//!   inclusive integer upper bound is `(lo-1)*2 + 1` — which lands on
//!   `u64::MAX` for the top bucket without overflowing — and the zero
//!   bucket gets `le="0"`. A `+Inf` bucket, `_sum`, and `_count` close
//!   the family.
//! - span stats → two labeled counters, `firmup_span_count_total` and
//!   `firmup_span_ns_total`, with the `/`-joined path as a `path` label.
//!
//! Metric names are sanitized to `[a-zA-Z0-9_]` (dots and dashes become
//! underscores). [`parse_exposition`] parses the same dialect back into
//! [`Sample`]s so tests can round-trip render → parse → compare.

use crate::Snapshot;

/// Sanitize one metric name segment into Prometheus's charset.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Inclusive upper bound of the log2 bucket whose inclusive lower bound
/// is `lo` (see module docs).
fn bucket_upper(lo: u64) -> u64 {
    if lo == 0 {
        0
    } else {
        (lo - 1).wrapping_mul(2).wrapping_add(1)
    }
}

/// Render the snapshot in Prometheus text exposition format.
pub fn render_prometheus(snap: &Snapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = format!("firmup_{}_total", sanitize(name));
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, v) in &snap.gauges {
        let n = format!("firmup_{}", sanitize(name));
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, h) in &snap.histograms {
        let n = format!("firmup_{}", sanitize(name));
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cum = 0u64;
        for (lo, count) in &h.buckets {
            cum += count;
            let _ = writeln!(out, "{n}_bucket{{le=\"{}\"}} {cum}", bucket_upper(*lo));
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    if !snap.spans.is_empty() {
        let _ = writeln!(out, "# TYPE firmup_span_count_total counter");
        let _ = writeln!(out, "# TYPE firmup_span_ns_total counter");
        for (path, s) in &snap.spans {
            let p = escape_label(path);
            let _ = writeln!(out, "firmup_span_count_total{{path=\"{p}\"}} {}", s.count);
            let _ = writeln!(out, "firmup_span_ns_total{{path=\"{p}\"}} {}", s.total_ns);
        }
    }
    out
}

/// One parsed exposition sample.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name (including any `_total`/`_bucket` suffix).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// Parse the exposition dialect [`render_prometheus`] emits back into
/// samples, skipping comments and blank lines.
///
/// # Errors
///
/// A line that is neither a comment nor `name[{labels}] value` is
/// rejected with a message naming it.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("malformed sample line: {line}"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("malformed value in: {line}"))?;
        let (name, labels) = match series.split_once('{') {
            None => (series.to_string(), Vec::new()),
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("unterminated labels in: {line}"))?;
                let mut labels = Vec::new();
                for pair in body.split(',').filter(|p| !p.is_empty()) {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("malformed label in: {line}"))?;
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| format!("unquoted label value in: {line}"))?;
                    labels.push((
                        k.to_string(),
                        v.replace("\\n", "\n")
                            .replace("\\\"", "\"")
                            .replace("\\\\", "\\"),
                    ));
                }
                (name.to_string(), labels)
            }
        };
        out.push(Sample {
            name,
            labels,
            value,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HistogramSnapshot, SpanSnapshot};

    #[test]
    fn bucket_upper_bounds_cover_u64_edges() {
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1); // [1,2) → le 1
        assert_eq!(bucket_upper(2), 3); // [2,4) → le 3
        assert_eq!(bucket_upper(1 << 62), (1 << 63) - 1);
        assert_eq!(bucket_upper(1 << 63), u64::MAX);
    }

    #[test]
    fn render_parse_round_trip_matches_snapshot() {
        let snap = Snapshot {
            counters: vec![("game.played".to_string(), 42)],
            gauges: vec![("scan.queue-depth".to_string(), -3)],
            histograms: vec![(
                "game.steps".to_string(),
                HistogramSnapshot {
                    count: 6,
                    sum: 30,
                    min: 0,
                    max: 17,
                    buckets: vec![(0, 1), (2, 3), (16, 2)],
                },
            )],
            spans: vec![(
                "scan/search".to_string(),
                SpanSnapshot {
                    count: 5,
                    total_ns: 1_000,
                    min_ns: 100,
                    max_ns: 400,
                },
            )],
        };
        let text = render_prometheus(&snap);
        let samples = parse_exposition(&text).expect("round-trip parse");
        let find = |name: &str, label: Option<(&str, &str)>| -> f64 {
            samples
                .iter()
                .find(|s| {
                    s.name == name
                        && label
                            .is_none_or(|(k, v)| s.labels.iter().any(|(lk, lv)| lk == k && lv == v))
                })
                .unwrap_or_else(|| panic!("missing sample {name} in:\n{text}"))
                .value
        };
        assert_eq!(find("firmup_game_played_total", None), 42.0);
        assert_eq!(find("firmup_scan_queue_depth", None), -3.0);
        // Cumulative buckets: 1, 1+3, 1+3+2, then +Inf == count.
        assert_eq!(find("firmup_game_steps_bucket", Some(("le", "0"))), 1.0);
        assert_eq!(find("firmup_game_steps_bucket", Some(("le", "3"))), 4.0);
        assert_eq!(find("firmup_game_steps_bucket", Some(("le", "31"))), 6.0);
        assert_eq!(find("firmup_game_steps_bucket", Some(("le", "+Inf"))), 6.0);
        assert_eq!(find("firmup_game_steps_sum", None), 30.0);
        assert_eq!(find("firmup_game_steps_count", None), 6.0);
        assert_eq!(
            find("firmup_span_count_total", Some(("path", "scan/search"))),
            5.0
        );
        assert_eq!(
            find("firmup_span_ns_total", Some(("path", "scan/search"))),
            1000.0
        );
    }
}
