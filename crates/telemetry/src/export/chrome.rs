//! Chrome trace-event JSON export (the format Perfetto and
//! `about://tracing` load).
//!
//! Each [`crate::SpanRecord`] becomes one `ph:"X"` *complete* event and
//! each [`crate::InstantRecord`] a `ph:"i"` *instant* event. All events
//! share `pid` 1; the `tid` encodes the lane — 0 for the main thread,
//! `worker + 1` for executor workers — and `ph:"M"` metadata events name
//! the lanes. Span identity (trace/span/parent ids as fixed-width hex)
//! and the `/`-joined path ride in `args`, so the deterministic tree can
//! be reconstructed from the file alone.

use crate::json::Json;
use crate::trace_ctx::Trace;

fn hex(id: u64) -> Json {
    Json::Str(format!("{id:016x}"))
}

fn lane(worker: Option<u32>) -> (f64, String) {
    match worker {
        None => (0.0, "main".to_string()),
        Some(w) => (f64::from(w) + 1.0, format!("worker-{w}")),
    }
}

/// Render a drained trace as a Chrome trace-event JSON document.
pub fn render_chrome(trace: &Trace) -> Json {
    let mut events: Vec<Json> = Vec::with_capacity(trace.spans.len() + trace.instants.len() + 4);
    // Name the lanes that actually appear.
    let mut lanes: Vec<(f64, String)> = trace
        .spans
        .iter()
        .map(|s| lane(s.worker))
        .chain(trace.instants.iter().map(|i| lane(i.worker)))
        .collect();
    lanes.sort_by(|a, b| a.0.total_cmp(&b.0));
    lanes.dedup_by(|a, b| a.0 == b.0);
    for (tid, name) in lanes {
        events.push(Json::Obj(vec![
            ("ph".to_string(), Json::Str("M".to_string())),
            ("name".to_string(), Json::Str("thread_name".to_string())),
            ("pid".to_string(), Json::Num(1.0)),
            ("tid".to_string(), Json::Num(tid)),
            (
                "args".to_string(),
                Json::Obj(vec![("name".to_string(), Json::Str(name))]),
            ),
        ]));
    }
    for s in &trace.spans {
        let (tid, _) = lane(s.worker);
        let mut args = vec![
            ("trace".to_string(), hex(s.trace_id)),
            ("span".to_string(), hex(s.span_id)),
            ("parent".to_string(), hex(s.parent_id)),
            ("path".to_string(), Json::Str(s.path.clone())),
        ];
        for (k, v) in &s.attrs {
            args.push((k.clone(), Json::Str(v.clone())));
        }
        events.push(Json::Obj(vec![
            ("ph".to_string(), Json::Str("X".to_string())),
            ("name".to_string(), Json::Str(s.name.clone())),
            ("cat".to_string(), Json::Str("span".to_string())),
            ("pid".to_string(), Json::Num(1.0)),
            ("tid".to_string(), Json::Num(tid)),
            ("ts".to_string(), Json::Num(s.start_ns as f64 / 1e3)),
            ("dur".to_string(), Json::Num(s.dur_ns as f64 / 1e3)),
            ("args".to_string(), Json::Obj(args)),
        ]));
    }
    for i in &trace.instants {
        let (tid, _) = lane(i.worker);
        let args = i
            .attrs
            .iter()
            .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
            .collect();
        events.push(Json::Obj(vec![
            ("ph".to_string(), Json::Str("i".to_string())),
            ("name".to_string(), Json::Str(i.name.clone())),
            ("cat".to_string(), Json::Str("executor".to_string())),
            ("s".to_string(), Json::Str("t".to_string())),
            ("pid".to_string(), Json::Num(1.0)),
            ("tid".to_string(), Json::Num(tid)),
            ("ts".to_string(), Json::Num(i.ts_ns as f64 / 1e3)),
            ("args".to_string(), Json::Obj(args)),
        ]));
    }
    Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(events)),
        ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
        (
            "otherData".to_string(),
            Json::Obj(vec![
                (
                    "tool".to_string(),
                    Json::Str("firmup --trace-out".to_string()),
                ),
                ("dropped_spans".to_string(), Json::Num(trace.dropped as f64)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_ctx::{InstantRecord, SpanRecord};

    fn span(id: u64, parent: u64, worker: Option<u32>) -> SpanRecord {
        SpanRecord {
            trace_id: 7,
            span_id: id,
            parent_id: parent,
            name: format!("s{id}"),
            path: format!("root/s{id}"),
            start_ns: 1_000,
            dur_ns: 2_000,
            worker,
            attrs: vec![("k".to_string(), "v".to_string())],
        }
    }

    #[test]
    fn chrome_export_has_lanes_spans_and_instants() {
        let trace = Trace {
            spans: vec![span(2, 1, None), span(3, 1, Some(0))],
            instants: vec![InstantRecord {
                name: "steal".to_string(),
                ts_ns: 1_500,
                worker: Some(1),
                attrs: vec![("from".to_string(), "0".to_string())],
            }],
            dropped: 0,
        };
        let doc = render_chrome(&trace);
        let rendered = doc.render();
        let parsed = Json::parse(&rendered).expect("chrome export is valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        // 3 lanes (main, worker-0, worker-1) + 2 spans + 1 instant.
        assert_eq!(events.len(), 6, "{rendered}");
        let phs: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(Json::as_str))
            .collect();
        assert_eq!(phs.iter().filter(|p| **p == "M").count(), 3);
        assert_eq!(phs.iter().filter(|p| **p == "X").count(), 2);
        assert_eq!(phs.iter().filter(|p| **p == "i").count(), 1);
        // Span identity is reconstructable from args.
        let x = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .unwrap();
        let args = x.get("args").expect("args");
        assert_eq!(
            args.get("parent").and_then(Json::as_str),
            Some("0000000000000001")
        );
        assert_eq!(args.get("k").and_then(Json::as_str), Some("v"));
        // ts/dur are microseconds.
        assert_eq!(x.get("ts").and_then(Json::as_f64), Some(1.0));
        assert_eq!(x.get("dur").and_then(Json::as_f64), Some(2.0));
    }
}
