//! Exporters: trace and metric renderings for external tools.
//!
//! - [`chrome`] — Chrome trace-event JSON ([`render_chrome`]), loadable
//!   in Perfetto / `about://tracing`, with one lane per executor worker
//!   and instant markers for work steals.
//! - [`folded`] — collapsed-stack flamegraph lines ([`render_folded`])
//!   for `flamegraph.pl` / speedscope / inferno.
//! - [`prometheus`] — Prometheus text exposition
//!   ([`render_prometheus`]) over a metric [`crate::Snapshot`]: the
//!   `/metrics` payload a future `firmup serve` will return.

pub mod chrome;
pub mod folded;
pub mod prometheus;

pub use chrome::render_chrome;
pub use folded::render_folded;
pub use prometheus::{parse_exposition, render_prometheus, Sample};
