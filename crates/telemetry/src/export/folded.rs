//! Collapsed-stack ("folded") flamegraph export.
//!
//! One line per distinct span path: the `/`-joined path with separators
//! rewritten to `;` (the stack frame delimiter flamegraph tools expect),
//! then the path's **self time** in integer nanoseconds — total duration
//! minus the duration of its direct children, clamped at zero (clock
//! jitter can make children sum past their parent). Feed the output
//! straight to `flamegraph.pl`, inferno, or speedscope.

use std::collections::HashMap;

use crate::trace_ctx::Trace;

/// Render a drained trace as collapsed-stack lines, sorted by stack so
/// output is deterministic for a deterministic trace.
pub fn render_folded(trace: &Trace) -> String {
    // Total wall time per path, then subtract direct children: a path's
    // direct parent is everything before its last '/' segment.
    let mut total: HashMap<&str, u64> = HashMap::new();
    for s in &trace.spans {
        *total.entry(s.path.as_str()).or_insert(0) += s.dur_ns;
    }
    let mut child_sum: HashMap<&str, u64> = HashMap::new();
    for (path, ns) in &total {
        if let Some((parent, _)) = path.rsplit_once('/') {
            if total.contains_key(parent) {
                *child_sum.entry(parent).or_insert(0) += ns;
            }
        }
    }
    let mut lines: Vec<String> = total
        .iter()
        .filter_map(|(path, ns)| {
            let self_ns = ns.saturating_sub(child_sum.get(path).copied().unwrap_or(0));
            (self_ns > 0).then(|| format!("{} {self_ns}", path.replace('/', ";")))
        })
        .collect();
    lines.sort_unstable();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_ctx::SpanRecord;

    fn span(path: &str, dur_ns: u64) -> SpanRecord {
        SpanRecord {
            trace_id: 1,
            span_id: 1,
            parent_id: 0,
            name: path.rsplit('/').next().unwrap().to_string(),
            path: path.to_string(),
            start_ns: 0,
            dur_ns,
            worker: None,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn folded_output_is_self_time_with_semicolon_stacks() {
        let trace = Trace {
            spans: vec![
                span("scan", 100),
                span("scan/search", 60),
                span("scan/search/game", 25),
                span("scan/search/game", 15),
            ],
            instants: Vec::new(),
            dropped: 0,
        };
        let folded = render_folded(&trace);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            vec![
                "scan 40",             // 100 - 60
                "scan;search 20",      // 60 - (25 + 15)
                "scan;search;game 40", // leaf keeps everything
            ]
        );
    }

    #[test]
    fn folded_clamps_overcommitted_parents_and_skips_empty() {
        let trace = Trace {
            spans: vec![span("a", 10), span("a/b", 25)],
            instants: Vec::new(),
            dropped: 0,
        };
        // Parent self time would be negative: clamped to 0 and omitted.
        assert_eq!(render_folded(&trace), "a;b 25\n");
        assert_eq!(render_folded(&Trace::default()), "");
    }
}
