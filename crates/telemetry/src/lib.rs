//! # firmup-telemetry
//!
//! Zero-dependency (std-only) tracing, metrics, and per-stage pipeline
//! profiling for the FirmUp reproduction.
//!
//! The crate provides four primitives, all registered in a global
//! thread-safe registry keyed by name:
//!
//! - **Counters** — monotonically increasing `u64` totals
//!   ([`incr`], [`add`], [`counter`]).
//! - **Gauges** — last-written `i64` values ([`set_gauge`], [`gauge`]).
//! - **Histograms** — log2-bucketed distributions with count / sum /
//!   min / max ([`observe`], [`histogram`]). `game.steps` mirrors the
//!   FirmUp paper's Fig. 9 step-count distribution.
//! - **Spans** — RAII wall-clock timers ([`span()`], [`span!`]) that nest
//!   through a thread-local frame stack into `/`-joined call-tree paths
//!   (`scan/index/lift`). Per-path count and total/min/max latency are
//!   recorded on drop. Spans carry deterministic trace/span ids (see
//!   [`trace_ctx`]); an explicit [`TraceCtx`] hands a parent span across
//!   threads so the executor's stolen units still nest correctly.
//!
//! All of it is gated behind a single [`AtomicU64`]-free relaxed
//! [`enabled`] flag: when telemetry is off (the default), every entry
//! point is one relaxed atomic load and an early return, keeping the
//! overhead on hot paths (corpus search, game steps) well under the 2%
//! budget the bench suite asserts.
//!
//! A structured **event log** emits JSON-lines records ([`event`]) when
//! tracing is on — enabled by the `FIRMUP_TRACE` environment variable or
//! programmatically via [`set_trace`] (the CLI's `--trace` flag).
//!
//! [`snapshot`] captures a consistent view of every registered metric;
//! [`Snapshot::render_text`] and [`Snapshot::render_json`] export it for
//! humans and machines respectively. The JSON form additionally
//! aggregates span stats by **leaf stage name** (`lift`, `canonicalize`,
//! `index`, `game`, `search`) so consumers need not care how deeply a
//! stage was nested.
//!
//! The [`export`] module renders traces and snapshots for external
//! tools: Chrome trace-event JSON (Perfetto), collapsed-stack
//! flamegraphs, and Prometheus text exposition.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod json;
pub mod trace_ctx;

pub use export::{render_chrome, render_folded, render_prometheus};
pub use trace_ctx::{
    current_ctx, current_worker, set_span_trace, set_worker, span_trace_enabled, take_trace,
    trace_instant, trace_snapshot, InstantRecord, SpanRecord, Trace, TraceCtx, TraceNode,
    TraceTree, MAX_TRACE_SPANS,
};

use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use json::Json;

/// Number of log2 histogram buckets (covers the full `u64` range).
pub const HIST_BUCKETS: usize = 65;

// ---------------------------------------------------------------------------
// Global enable gates
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static TRACE: AtomicBool = AtomicBool::new(false);

/// Turn metric recording on. Idempotent.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn metric recording off. Recording calls become near-free no-ops;
/// already-recorded values are retained.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether metric recording is on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the JSON-lines event log on or off (the CLI `--trace` flag).
pub fn set_trace(on: bool) {
    TRACE.store(on, Ordering::Relaxed);
}

/// Whether event tracing is on. Checks the `FIRMUP_TRACE` environment
/// variable once at first call; [`set_trace`] overrides either way.
#[inline]
pub fn trace_enabled() -> bool {
    static FROM_ENV: OnceLock<()> = OnceLock::new();
    FROM_ENV.get_or_init(|| {
        if std::env::var_os("FIRMUP_TRACE").is_some_and(|v| !v.is_empty() && v != "0") {
            TRACE.store(true, Ordering::Relaxed);
        }
    });
    TRACE.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Registry {
    counters: Mutex<HashMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<HashMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<HashMap<String, Arc<HistogramInner>>>,
    spans: Mutex<HashMap<String, Arc<SpanStats>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Total name → handle resolutions against the metric registry
/// (counter/gauge/histogram lookups). Every resolution takes the
/// registry lock and allocates the name `String` on first insert, so
/// hot loops must not resolve per item — they accumulate locally
/// (e.g. [`LocalHistogram`]) and flush once. The scan-path regression
/// test pins this count flat as the corpus grows.
static METRIC_LOOKUPS: AtomicU64 = AtomicU64::new(0);

/// Number of metric-registry name resolutions so far (see
/// [`METRIC_LOOKUPS`]'s invariant). Monotonic; not cleared by
/// [`reset`].
pub fn registry_lookups() -> u64 {
    METRIC_LOOKUPS.load(Ordering::Relaxed)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide telemetry epoch (first use).
pub(crate) fn epoch_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Generation counter for [`reset`]: per-thread span-stats caches
/// compare against it so a reset invalidates handles they hold into the
/// cleared registry (otherwise they would keep feeding orphaned stats
/// no snapshot can see).
static RESET_GEN: AtomicU64 = AtomicU64::new(0);

/// Clear every registered metric and span. Intended for tests; racing
/// recorders may re-register concurrently.
pub fn reset() {
    let r = registry();
    r.counters.lock().unwrap().clear();
    r.gauges.lock().unwrap().clear();
    r.histograms.lock().unwrap().clear();
    r.spans.lock().unwrap().clear();
    RESET_GEN.fetch_add(1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// Handle to a registered counter. Cheap to clone; hot loops should
/// grab one handle instead of resolving the name per call.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n`, if telemetry is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one, if telemetry is enabled.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Look up (registering on first use) the named counter.
pub fn counter(name: &str) -> Counter {
    METRIC_LOOKUPS.fetch_add(1, Ordering::Relaxed);
    let mut map = registry().counters.lock().unwrap();
    Counter(Arc::clone(
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0))),
    ))
}

/// Increment the named counter by one.
#[inline]
pub fn incr(name: &str) {
    add(name, 1);
}

/// Increment the named counter by `n`.
#[inline]
pub fn add(name: &str, n: u64) {
    if enabled() {
        counter(name).0.fetch_add(n, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Gauges
// ---------------------------------------------------------------------------

/// Handle to a registered gauge (a last-written `i64`).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Overwrite the value, if telemetry is enabled.
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Look up (registering on first use) the named gauge.
pub fn gauge(name: &str) -> Gauge {
    METRIC_LOOKUPS.fetch_add(1, Ordering::Relaxed);
    let mut map = registry().gauges.lock().unwrap();
    Gauge(Arc::clone(
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicI64::new(0))),
    ))
}

/// Set the named gauge.
#[inline]
pub fn set_gauge(name: &str, v: i64) {
    if enabled() {
        gauge(name).0.store(v, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

struct HistogramInner {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl HistogramInner {
    fn new() -> HistogramInner {
        HistogramInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
        }
    }

    fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }
}

/// Bucket index for value `v`: 0 holds only zero, bucket `i > 0` holds
/// `[2^(i-1), 2^i)`.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `i` (see [`bucket_of`]).
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Handle to a registered histogram.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Record one observation, if telemetry is enabled.
    #[inline]
    pub fn observe(&self, v: u64) {
        if enabled() {
            self.0.record(v);
        }
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }
}

/// Look up (registering on first use) the named histogram.
pub fn histogram(name: &str) -> Histogram {
    METRIC_LOOKUPS.fetch_add(1, Ordering::Relaxed);
    let mut map = registry().histograms.lock().unwrap();
    Histogram(Arc::clone(
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(HistogramInner::new())),
    ))
}

/// Record one observation in the named histogram.
#[inline]
pub fn observe(name: &str, v: u64) {
    if enabled() {
        histogram(name).0.record(v);
    }
}

/// A plain-struct histogram accumulator for hot loops: identical
/// bucket layout to the registered [`Histogram`]s, but updated with
/// ordinary arithmetic — no registry lookup, no lock, no atomics, no
/// allocation per observation. Accumulate per scan (or per worker) and
/// [`flush_into`](LocalHistogram::flush_into) the named global
/// histogram once at the end; the merged global is indistinguishable
/// from having observed every value directly.
#[derive(Clone, Debug)]
pub struct LocalHistogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for LocalHistogram {
    fn default() -> LocalHistogram {
        LocalHistogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl LocalHistogram {
    /// An empty accumulator.
    pub fn new() -> LocalHistogram {
        LocalHistogram::default()
    }

    /// Record one observation. Unconditional — gating on [`enabled`] is
    /// the flush's job, keeping this a branch-free handful of integer
    /// ops.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        // Wrapping, matching the global histogram's `fetch_add`.
        self.sum = self.sum.wrapping_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_of(v)] += 1;
    }

    /// Observations accumulated since the last flush.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Fold another accumulator into this one (per-worker partials into
    /// a scan-wide total).
    pub fn merge(&mut self, other: &LocalHistogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// Merge the accumulated observations into the named global
    /// histogram (one registry resolution) and clear the accumulator.
    /// No-op on the registry when empty or when telemetry is disabled.
    pub fn flush_into(&mut self, name: &str) {
        if self.count > 0 && enabled() {
            let h = histogram(name);
            h.0.count.fetch_add(self.count, Ordering::Relaxed);
            h.0.sum.fetch_add(self.sum, Ordering::Relaxed);
            h.0.min.fetch_min(self.min, Ordering::Relaxed);
            h.0.max.fetch_max(self.max, Ordering::Relaxed);
            for (i, &n) in self.buckets.iter().enumerate() {
                if n > 0 {
                    h.0.buckets[i].fetch_add(n, Ordering::Relaxed);
                }
            }
        }
        *self = LocalHistogram::default();
    }
}

/// Register every listed metric up front so a run that never touches
/// one still reports it (at zero) in snapshots and exposition scrapes —
/// dashboards and tests can rely on the full metric family existing.
pub fn preregister(counters: &[&str], gauges: &[&str], histograms: &[&str]) {
    for name in counters {
        let _ = counter(name);
    }
    for name in gauges {
        let _ = gauge(name);
    }
    for name in histograms {
        let _ = histogram(name);
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

struct SpanStats {
    count: AtomicU64,
    total_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl SpanStats {
    fn new() -> SpanStats {
        SpanStats {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }
}

thread_local! {
    /// Per-thread memo of span paths already resolved against the global
    /// registry, tagged with the [`RESET_GEN`] it was built under. A
    /// scan finishes one span per game — millions per run — and every
    /// finish used to take the global spans lock plus a `String`
    /// allocation for the entry probe. With the memo, a repeated path
    /// costs one local hash lookup and four atomic updates; the lock and
    /// allocations are paid once per (thread, path). [`reset`] bumps the
    /// generation, which drops the whole memo so stale handles into the
    /// cleared registry are never fed again.
    static SPAN_STATS_MEMO: std::cell::RefCell<(u64, HashMap<String, Arc<SpanStats>>)> =
        std::cell::RefCell::new((0, HashMap::new()));
}

/// Feed one finished span into the per-path latency registry.
pub(crate) fn record_span_stats(path: &str, elapsed_ns: u64) {
    let stats = SPAN_STATS_MEMO.with(|memo| {
        let mut memo = memo.borrow_mut();
        let gen = RESET_GEN.load(Ordering::Relaxed);
        if memo.0 != gen {
            memo.0 = gen;
            memo.1.clear();
        }
        if let Some(s) = memo.1.get(path) {
            return Arc::clone(s);
        }
        let stats = {
            let mut map = registry().spans.lock().unwrap();
            Arc::clone(
                map.entry(path.to_string())
                    .or_insert_with(|| Arc::new(SpanStats::new())),
            )
        };
        memo.1.insert(path.to_string(), Arc::clone(&stats));
        stats
    });
    stats.count.fetch_add(1, Ordering::Relaxed);
    stats.total_ns.fetch_add(elapsed_ns, Ordering::Relaxed);
    stats.min_ns.fetch_min(elapsed_ns, Ordering::Relaxed);
    stats.max_ns.fetch_max(elapsed_ns, Ordering::Relaxed);
}

/// RAII timer for one pipeline stage. Created by [`span()`] / [`span!`]
/// or by entering an explicit [`TraceCtx`]; on drop it records elapsed
/// wall time under the `/`-joined path of all open spans on this thread
/// and — when span tracing is on ([`set_span_trace`]) — appends a
/// [`SpanRecord`] to the global trace collector.
pub struct SpanGuard {
    // None when both metrics and span tracing were off at span entry.
    pub(crate) active: Option<trace_ctx::ActiveSpan>,
}

impl SpanGuard {
    /// Attach a key-value attribute, exported in the trace record's
    /// `args`. No-op on an inert guard.
    pub fn attr(&mut self, key: &str, value: impl ToString) {
        if let Some(a) = &mut self.active {
            a.push_attr(key, value.to_string());
        }
    }
}

/// Open a named span. The name becomes one path segment; nested spans
/// produce paths such as `scan/index/lift`. The span is an *ambient*
/// child of whatever span is innermost on this thread — to parent under
/// a span running on another thread, carry a [`TraceCtx`] instead.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() && !span_trace_enabled() {
        return SpanGuard { active: None };
    }
    SpanGuard {
        active: Some(trace_ctx::push_ambient(name)),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            trace_ctx::finish(active);
        }
    }
}

/// Open a span for the rest of the enclosing scope:
/// `let _span = span!("lift");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

// ---------------------------------------------------------------------------
// Event log (JSON-lines)
// ---------------------------------------------------------------------------

enum TraceSink {
    Stderr,
    File(std::io::BufWriter<std::fs::File>),
}

fn trace_sink() -> &'static Mutex<TraceSink> {
    static SINK: OnceLock<Mutex<TraceSink>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(TraceSink::Stderr))
}

/// Redirect the event log from stderr to `path` (truncating it).
pub fn set_trace_file(path: &std::path::Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    *trace_sink().lock().unwrap() = TraceSink::File(std::io::BufWriter::new(file));
    Ok(())
}

/// Flush the event log (meaningful when routed to a file).
pub fn flush_trace() {
    if let TraceSink::File(w) = &mut *trace_sink().lock().unwrap() {
        let _ = w.flush();
    }
}

/// Emit one structured event as a JSON line, if tracing is on. Each
/// record carries the event `kind`, milliseconds since process start
/// (`ms`), and the given fields.
pub fn event(kind: &str, fields: &[(&str, Json)]) {
    if !trace_enabled() {
        return;
    }
    let mut obj = Vec::with_capacity(fields.len() + 2);
    obj.push(("event".to_string(), Json::Str(kind.to_string())));
    obj.push((
        "ms".to_string(),
        Json::Num(epoch().elapsed().as_secs_f64() * 1000.0),
    ));
    for (k, v) in fields {
        obj.push(((*k).to_string(), v.clone()));
    }
    let line = Json::Obj(obj).render();
    match &mut *trace_sink().lock().unwrap() {
        TraceSink::Stderr => {
            let _ = writeln!(std::io::stderr().lock(), "{line}");
        }
        TraceSink::File(w) => {
            let _ = writeln!(w, "{line}");
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot + exporters
// ---------------------------------------------------------------------------

/// Point-in-time copy of one histogram.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Non-empty buckets as `(inclusive lower bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) from the log2 buckets:
    /// find the bucket that crosses rank `q * count` and interpolate
    /// linearly inside it, clamping to the recorded `min`/`max`. The
    /// estimate is exact when the crossing bucket holds one distinct
    /// value and otherwise accurate to the bucket's span (a factor of
    /// two). Returns 0.0 when the histogram is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut seen = 0.0;
        for (bi, &(lo, n)) in self.buckets.iter().enumerate() {
            let next = seen + n as f64;
            if next >= rank || bi + 1 == self.buckets.len() {
                if lo == 0 {
                    return 0.0;
                }
                // Bucket i > 0 covers [lo, 2*lo).
                let frac = if n == 0 {
                    0.0
                } else {
                    ((rank - seen) / n as f64).clamp(0.0, 1.0)
                };
                let v = lo as f64 + frac * lo as f64;
                return v.clamp(self.min as f64, self.max as f64);
            }
            seen = next;
        }
        self.max as f64
    }
}

/// Point-in-time copy of one span path's latency stats.
#[derive(Clone, Debug)]
pub struct SpanSnapshot {
    /// Number of completed spans.
    pub count: u64,
    /// Total nanoseconds across all completions.
    pub total_ns: u64,
    /// Fastest completion in nanoseconds.
    pub min_ns: u64,
    /// Slowest completion in nanoseconds.
    pub max_ns: u64,
}

/// A consistent view of every registered metric.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Span stats keyed by full `/`-joined path, sorted by path.
    pub spans: Vec<(String, SpanSnapshot)>,
}

/// Capture the current value of every registered metric.
pub fn snapshot() -> Snapshot {
    let r = registry();
    let mut counters: Vec<(String, u64)> = r
        .counters
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
        .collect();
    counters.sort();
    let mut gauges: Vec<(String, i64)> = r
        .gauges
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
        .collect();
    gauges.sort();
    let mut histograms: Vec<(String, HistogramSnapshot)> = r
        .histograms
        .lock()
        .unwrap()
        .iter()
        .map(|(k, h)| {
            let count = h.count.load(Ordering::Relaxed);
            let buckets = h
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((bucket_lower_bound(i), n))
                })
                .collect();
            (
                k.clone(),
                HistogramSnapshot {
                    count,
                    sum: h.sum.load(Ordering::Relaxed),
                    min: if count == 0 {
                        0
                    } else {
                        h.min.load(Ordering::Relaxed)
                    },
                    max: h.max.load(Ordering::Relaxed),
                    buckets,
                },
            )
        })
        .collect();
    histograms.sort_by(|a, b| a.0.cmp(&b.0));
    let mut spans: Vec<(String, SpanSnapshot)> = r
        .spans
        .lock()
        .unwrap()
        .iter()
        .map(|(k, s)| {
            let count = s.count.load(Ordering::Relaxed);
            (
                k.clone(),
                SpanSnapshot {
                    count,
                    total_ns: s.total_ns.load(Ordering::Relaxed),
                    min_ns: if count == 0 {
                        0
                    } else {
                        s.min_ns.load(Ordering::Relaxed)
                    },
                    max_ns: s.max_ns.load(Ordering::Relaxed),
                },
            )
        })
        .collect();
    spans.sort_by(|a, b| a.0.cmp(&b.0));
    Snapshot {
        counters,
        gauges,
        histograms,
        spans,
    }
}

impl Snapshot {
    /// Span stats aggregated by **leaf stage name** (the last path
    /// segment), summing across call sites — `scan/index/lift` and
    /// `index/lift` both contribute to stage `lift`.
    pub fn stages(&self) -> Vec<(String, SpanSnapshot)> {
        let mut by_leaf: HashMap<&str, SpanSnapshot> = HashMap::new();
        for (path, s) in &self.spans {
            let leaf = path.rsplit('/').next().unwrap_or(path);
            let entry = by_leaf.entry(leaf).or_insert(SpanSnapshot {
                count: 0,
                total_ns: 0,
                min_ns: u64::MAX,
                max_ns: 0,
            });
            entry.count += s.count;
            entry.total_ns += s.total_ns;
            entry.min_ns = entry.min_ns.min(s.min_ns);
            entry.max_ns = entry.max_ns.max(s.max_ns);
        }
        let mut out: Vec<(String, SpanSnapshot)> = by_leaf
            .into_iter()
            .map(|(k, mut v)| {
                if v.count == 0 {
                    v.min_ns = 0;
                }
                (k.to_string(), v)
            })
            .collect();
        out.sort_by_key(|(_, v)| std::cmp::Reverse(v.total_ns));
        out
    }

    /// Render a human-readable multi-line summary.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str("stages (by total time):\n");
            for (name, s) in self.stages() {
                let _ = writeln!(
                    out,
                    "  {name:<24} {:>6} calls  total {:>10}  mean {:>10}",
                    s.count,
                    fmt_ns(s.total_ns as f64),
                    fmt_ns(if s.count == 0 {
                        0.0
                    } else {
                        s.total_ns as f64 / s.count as f64
                    }),
                );
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<32} {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<32} {v}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<32} count {} min {} mean {:.1} max {}",
                    h.count,
                    h.min,
                    h.mean(),
                    h.max,
                );
                for (lo, n) in &h.buckets {
                    let _ = writeln!(out, "    >= {lo:<12} {n}");
                }
            }
        }
        out
    }

    /// Render the snapshot as a JSON object with `counters`, `gauges`,
    /// `histograms`, `spans` (full paths), and `stages` (leaf-name
    /// aggregates) sections.
    pub fn render_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    Json::Obj(vec![
                        ("count".to_string(), Json::Num(h.count as f64)),
                        ("sum".to_string(), Json::Num(h.sum as f64)),
                        ("min".to_string(), Json::Num(h.min as f64)),
                        ("max".to_string(), Json::Num(h.max as f64)),
                        ("mean".to_string(), Json::Num(h.mean())),
                        (
                            "buckets".to_string(),
                            Json::Arr(
                                h.buckets
                                    .iter()
                                    .map(|(lo, n)| {
                                        Json::Arr(vec![Json::Num(*lo as f64), Json::Num(*n as f64)])
                                    })
                                    .collect(),
                            ),
                        ),
                    ]),
                )
            })
            .collect();
        let span_obj = |s: &SpanSnapshot| {
            Json::Obj(vec![
                ("count".to_string(), Json::Num(s.count as f64)),
                ("total_ns".to_string(), Json::Num(s.total_ns as f64)),
                ("min_ns".to_string(), Json::Num(s.min_ns as f64)),
                ("max_ns".to_string(), Json::Num(s.max_ns as f64)),
            ])
        };
        let spans = self
            .spans
            .iter()
            .map(|(k, s)| (k.clone(), span_obj(s)))
            .collect();
        let stages = self
            .stages()
            .iter()
            .map(|(k, s)| (k.clone(), span_obj(s)))
            .collect();
        Json::Obj(vec![
            ("counters".to_string(), Json::Obj(counters)),
            ("gauges".to_string(), Json::Obj(gauges)),
            ("histograms".to_string(), Json::Obj(histograms)),
            ("spans".to_string(), Json::Obj(spans)),
            ("stages".to_string(), Json::Obj(stages)),
        ])
    }
}

/// [`snapshot`] + [`Snapshot::render_text`] in one call.
pub fn render_text() -> String {
    snapshot().render_text()
}

/// [`snapshot`] + [`Snapshot::render_json`] in one call.
pub fn render_json() -> Json {
    snapshot().render_json()
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_lower_bound(0), 0);
        assert_eq!(bucket_lower_bound(1), 1);
        assert_eq!(bucket_lower_bound(3), 4);
    }

    #[test]
    fn quantile_estimates_from_log2_buckets() {
        let snap = |values: &[u64]| {
            let mut buckets: Vec<(u64, u64)> = Vec::new();
            for &v in values {
                let lo = bucket_lower_bound(bucket_of(v));
                match buckets.iter_mut().find(|(b, _)| *b == lo) {
                    Some((_, n)) => *n += 1,
                    None => buckets.push((lo, 1)),
                }
            }
            buckets.sort_unstable();
            HistogramSnapshot {
                count: values.len() as u64,
                sum: values.iter().sum(),
                min: values.iter().copied().min().unwrap_or(0),
                max: values.iter().copied().max().unwrap_or(0),
                buckets,
            }
        };
        // Empty histogram.
        assert_eq!(snap(&[]).quantile(0.5), 0.0);
        // A single value: min == max pins the estimate exactly.
        assert_eq!(snap(&[100]).quantile(0.5), 100.0);
        assert_eq!(snap(&[100]).quantile(0.95), 100.0);
        // All zeros stay zero.
        assert_eq!(snap(&[0, 0, 0]).quantile(0.99), 0.0);
        // A spread: the median lands in the right bucket, and p100
        // clamps to max.
        let h = snap(&[1, 2, 4, 8, 16, 32, 64, 128]);
        let p50 = h.quantile(0.5);
        assert!((4.0..=16.0).contains(&p50), "p50 = {p50}");
        assert_eq!(h.quantile(1.0), 128.0);
        // Monotone in q.
        assert!(h.quantile(0.95) >= h.quantile(0.5));
        // Heavily skewed data: p95 sits in the top bucket's range.
        let h = snap(&[1; 19].iter().copied().chain([1000]).collect::<Vec<_>>());
        assert!(h.quantile(0.5) <= 2.0);
        assert!(h.quantile(0.99) > 500.0);
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        disable();
        incr("unit.disabled.counter");
        observe("unit.disabled.hist", 9);
        {
            let _s = span!("unit-disabled-span");
        }
        let snap = snapshot();
        assert!(!snap
            .counters
            .iter()
            .any(|(k, v)| k == "unit.disabled.counter" && *v > 0));
        assert!(!snap
            .histograms
            .iter()
            .any(|(k, h)| k == "unit.disabled.hist" && h.count > 0));
        assert!(!snap.spans.iter().any(|(k, _)| k == "unit-disabled-span"));
    }
}
