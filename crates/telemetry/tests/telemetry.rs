//! Integration tests for the telemetry registry: concurrent recording,
//! span nesting, and the JSON snapshot round-trip.
//!
//! Telemetry state is process-global, so every test here uses uniquely
//! named metrics and the suite enables recording up front.

use firmup_telemetry as tm;
use tm::json::Json;

fn enabled() {
    tm::enable();
}

#[test]
fn counters_are_exact_under_contention() {
    enabled();
    let c = tm::counter("it.counter.contended");
    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                for _ in 0..10_000 {
                    c.incr();
                }
            });
        }
    });
    assert_eq!(c.get(), 80_000);
}

#[test]
fn histograms_are_exact_under_contention() {
    enabled();
    let h = tm::histogram("it.hist.contended");
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let h = h.clone();
            s.spawn(move || {
                for i in 0..1_000u64 {
                    h.observe(t * 1_000 + i);
                }
            });
        }
    });
    let snap = tm::snapshot();
    let (_, hist) = snap
        .histograms
        .iter()
        .find(|(k, _)| k == "it.hist.contended")
        .expect("registered");
    assert_eq!(hist.count, 8_000);
    assert_eq!(hist.min, 0);
    assert_eq!(hist.max, 7_999);
    // Observations land in log2 buckets covering [0, 8000).
    assert_eq!(hist.buckets.iter().map(|(_, n)| n).sum::<u64>(), 8_000);
    let total: u64 = (0..8u64)
        .map(|t| (0..1_000).map(|i| t * 1_000 + i).sum::<u64>())
        .sum();
    assert_eq!(hist.sum, total);
}

#[test]
fn spans_nest_into_slash_joined_paths() {
    enabled();
    {
        let _outer = tm::span!("it-outer");
        {
            let _inner = tm::span!("it-inner");
        }
        {
            let _inner = tm::span!("it-inner");
        }
    }
    let snap = tm::snapshot();
    let inner = snap
        .spans
        .iter()
        .find(|(k, _)| k == "it-outer/it-inner")
        .expect("nested path recorded");
    assert_eq!(inner.1.count, 2);
    let outer = snap
        .spans
        .iter()
        .find(|(k, _)| k == "it-outer")
        .expect("outer path");
    assert_eq!(outer.1.count, 1);
    assert!(
        outer.1.total_ns >= inner.1.total_ns,
        "outer span encloses both inner spans"
    );
    // Leaf aggregation folds paths by last segment.
    let stages = snap.stages();
    let (_, leaf) = stages
        .iter()
        .find(|(k, _)| k == "it-inner")
        .expect("stage aggregate");
    assert_eq!(leaf.count, 2);
}

#[test]
fn gauge_keeps_last_write() {
    enabled();
    tm::set_gauge("it.gauge", 41);
    tm::set_gauge("it.gauge", -7);
    let snap = tm::snapshot();
    let (_, v) = snap
        .gauges
        .iter()
        .find(|(k, _)| k == "it.gauge")
        .expect("registered");
    assert_eq!(*v, -7);
}

#[test]
fn json_snapshot_round_trips() {
    enabled();
    tm::add("it.json.counter", 3);
    tm::observe("it.json.hist", 5);
    tm::observe("it.json.hist", 600);
    {
        let _s = tm::span!("it-json-span");
    }
    let rendered = tm::render_json().render();
    let doc = Json::parse(&rendered).expect("snapshot renders valid JSON");

    assert_eq!(
        doc.get("counters")
            .and_then(|c| c.get("it.json.counter"))
            .and_then(Json::as_u64),
        Some(3)
    );
    let hist = doc
        .get("histograms")
        .and_then(|h| h.get("it.json.hist"))
        .expect("histogram");
    assert_eq!(hist.get("count").and_then(Json::as_u64), Some(2));
    assert_eq!(hist.get("sum").and_then(Json::as_u64), Some(605));
    assert_eq!(hist.get("min").and_then(Json::as_u64), Some(5));
    assert_eq!(hist.get("max").and_then(Json::as_u64), Some(600));
    let buckets = hist.get("buckets").and_then(Json::as_arr).expect("buckets");
    assert_eq!(buckets.len(), 2, "5 and 600 live in different log2 buckets");

    let span = doc
        .get("stages")
        .and_then(|s| s.get("it-json-span"))
        .expect("stage");
    assert_eq!(span.get("count").and_then(Json::as_u64), Some(1));
}

#[test]
fn quantile_edge_cases() {
    // Empty histogram: every quantile is 0.0.
    let empty = tm::HistogramSnapshot {
        count: 0,
        sum: 0,
        min: 0,
        max: 0,
        buckets: Vec::new(),
    };
    for q in [0.0, 0.5, 1.0] {
        assert_eq!(empty.quantile(q), 0.0);
    }

    // Single-bucket histogram: every quantile stays inside [min, max].
    let single = tm::HistogramSnapshot {
        count: 4,
        sum: 44,
        min: 9,
        max: 13,
        buckets: vec![(8, 4)], // all four values in [8, 16)
    };
    for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let v = single.quantile(q);
        assert!((9.0..=13.0).contains(&v), "q={q} gave {v}");
    }
    // q=0.0 pins to the low edge, q=1.0 to the recorded max.
    assert_eq!(single.quantile(0.0), 9.0);
    assert_eq!(single.quantile(1.0), 13.0);

    // Out-of-range q clamps rather than panicking.
    assert_eq!(single.quantile(-1.0), single.quantile(0.0));
    assert_eq!(single.quantile(2.0), single.quantile(1.0));
}

#[test]
fn bucket_round_trip_at_u64_boundaries() {
    // Every bucket index round-trips through its own lower bound.
    for i in 0..tm::HIST_BUCKETS {
        assert_eq!(tm::bucket_of(tm::bucket_lower_bound(i)), i, "bucket {i}");
    }
    // Powers of two open a new bucket; their predecessors close one.
    for k in 1..64u32 {
        let p = 1u64 << k;
        assert_eq!(tm::bucket_of(p), k as usize + 1, "2^{k}");
        assert_eq!(tm::bucket_of(p - 1), k as usize, "2^{k} - 1");
    }
    // The extremes: only zero lands in bucket 0, and u64::MAX lands in
    // the last bucket.
    assert_eq!(tm::bucket_of(0), 0);
    assert_eq!(tm::bucket_of(1), 1);
    assert_eq!(tm::bucket_of(u64::MAX), tm::HIST_BUCKETS - 1);
    assert_eq!(tm::bucket_lower_bound(tm::HIST_BUCKETS - 1), 1u64 << 63);
    // Every value sits within its bucket's [lo, 2*lo) range.
    for v in [0u64, 1, 2, 3, 7, 64, 1_000_003, u64::MAX / 2, u64::MAX] {
        let lo = tm::bucket_lower_bound(tm::bucket_of(v));
        assert!(lo <= v, "lower bound {lo} above value {v}");
        if lo > 0 && lo <= u64::MAX / 2 {
            assert!(v < lo * 2, "value {v} escapes bucket [{lo}, {})", lo * 2);
        }
    }
}

#[test]
fn trace_ctx_reparents_spans_across_threads() {
    enabled();
    // A root on the main thread; children entered on worker threads via
    // explicit contexts. With the old thread-local-only stack these
    // worker spans would record as roots named "it-ctx-unit"; with
    // TraceCtx they nest under the root's path.
    let root = tm::TraceCtx::root("it-ctx-root");
    {
        let _g = root.clone().enter();
        std::thread::scope(|s| {
            for i in 0..4u64 {
                let ctx = root.child("it-ctx-unit", i);
                s.spawn(move || {
                    let _u = ctx.enter();
                    let _inner = tm::span!("it-ctx-inner");
                });
            }
        });
    }
    let snap = tm::snapshot();
    let count_of = |path: &str| {
        snap.spans
            .iter()
            .find(|(k, _)| k == path)
            .map_or(0, |(_, s)| s.count)
    };
    assert_eq!(count_of("it-ctx-root"), 1);
    assert_eq!(count_of("it-ctx-root/it-ctx-unit"), 4);
    assert_eq!(count_of("it-ctx-root/it-ctx-unit/it-ctx-inner"), 4);
    assert_eq!(count_of("it-ctx-unit"), 0, "no orphaned worker spans");
}

#[test]
fn prometheus_round_trips_against_live_registry() {
    enabled();
    tm::add("it.prom.counter", 17);
    tm::set_gauge("it.prom.gauge", -4);
    for v in [0u64, 3, 3, 900] {
        tm::observe("it.prom.hist", v);
    }
    let snap = tm::snapshot();
    let samples =
        tm::export::parse_exposition(&tm::render_prometheus(&snap)).expect("exposition parses");
    let value = |name: &str, le: Option<&str>| {
        samples
            .iter()
            .find(|s| {
                s.name == name
                    && le.is_none_or(|want| s.labels.iter().any(|(k, v)| k == "le" && v == want))
            })
            .unwrap_or_else(|| panic!("missing {name}"))
            .value
    };
    assert_eq!(value("firmup_it_prom_counter_total", None), 17.0);
    assert_eq!(value("firmup_it_prom_gauge", None), -4.0);
    let hist = snap
        .histograms
        .iter()
        .find(|(k, _)| k == "it.prom.hist")
        .map(|(_, h)| h)
        .expect("histogram registered");
    assert_eq!(value("firmup_it_prom_hist_count", None), hist.count as f64);
    assert_eq!(value("firmup_it_prom_hist_sum", None), hist.sum as f64);
    assert_eq!(
        value("firmup_it_prom_hist_bucket", Some("+Inf")),
        hist.count as f64
    );
    // Cumulative bucket counts are monotone and end at count.
    let mut les: Vec<f64> = samples
        .iter()
        .filter(|s| s.name == "firmup_it_prom_hist_bucket")
        .map(|s| s.value)
        .collect();
    let sorted = {
        let mut s = les.clone();
        s.sort_by(f64::total_cmp);
        s
    };
    assert_eq!(les, sorted, "bucket counts are cumulative");
    assert_eq!(les.pop(), Some(hist.count as f64));
}

#[test]
fn events_route_to_trace_file() {
    enabled();
    tm::set_trace(true);
    let path = std::env::temp_dir().join(format!("firmup-trace-{}.jsonl", std::process::id()));
    tm::set_trace_file(&path).expect("trace file");
    tm::event(
        "it.event",
        &[("k", Json::Str("v".into())), ("n", Json::Num(7.0))],
    );
    tm::flush_trace();
    tm::set_trace(false);
    let body = std::fs::read_to_string(&path).expect("trace written");
    let line = body
        .lines()
        .find(|l| l.contains("it.event"))
        .expect("event line");
    let doc = Json::parse(line).expect("event line is valid JSON");
    assert_eq!(doc.get("event").and_then(Json::as_str), Some("it.event"));
    assert_eq!(doc.get("n").and_then(Json::as_u64), Some(7));
    assert!(doc.get("ms").is_some(), "events carry a timestamp");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn local_histogram_flush_matches_direct_observation() {
    enabled();
    let values = [0u64, 1, 2, 3, 100, 5_000, u64::MAX];
    for &v in &values {
        tm::observe("it.local.direct", v);
    }
    let mut local = tm::LocalHistogram::new();
    for &v in &values {
        local.record(v);
    }
    assert_eq!(local.count(), values.len() as u64);
    local.flush_into("it.local.flushed");
    assert_eq!(local.count(), 0, "flush clears the accumulator");
    let snap = tm::snapshot();
    let get = |n: &str| {
        snap.histograms
            .iter()
            .find(|(k, _)| k == n)
            .expect("registered")
            .1
            .clone()
    };
    let (d, f) = (get("it.local.direct"), get("it.local.flushed"));
    assert_eq!(d.count, f.count);
    assert_eq!(d.sum, f.sum);
    assert_eq!(d.min, f.min);
    assert_eq!(d.max, f.max);
    assert_eq!(d.buckets, f.buckets, "bucket layout identical");
}

#[test]
fn local_histogram_merge_combines_workers() {
    let mut a = tm::LocalHistogram::new();
    let mut b = tm::LocalHistogram::new();
    a.record(4);
    a.record(9);
    b.record(1);
    a.merge(&b);
    assert_eq!(a.count(), 3);
    // Merging an empty accumulator changes nothing.
    a.merge(&tm::LocalHistogram::new());
    assert_eq!(a.count(), 3);
}

#[test]
fn registry_lookups_counts_name_resolutions() {
    // Other tests in this binary resolve names concurrently, so only
    // monotonicity and a lower bound are assertable here; the scan-path
    // flatness pin lives in firmup-core's dedicated test binary.
    let before = tm::registry_lookups();
    let _ = tm::counter("it.lookups.a");
    let _ = tm::histogram("it.lookups.b");
    let _ = tm::gauge("it.lookups.c");
    assert!(tm::registry_lookups() >= before + 3);
}
