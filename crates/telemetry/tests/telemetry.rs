//! Integration tests for the telemetry registry: concurrent recording,
//! span nesting, and the JSON snapshot round-trip.
//!
//! Telemetry state is process-global, so every test here uses uniquely
//! named metrics and the suite enables recording up front.

use firmup_telemetry as tm;
use tm::json::Json;

fn enabled() {
    tm::enable();
}

#[test]
fn counters_are_exact_under_contention() {
    enabled();
    let c = tm::counter("it.counter.contended");
    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                for _ in 0..10_000 {
                    c.incr();
                }
            });
        }
    });
    assert_eq!(c.get(), 80_000);
}

#[test]
fn histograms_are_exact_under_contention() {
    enabled();
    let h = tm::histogram("it.hist.contended");
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let h = h.clone();
            s.spawn(move || {
                for i in 0..1_000u64 {
                    h.observe(t * 1_000 + i);
                }
            });
        }
    });
    let snap = tm::snapshot();
    let (_, hist) = snap
        .histograms
        .iter()
        .find(|(k, _)| k == "it.hist.contended")
        .expect("registered");
    assert_eq!(hist.count, 8_000);
    assert_eq!(hist.min, 0);
    assert_eq!(hist.max, 7_999);
    // Observations land in log2 buckets covering [0, 8000).
    assert_eq!(hist.buckets.iter().map(|(_, n)| n).sum::<u64>(), 8_000);
    let total: u64 = (0..8u64)
        .map(|t| (0..1_000).map(|i| t * 1_000 + i).sum::<u64>())
        .sum();
    assert_eq!(hist.sum, total);
}

#[test]
fn spans_nest_into_slash_joined_paths() {
    enabled();
    {
        let _outer = tm::span!("it-outer");
        {
            let _inner = tm::span!("it-inner");
        }
        {
            let _inner = tm::span!("it-inner");
        }
    }
    let snap = tm::snapshot();
    let inner = snap
        .spans
        .iter()
        .find(|(k, _)| k == "it-outer/it-inner")
        .expect("nested path recorded");
    assert_eq!(inner.1.count, 2);
    let outer = snap
        .spans
        .iter()
        .find(|(k, _)| k == "it-outer")
        .expect("outer path");
    assert_eq!(outer.1.count, 1);
    assert!(
        outer.1.total_ns >= inner.1.total_ns,
        "outer span encloses both inner spans"
    );
    // Leaf aggregation folds paths by last segment.
    let stages = snap.stages();
    let (_, leaf) = stages
        .iter()
        .find(|(k, _)| k == "it-inner")
        .expect("stage aggregate");
    assert_eq!(leaf.count, 2);
}

#[test]
fn gauge_keeps_last_write() {
    enabled();
    tm::set_gauge("it.gauge", 41);
    tm::set_gauge("it.gauge", -7);
    let snap = tm::snapshot();
    let (_, v) = snap
        .gauges
        .iter()
        .find(|(k, _)| k == "it.gauge")
        .expect("registered");
    assert_eq!(*v, -7);
}

#[test]
fn json_snapshot_round_trips() {
    enabled();
    tm::add("it.json.counter", 3);
    tm::observe("it.json.hist", 5);
    tm::observe("it.json.hist", 600);
    {
        let _s = tm::span!("it-json-span");
    }
    let rendered = tm::render_json().render();
    let doc = Json::parse(&rendered).expect("snapshot renders valid JSON");

    assert_eq!(
        doc.get("counters")
            .and_then(|c| c.get("it.json.counter"))
            .and_then(Json::as_u64),
        Some(3)
    );
    let hist = doc
        .get("histograms")
        .and_then(|h| h.get("it.json.hist"))
        .expect("histogram");
    assert_eq!(hist.get("count").and_then(Json::as_u64), Some(2));
    assert_eq!(hist.get("sum").and_then(Json::as_u64), Some(605));
    assert_eq!(hist.get("min").and_then(Json::as_u64), Some(5));
    assert_eq!(hist.get("max").and_then(Json::as_u64), Some(600));
    let buckets = hist.get("buckets").and_then(Json::as_arr).expect("buckets");
    assert_eq!(buckets.len(), 2, "5 and 600 live in different log2 buckets");

    let span = doc
        .get("stages")
        .and_then(|s| s.get("it-json-span"))
        .expect("stage");
    assert_eq!(span.get("count").and_then(Json::as_u64), Some(1));
}

#[test]
fn events_route_to_trace_file() {
    enabled();
    tm::set_trace(true);
    let path = std::env::temp_dir().join(format!("firmup-trace-{}.jsonl", std::process::id()));
    tm::set_trace_file(&path).expect("trace file");
    tm::event(
        "it.event",
        &[("k", Json::Str("v".into())), ("n", Json::Num(7.0))],
    );
    tm::flush_trace();
    tm::set_trace(false);
    let body = std::fs::read_to_string(&path).expect("trace written");
    let line = body
        .lines()
        .find(|l| l.contains("it.event"))
        .expect("event line");
    let doc = Json::parse(line).expect("event line is valid JSON");
    assert_eq!(doc.get("event").and_then(Json::as_str), Some("it.event"));
    assert_eq!(doc.get("n").and_then(Json::as_u64), Some(7));
    assert!(doc.get("ms").is_some(), "events carry a timestamp");
    let _ = std::fs::remove_file(&path);
}
