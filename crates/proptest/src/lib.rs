//! A from-scratch, std-only property-testing shim.
//!
//! The workspace must build and test with **zero registry dependencies**
//! (firmware build containers are offline), so this crate re-implements
//! the slice of the `proptest` API the test suite actually uses: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_recursive` / `boxed`, range and tuple and `Vec` strategies,
//! [`any`], [`Just`], weighted [`prop_oneof!`], `collection::vec`,
//! `sample::Index`, a tiny character-class regex generator for `&str`
//! strategies, and the [`proptest!`] test macro.
//!
//! Differences from upstream are deliberate: generation is driven by a
//! deterministic per-test seed (derived from the test name, stable
//! across runs and machines) and there is **no shrinking** — a failing
//! case panics with the generated values' `Debug` output instead.

use std::cell::Cell;
use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

/// Deterministic generator state (SplitMix64): high-quality 64-bit
/// output from a tiny state, the same construction the firmware corpus
/// seeder uses.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed explicitly.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Derive a stable seed from a test name and case index.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::from_seed(h ^ (u64::from(case)).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift rejection-free mapping is biased for huge n;
        // use simple rejection sampling for exactness.
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }
}

/// A value generator. The shim's equivalent of proptest's `Strategy`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy built from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `depth` levels of `f` applied over the leaf
    /// strategy. The `_nodes` / `_items` size hints of the real API are
    /// accepted and ignored (depth alone bounds our trees).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _nodes: u32,
        _items: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = f(cur).boxed();
            let l = leaf.clone();
            cur = BoxedStrategy::new(move |rng| {
                // 1-in-4 chance of bottoming out early keeps expected
                // sizes small while still reaching full depth often.
                if rng.below(4) == 0 {
                    l.gen_value(rng)
                } else {
                    deeper.gen_value(rng)
                }
            });
        }
        cur
    }

    /// Type-erase.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let s = self;
        BoxedStrategy::new(move |rng| s.gen_value(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> BoxedStrategy<T> {
    /// Wrap a generation function.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy { gen: Rc::new(f) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniformly sampled ranges over the primitive integers.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy");
                (lo + rng.below((hi - lo) as u64) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Element-wise tuple strategies.
macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.gen_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

/// A `Vec` of strategies generates element-wise (used to build
/// position-dependent statement sequences).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.gen_value(rng)).collect()
    }
}

/// `&str` strategies: a small regex-subset generator. Supported syntax
/// is what the test suite uses: literals, `[...]` character classes with
/// ranges, `\PC` (any printable ASCII), and `{n}` / `{m,n}` repetition.
impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        gen_from_pattern(self, rng)
    }
}

fn gen_from_pattern(pat: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pat.chars().collect();
    let mut out = String::new();
    let mut i = 0usize;
    while i < chars.len() {
        // Parse one atom into a set of candidate characters.
        let set: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated class in pattern {pat:?}"));
                let body = &chars[i + 1..close];
                i = close + 1;
                let mut set = Vec::new();
                let mut j = 0;
                while j < body.len() {
                    if j + 2 < body.len() && body[j + 1] == '-' {
                        let (a, b) = (body[j], body[j + 2]);
                        for c in a..=b {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(body[j]);
                        j += 1;
                    }
                }
                set
            }
            '\\' => {
                // Only `\PC` ("printable char") appears in our tests.
                assert!(
                    chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C'),
                    "unsupported escape in pattern {pat:?}"
                );
                i += 3;
                (' '..='~').collect()
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional repetition.
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated repeat in pattern {pat:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (a.parse().unwrap(), b.parse().unwrap()),
                None => {
                    let n: usize = body.parse().unwrap();
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let n = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..n {
            out.push(set[rng.below(set.len() as u64) as usize]);
        }
    }
    out
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary + Default + Copy, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::arbitrary(rng);
        }
        out
    }
}

/// Strategy for any value of `T`.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Weighted union over boxed alternatives — the engine behind
/// [`prop_oneof!`].
pub fn union_weighted<T: 'static>(options: Vec<(u32, BoxedStrategy<T>)>) -> BoxedStrategy<T> {
    assert!(!options.is_empty());
    let total: u64 = options.iter().map(|(w, _)| u64::from(*w)).sum();
    assert!(total > 0, "all prop_oneof weights are zero");
    BoxedStrategy::new(move |rng| {
        let mut pick = rng.below(total);
        for (w, s) in &options {
            let w = u64::from(*w);
            if pick < w {
                return s.gen_value(rng);
            }
            pick -= w;
        }
        unreachable!("weight bookkeeping")
    })
}

/// Collection strategies.
pub mod collection {
    use super::{BoxedStrategy, Strategy, TestRng};

    /// Length specification accepted by [`vec()`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        let size = size.into();
        BoxedStrategy::new(move |rng: &mut TestRng| {
            let span = (size.max - size.min + 1) as u64;
            let n = size.min + rng.below(span) as usize;
            (0..n).map(|_| element.gen_value(rng)).collect()
        })
    }
}

/// Index sampling (`proptest::sample`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a not-yet-known-length collection.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Resolve against a concrete length (`len > 0`).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }

        /// Resolve against a slice.
        pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
            &slice[self.index(slice.len())]
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// Per-proptest-block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Override the case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Error type for test-case bodies (`return Ok(())` early exits).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

thread_local! {
    static CURRENT_CASE: Cell<u32> = const { Cell::new(0) };
}

/// Record the case index being run (for failure messages).
pub fn set_current_case(case: u32) {
    CURRENT_CASE.with(|c| c.set(case));
}

/// The case index being run.
pub fn current_case() -> u32 {
    CURRENT_CASE.with(Cell::get)
}

/// Everything a test module needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Assert inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed (case {})", $crate::current_case())
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform or weighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::union_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::union_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over `config.cases` generated
/// inputs with a deterministic, test-name-derived seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($config) $($rest)*);
    };
    (@expand ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                for __case in 0..__config.cases {
                    $crate::set_current_case(__case);
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    let ($($arg,)*) = ($(
                        $crate::Strategy::gen_value(&($strategy), &mut __rng),
                    )*);
                    // The closure is what lets property bodies use `?`
                    // and `return Ok(())` like upstream proptest.
                    #[allow(clippy::redundant_closure_call)]
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = __result {
                        panic!("property `{}` case {} rejected: {e}", stringify!($name), __case);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = crate::TestRng::from_seed(7);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
        }
    }

    #[test]
    fn pattern_generator_respects_classes() {
        let mut rng = crate::TestRng::from_seed(1);
        for _ in 0..200 {
            let s = crate::gen_from_pattern("[a-z_][a-z0-9_]{0,20}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 21);
            let mut cs = s.chars();
            let first = cs.next().unwrap();
            assert!(first.is_ascii_lowercase() || first == '_', "{s}");
            assert!(
                cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{s}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -50i32..50, y in 1u8..7) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((1..7).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(0u32..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn oneof_and_flat_map_compose(
            s in (1usize..4).prop_flat_map(|n| crate::collection::vec(prop_oneof![Just("a"), Just("b")], n))
        ) {
            prop_assert!(!s.is_empty() && s.len() < 4);
            prop_assert!(s.iter().all(|&t| t == "a" || t == "b"));
            // Early return is supported.
            if s.len() == 1 {
                return Ok(());
            }
            prop_assert_ne!(s.len(), 1);
        }
    }
}
