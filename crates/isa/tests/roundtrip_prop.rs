//! Property-based encode/decode round-trip tests for all four ISAs.

use firmup_isa::{arm, mips, ppc, x86};
use proptest::prelude::*;

fn gpr() -> impl Strategy<Value = mips::Gpr> {
    (0u8..32).prop_map(mips::Gpr)
}

fn mips_instr() -> impl Strategy<Value = mips::Instr> {
    use mips::Instr as I;
    prop_oneof![
        (gpr(), gpr(), 0u8..32).prop_map(|(rd, rt, sh)| I::Sll { rd, rt, sh }),
        (gpr(), gpr(), gpr()).prop_map(|(rd, rs, rt)| I::Addu { rd, rs, rt }),
        (gpr(), gpr(), gpr()).prop_map(|(rd, rs, rt)| I::Subu { rd, rs, rt }),
        (gpr(), gpr(), gpr()).prop_map(|(rd, rs, rt)| I::Slt { rd, rs, rt }),
        (gpr(), gpr(), gpr()).prop_map(|(rd, rs, rt)| I::Mul { rd, rs, rt }),
        (gpr(), gpr(), any::<i16>()).prop_map(|(rt, rs, imm)| I::Addiu { rt, rs, imm }),
        (gpr(), gpr(), any::<u16>()).prop_map(|(rt, rs, imm)| I::Ori { rt, rs, imm }),
        (gpr(), any::<u16>()).prop_map(|(rt, imm)| I::Lui { rt, imm }),
        (gpr(), gpr(), any::<i16>()).prop_map(|(rt, base, off)| I::Lw { rt, base, off }),
        (gpr(), gpr(), any::<i16>()).prop_map(|(rt, base, off)| I::Sw { rt, base, off }),
        (gpr(), gpr(), any::<i16>()).prop_map(|(rs, rt, off)| I::Beq { rs, rt, off }),
        (gpr(), gpr(), any::<i16>()).prop_map(|(rs, rt, off)| I::Bne { rs, rt, off }),
        (gpr(), any::<i16>()).prop_map(|(rs, off)| I::Bltz { rs, off }),
        gpr().prop_map(|rs| I::Jr { rs }),
    ]
}

proptest! {
    #[test]
    fn mips_roundtrip(i in mips_instr()) {
        let mut buf = Vec::new();
        mips::encode(&i, &mut buf);
        let (d, len) = mips::decode(&buf, 0, 0x40_0000).expect("decode");
        prop_assert_eq!(len, 4);
        prop_assert_eq!(d, i);
    }

    #[test]
    fn mips_decoder_never_panics(word in any::<u32>()) {
        let bytes = word.to_le_bytes();
        let _ = mips::decode(&bytes, 0, 0x1000);
    }
}

fn arm_reg() -> impl Strategy<Value = u8> {
    0u8..16
}

fn arm_cond() -> impl Strategy<Value = arm::Cond> {
    prop_oneof![
        Just(arm::Cond::Al),
        Just(arm::Cond::Eq),
        Just(arm::Cond::Ne),
        Just(arm::Cond::Lt),
        Just(arm::Cond::Ge),
        Just(arm::Cond::Hi),
    ]
}

fn arm_op2() -> impl Strategy<Value = arm::Operand2> {
    prop_oneof![
        (0u8..16, any::<u8>()).prop_map(|(rot, imm)| arm::Operand2::Imm { rot, imm }),
        (0u8..16, 0u8..32).prop_map(|(rm, amount)| arm::Operand2::Reg {
            rm,
            shift: arm::Shift::Lsl,
            amount
        }),
        (0u8..16, 1u8..32).prop_map(|(rm, amount)| arm::Operand2::Reg {
            rm,
            shift: arm::Shift::Asr,
            amount
        }),
    ]
}

fn arm_instr() -> impl Strategy<Value = arm::Instr> {
    use arm::Instr as I;
    prop_oneof![
        (arm_cond(), arm_reg(), arm_reg(), arm_op2()).prop_map(|(cond, rn, rd, op2)| I::Dp {
            cond,
            op: arm::DpOp::Add,
            s: false,
            rn,
            rd,
            op2
        }),
        (arm_cond(), arm_reg(), arm_op2()).prop_map(|(cond, rn, op2)| I::Dp {
            cond,
            op: arm::DpOp::Cmp,
            s: true,
            rn,
            rd: 0,
            op2
        }),
        (arm_reg(), any::<u16>()).prop_map(|(rd, imm)| I::Movw {
            cond: arm::Cond::Al,
            rd,
            imm
        }),
        (arm_reg(), any::<u16>()).prop_map(|(rd, imm)| I::Movt {
            cond: arm::Cond::Al,
            rd,
            imm
        }),
        (
            arm_reg(),
            arm_reg(),
            0u16..0x1000,
            any::<bool>(),
            any::<bool>()
        )
            .prop_map(|(rd, rn, off, up, byte)| I::Ldr {
                cond: arm::Cond::Al,
                byte,
                rd,
                rn,
                up,
                off
            }),
        (
            arm_reg(),
            arm_reg(),
            0u16..0x1000,
            any::<bool>(),
            any::<bool>()
        )
            .prop_map(|(rd, rn, off, up, byte)| I::Str {
                cond: arm::Cond::Al,
                byte,
                rd,
                rn,
                up,
                off
            }),
        (arm_cond(), -0x80_0000i32..0x7f_ffff).prop_map(|(cond, off)| I::B { cond, off }),
        (-0x80_0000i32..0x7f_ffff).prop_map(|off| I::Bl {
            cond: arm::Cond::Al,
            off
        }),
        arm_reg().prop_map(|rm| I::Bx {
            cond: arm::Cond::Al,
            rm
        }),
    ]
}

proptest! {
    #[test]
    fn arm_roundtrip(i in arm_instr()) {
        let mut buf = Vec::new();
        arm::encode(&i, &mut buf);
        let (d, len) = arm::decode(&buf, 0, 0x8000).expect("decode");
        prop_assert_eq!(len, 4);
        prop_assert_eq!(d, i);
    }

    #[test]
    fn arm_decoder_never_panics(word in any::<u32>()) {
        let bytes = word.to_le_bytes();
        let _ = arm::decode(&bytes, 0, 0x1000);
    }
}

fn ppc_reg() -> impl Strategy<Value = u8> {
    0u8..32
}

fn ppc_instr() -> impl Strategy<Value = ppc::Instr> {
    use ppc::Instr as I;
    prop_oneof![
        (ppc_reg(), ppc_reg(), any::<i16>()).prop_map(|(rt, ra, si)| I::Addi { rt, ra, si }),
        (ppc_reg(), ppc_reg(), any::<i16>()).prop_map(|(rt, ra, si)| I::Addis { rt, ra, si }),
        (ppc_reg(), ppc_reg(), any::<u16>()).prop_map(|(ra, rs, ui)| I::Ori { ra, rs, ui }),
        (ppc_reg(), ppc_reg(), ppc_reg()).prop_map(|(rt, ra, rb)| I::Add { rt, ra, rb }),
        (ppc_reg(), ppc_reg(), ppc_reg()).prop_map(|(rt, ra, rb)| I::Subf { rt, ra, rb }),
        (ppc_reg(), ppc_reg(), ppc_reg()).prop_map(|(rt, ra, rb)| I::Mullw { rt, ra, rb }),
        (ppc_reg(), any::<i16>()).prop_map(|(ra, si)| I::Cmpwi { ra, si }),
        (ppc_reg(), ppc_reg(), any::<i16>()).prop_map(|(rt, ra, d)| I::Lwz { rt, ra, d }),
        (ppc_reg(), ppc_reg(), any::<i16>()).prop_map(|(rs, ra, d)| I::Stw { rs, ra, d }),
        ((-0x100_0000i32 / 4..0xff_ffff / 4), any::<bool>())
            .prop_map(|(w, lk)| I::B { off: w * 4, lk }),
        ((-0x4000i16..0x3fff), any::<bool>()).prop_map(|(w, set)| I::Bc {
            cond: if set {
                ppc::BranchIf::Set(ppc::CrBit::Eq)
            } else {
                ppc::BranchIf::Clear(ppc::CrBit::Lt)
            },
            bd: w & !3,
        }),
        ppc_reg().prop_map(|rt| I::Mflr { rt }),
        Just(I::Blr),
    ]
}

proptest! {
    #[test]
    fn ppc_roundtrip(i in ppc_instr()) {
        let mut buf = Vec::new();
        ppc::encode(&i, &mut buf);
        let (d, len) = ppc::decode(&buf, 0, 0x1000_0000).expect("decode");
        prop_assert_eq!(len, 4);
        prop_assert_eq!(d, i);
    }

    #[test]
    fn ppc_decoder_never_panics(word in any::<u32>()) {
        let bytes = word.to_le_bytes();
        let _ = ppc::decode(&bytes, 0, 0x1000);
    }
}

fn x86_reg() -> impl Strategy<Value = u8> {
    0u8..8
}

fn x86_mem() -> impl Strategy<Value = x86::Mem> {
    prop_oneof![
        (x86_reg(), any::<i32>()).prop_map(|(b, d)| x86::Mem::base_disp(b, d)),
        any::<u32>().prop_map(x86::Mem::abs),
    ]
}

fn x86_alu() -> impl Strategy<Value = x86::AluOp> {
    prop_oneof![
        Just(x86::AluOp::Add),
        Just(x86::AluOp::Sub),
        Just(x86::AluOp::And),
        Just(x86::AluOp::Or),
        Just(x86::AluOp::Xor),
        Just(x86::AluOp::Cmp),
    ]
}

fn x86_instr() -> impl Strategy<Value = x86::Instr> {
    use x86::Instr as I;
    prop_oneof![
        (x86_reg(), any::<u32>()).prop_map(|(dst, imm)| I::MovRI { dst, imm }),
        (x86_reg(), x86_reg()).prop_map(|(dst, src)| I::MovRR { dst, src }),
        (x86_reg(), x86_mem()).prop_map(|(dst, mem)| I::Load { dst, mem }),
        (x86_mem(), x86_reg()).prop_map(|(mem, src)| I::Store { mem, src }),
        (0u8..4, x86_mem()).prop_map(|(src, mem)| I::Store8 { mem, src }),
        (x86_alu(), x86_reg(), x86_reg()).prop_map(|(op, dst, src)| I::AluRR { op, dst, src }),
        (x86_alu(), x86_reg(), any::<u32>()).prop_map(|(op, dst, imm)| I::AluRI { op, dst, imm }),
        (x86_alu(), x86_reg(), x86_mem()).prop_map(|(op, dst, mem)| I::AluRM { op, dst, mem }),
        (x86_reg(), x86_mem()).prop_map(|(dst, mem)| I::Lea { dst, mem }),
        x86_reg().prop_map(|src| I::Push { src }),
        x86_reg().prop_map(|dst| I::Pop { dst }),
        any::<i32>().prop_map(|rel| I::CallRel { rel }),
        any::<i32>().prop_map(|rel| I::JmpRel { rel }),
        (any::<i32>()).prop_map(|rel| I::Jcc {
            cc: x86::Cc::Ne,
            rel
        }),
        Just(I::Ret),
        Just(I::Nop),
    ]
}

proptest! {
    #[test]
    fn x86_roundtrip(i in x86_instr()) {
        let mut buf = Vec::new();
        let len = x86::encode(&i, &mut buf);
        let (d, dlen) = x86::decode(&buf, 0, 0x0804_8000).expect("decode");
        prop_assert_eq!(dlen, len);
        prop_assert_eq!(d, i);
    }

    #[test]
    fn x86_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 1..16)) {
        let _ = x86::decode(&bytes, 0, 0x1000);
    }

    /// Decoding a stream of encoded instructions resynchronizes exactly.
    #[test]
    fn x86_stream_decode(instrs in proptest::collection::vec(x86_instr(), 1..20)) {
        let mut buf = Vec::new();
        let mut lens = Vec::new();
        for i in &instrs {
            lens.push(x86::encode(i, &mut buf));
        }
        let mut off = 0usize;
        for (i, len) in instrs.iter().zip(&lens) {
            let (d, dlen) = x86::decode(&buf, off, off as u32).expect("stream decode");
            prop_assert_eq!(&d, i);
            prop_assert_eq!(dlen, *len);
            off += dlen as usize;
        }
    }
}
