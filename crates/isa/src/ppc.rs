//! PowerPC 32-bit subset: encoder, decoder and lifter.
//!
//! Fixed four-byte instructions. Comparison results live in the
//! condition-register field CR0 (LT/GT/EQ bits), which conditional
//! branches test — a different flag discipline from both ARM and x86,
//! giving the canonicalizer real cross-architecture variance to dissolve.

use std::fmt;

use firmup_ir::{BinOp, Expr, Jump, RegId, Stmt, Width};

use crate::common::{Control, DecodeError, Decoded, LiftCtx};

/// Stack pointer (`r1` by PPC convention).
pub const SP: u8 = 1;
/// IR register id of the link register.
pub const LR: RegId = RegId(32);
/// IR register id of CR0's LT bit.
pub const CR0_LT: RegId = RegId(34);
/// IR register id of CR0's GT bit.
pub const CR0_GT: RegId = RegId(35);
/// IR register id of CR0's EQ bit.
pub const CR0_EQ: RegId = RegId(36);

/// Name of an IR register id, for diagnostics.
pub fn reg_name(r: RegId) -> String {
    match r.0 {
        32 => "lr".into(),
        33 => "ctr".into(),
        34 => "cr0.lt".into(),
        35 => "cr0.gt".into(),
        36 => "cr0.eq".into(),
        n if n < 32 => format!("r{n}"),
        n => format!("?{n}"),
    }
}

/// Branch condition tested by `bc` (a view of the BO/BI fields restricted
/// to CR0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchIf {
    /// BO=12: branch if the CR bit is set.
    Set(CrBit),
    /// BO=4: branch if the CR bit is clear.
    Clear(CrBit),
}

/// A CR0 bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CrBit {
    Lt = 0,
    Gt = 1,
    Eq = 2,
}

impl CrBit {
    fn from_bi(bi: u32) -> Option<CrBit> {
        match bi {
            0 => Some(CrBit::Lt),
            1 => Some(CrBit::Gt),
            2 => Some(CrBit::Eq),
            _ => None,
        }
    }

    fn reg(self) -> RegId {
        match self {
            CrBit::Lt => CR0_LT,
            CrBit::Gt => CR0_GT,
            CrBit::Eq => CR0_EQ,
        }
    }

    fn name(self) -> &'static str {
        match self {
            CrBit::Lt => "lt",
            CrBit::Gt => "gt",
            CrBit::Eq => "eq",
        }
    }
}

/// Our PPC32 instruction subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Instr {
    Addi { rt: u8, ra: u8, si: i16 },
    Addis { rt: u8, ra: u8, si: i16 },
    Ori { ra: u8, rs: u8, ui: u16 },
    AndiDot { ra: u8, rs: u8, ui: u16 },
    Xori { ra: u8, rs: u8, ui: u16 },
    Add { rt: u8, ra: u8, rb: u8 },
    Subf { rt: u8, ra: u8, rb: u8 },
    And { ra: u8, rs: u8, rb: u8 },
    Or { ra: u8, rs: u8, rb: u8 },
    Xor { ra: u8, rs: u8, rb: u8 },
    Slw { ra: u8, rs: u8, rb: u8 },
    Srw { ra: u8, rs: u8, rb: u8 },
    Sraw { ra: u8, rs: u8, rb: u8 },
    Mullw { rt: u8, ra: u8, rb: u8 },
    Cmpwi { ra: u8, si: i16 },
    Cmplwi { ra: u8, ui: u16 },
    Cmpw { ra: u8, rb: u8 },
    Cmplw { ra: u8, rb: u8 },
    Lwz { rt: u8, ra: u8, d: i16 },
    Lbz { rt: u8, ra: u8, d: i16 },
    Stw { rs: u8, ra: u8, d: i16 },
    Stb { rs: u8, ra: u8, d: i16 },
    B { off: i32, lk: bool },
    Bc { cond: BranchIf, bd: i16 },
    Blr,
    Mflr { rt: u8 },
    Mtlr { rs: u8 },
}

fn d_form(op: u32, a: u8, b: u8, imm: u16) -> u32 {
    (op << 26) | (u32::from(a) << 21) | (u32::from(b) << 16) | u32::from(imm)
}

fn x_form(a: u8, b: u8, c: u8, xo: u32, rc: u32) -> u32 {
    (31 << 26) | (u32::from(a) << 21) | (u32::from(b) << 16) | (u32::from(c) << 11) | (xo << 1) | rc
}

/// Encode one instruction to its 32-bit word.
pub fn encode_word(i: &Instr) -> u32 {
    use Instr::*;
    match *i {
        Addi { rt, ra, si } => d_form(14, rt, ra, si as u16),
        Addis { rt, ra, si } => d_form(15, rt, ra, si as u16),
        Ori { ra, rs, ui } => d_form(24, rs, ra, ui),
        AndiDot { ra, rs, ui } => d_form(28, rs, ra, ui),
        Xori { ra, rs, ui } => d_form(26, rs, ra, ui),
        Add { rt, ra, rb } => x_form(rt, ra, rb, 266, 0),
        Subf { rt, ra, rb } => x_form(rt, ra, rb, 40, 0),
        And { ra, rs, rb } => x_form(rs, ra, rb, 28, 0),
        Or { ra, rs, rb } => x_form(rs, ra, rb, 444, 0),
        Xor { ra, rs, rb } => x_form(rs, ra, rb, 316, 0),
        Slw { ra, rs, rb } => x_form(rs, ra, rb, 24, 0),
        Srw { ra, rs, rb } => x_form(rs, ra, rb, 536, 0),
        Sraw { ra, rs, rb } => x_form(rs, ra, rb, 792, 0),
        Mullw { rt, ra, rb } => x_form(rt, ra, rb, 235, 0),
        Cmpwi { ra, si } => d_form(11, 0, ra, si as u16),
        Cmplwi { ra, ui } => d_form(10, 0, ra, ui),
        Cmpw { ra, rb } => x_form(0, ra, rb, 0, 0),
        Cmplw { ra, rb } => x_form(0, ra, rb, 32, 0),
        Lwz { rt, ra, d } => d_form(32, rt, ra, d as u16),
        Lbz { rt, ra, d } => d_form(34, rt, ra, d as u16),
        Stw { rs, ra, d } => d_form(36, rs, ra, d as u16),
        Stb { rs, ra, d } => d_form(38, rs, ra, d as u16),
        B { off, lk } => (18 << 26) | ((off as u32) & 0x03ff_fffc) | u32::from(lk),
        Bc { cond, bd } => {
            let (bo, bi) = match cond {
                BranchIf::Set(bit) => (12u32, bit as u32),
                BranchIf::Clear(bit) => (4u32, bit as u32),
            };
            (16 << 26) | (bo << 21) | (bi << 16) | ((bd as u16 as u32) & 0xfffc)
        }
        Blr => (19 << 26) | (20 << 21) | (16 << 1),
        Mflr { rt } => x_form(rt, 8, 0, 339, 0),
        Mtlr { rs } => x_form(rs, 8, 0, 467, 0),
    }
}

/// Append the little-endian encoding of `i` to `buf`.
pub fn encode(i: &Instr, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&encode_word(i).to_le_bytes());
}

/// Decode the instruction at `bytes[offset..]`, located at `addr`.
///
/// # Errors
///
/// [`DecodeError::Truncated`] / [`DecodeError::Unknown`].
pub fn decode(bytes: &[u8], offset: usize, addr: u32) -> Result<(Instr, u32), DecodeError> {
    let chunk = bytes
        .get(offset..offset + 4)
        .ok_or(DecodeError::Truncated { addr })?;
    let w = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    let unknown = DecodeError::Unknown { addr, word: w };
    let op = w >> 26;
    let a = ((w >> 21) & 31) as u8;
    let b = ((w >> 16) & 31) as u8;
    let c = ((w >> 11) & 31) as u8;
    let imm = (w & 0xffff) as u16;
    let simm = imm as i16;
    use Instr::*;
    let i = match op {
        14 => Addi {
            rt: a,
            ra: b,
            si: simm,
        },
        15 => Addis {
            rt: a,
            ra: b,
            si: simm,
        },
        24 => Ori {
            rs: a,
            ra: b,
            ui: imm,
        },
        28 => AndiDot {
            rs: a,
            ra: b,
            ui: imm,
        },
        26 => Xori {
            rs: a,
            ra: b,
            ui: imm,
        },
        11 => {
            if a != 0 {
                return Err(unknown);
            }
            Cmpwi { ra: b, si: simm }
        }
        10 => {
            if a != 0 {
                return Err(unknown);
            }
            Cmplwi { ra: b, ui: imm }
        }
        32 => Lwz {
            rt: a,
            ra: b,
            d: simm,
        },
        34 => Lbz {
            rt: a,
            ra: b,
            d: simm,
        },
        36 => Stw {
            rs: a,
            ra: b,
            d: simm,
        },
        38 => Stb {
            rs: a,
            ra: b,
            d: simm,
        },
        18 => {
            if w & 2 != 0 {
                return Err(unknown); // absolute addressing unused
            }
            let off = (((w & 0x03ff_fffc) << 6) as i32) >> 6;
            B {
                off,
                lk: w & 1 == 1,
            }
        }
        16 => {
            if w & 3 != 0 {
                return Err(unknown);
            }
            let bo = u32::from(a);
            let bit = CrBit::from_bi(u32::from(b)).ok_or_else(|| unknown.clone())?;
            let cond = match bo {
                12 => BranchIf::Set(bit),
                4 => BranchIf::Clear(bit),
                _ => return Err(unknown),
            };
            Bc {
                cond,
                bd: (imm & 0xfffc) as i16,
            }
        }
        19 if a == 20 && (w >> 1) & 0x3ff == 16 => Blr,
        31 => {
            let xo = (w >> 1) & 0x3ff;
            match xo {
                266 => Add {
                    rt: a,
                    ra: b,
                    rb: c,
                },
                40 => Subf {
                    rt: a,
                    ra: b,
                    rb: c,
                },
                28 => And {
                    rs: a,
                    ra: b,
                    rb: c,
                },
                444 => Or {
                    rs: a,
                    ra: b,
                    rb: c,
                },
                316 => Xor {
                    rs: a,
                    ra: b,
                    rb: c,
                },
                24 => Slw {
                    rs: a,
                    ra: b,
                    rb: c,
                },
                536 => Srw {
                    rs: a,
                    ra: b,
                    rb: c,
                },
                792 => Sraw {
                    rs: a,
                    ra: b,
                    rb: c,
                },
                235 => Mullw {
                    rt: a,
                    ra: b,
                    rb: c,
                },
                0 => {
                    if a != 0 {
                        return Err(unknown);
                    }
                    Cmpw { ra: b, rb: c }
                }
                32 => {
                    if a != 0 {
                        return Err(unknown);
                    }
                    Cmplw { ra: b, rb: c }
                }
                339 => {
                    if b != 8 || c != 0 {
                        return Err(unknown);
                    }
                    Mflr { rt: a }
                }
                467 => {
                    if b != 8 || c != 0 {
                        return Err(unknown);
                    }
                    Mtlr { rs: a }
                }
                _ => return Err(unknown),
            }
        }
        _ => return Err(unknown),
    };
    Ok((i, 4))
}

/// Control-flow classification.
pub fn control(i: &Instr, addr: u32) -> Control {
    use Instr::*;
    match *i {
        B { off, lk: false } => Control::Jump(addr.wrapping_add(off as u32)),
        B { off, lk: true } => Control::Call(addr.wrapping_add(off as u32)),
        Bc { bd, .. } => Control::CondJump(addr.wrapping_add(bd as i32 as u32)),
        Blr => Control::Ret,
        _ => Control::Fall,
    }
}

/// Disassembly text.
pub fn asm(i: &Instr, addr: u32) -> String {
    use Instr::*;
    match *i {
        Addi { rt, ra: 0, si } => format!("li r{rt}, {si}"),
        Addi { rt, ra, si } => format!("addi r{rt}, r{ra}, {si}"),
        Addis { rt, ra: 0, si } => format!("lis r{rt}, {si}"),
        Addis { rt, ra, si } => format!("addis r{rt}, r{ra}, {si}"),
        Ori { ra, rs, ui } => {
            if ra == rs && ui == 0 {
                "nop".into()
            } else {
                format!("ori r{ra}, r{rs}, {ui:#x}")
            }
        }
        AndiDot { ra, rs, ui } => format!("andi. r{ra}, r{rs}, {ui:#x}"),
        Xori { ra, rs, ui } => format!("xori r{ra}, r{rs}, {ui:#x}"),
        Add { rt, ra, rb } => format!("add r{rt}, r{ra}, r{rb}"),
        Subf { rt, ra, rb } => format!("subf r{rt}, r{ra}, r{rb}"),
        And { ra, rs, rb } => format!("and r{ra}, r{rs}, r{rb}"),
        Or { ra, rs, rb } => {
            if rs == rb {
                format!("mr r{ra}, r{rs}")
            } else {
                format!("or r{ra}, r{rs}, r{rb}")
            }
        }
        Xor { ra, rs, rb } => format!("xor r{ra}, r{rs}, r{rb}"),
        Slw { ra, rs, rb } => format!("slw r{ra}, r{rs}, r{rb}"),
        Srw { ra, rs, rb } => format!("srw r{ra}, r{rs}, r{rb}"),
        Sraw { ra, rs, rb } => format!("sraw r{ra}, r{rs}, r{rb}"),
        Mullw { rt, ra, rb } => format!("mullw r{rt}, r{ra}, r{rb}"),
        Cmpwi { ra, si } => format!("cmpwi r{ra}, {si}"),
        Cmplwi { ra, ui } => format!("cmplwi r{ra}, {ui}"),
        Cmpw { ra, rb } => format!("cmpw r{ra}, r{rb}"),
        Cmplw { ra, rb } => format!("cmplw r{ra}, r{rb}"),
        Lwz { rt, ra, d } => format!("lwz r{rt}, {d}(r{ra})"),
        Lbz { rt, ra, d } => format!("lbz r{rt}, {d}(r{ra})"),
        Stw { rs, ra, d } => format!("stw r{rs}, {d}(r{ra})"),
        Stb { rs, ra, d } => format!("stb r{rs}, {d}(r{ra})"),
        B { off, lk } => format!(
            "b{} {:#x}",
            if lk { "l" } else { "" },
            addr.wrapping_add(off as u32)
        ),
        Bc { cond, bd } => {
            let t = addr.wrapping_add(bd as i32 as u32);
            match cond {
                BranchIf::Set(bit) => format!("b{} {t:#x}", bit.name()),
                BranchIf::Clear(bit) => format!("bn{} {t:#x}", bit.name()),
            }
        }
        Blr => "blr".into(),
        Mflr { rt } => format!("mflr r{rt}"),
        Mtlr { rs } => format!("mtlr r{rs}"),
    }
}

fn gpr(n: u8) -> Expr {
    Expr::Get(RegId(u16::from(n)))
}

/// Base register in a D-form address: `ra = 0` means literal zero.
fn base(ra: u8) -> Expr {
    if ra == 0 {
        Expr::Const(0)
    } else {
        gpr(ra)
    }
}

fn mem_addr(ra: u8, d: i16) -> Expr {
    if d == 0 {
        base(ra)
    } else {
        Expr::bin(BinOp::Add, base(ra), Expr::Const(d as i32 as u32))
    }
}

fn set_cr0_signed(ctx: &mut LiftCtx, a: Expr, b: Expr) {
    ctx.emit(Stmt::Put(
        CR0_LT,
        Expr::bin(BinOp::CmpLtS, a.clone(), b.clone()),
    ));
    ctx.emit(Stmt::Put(
        CR0_GT,
        Expr::bin(BinOp::CmpLtS, b.clone(), a.clone()),
    ));
    ctx.emit(Stmt::Put(CR0_EQ, Expr::bin(BinOp::CmpEq, a, b)));
}

fn set_cr0_unsigned(ctx: &mut LiftCtx, a: Expr, b: Expr) {
    ctx.emit(Stmt::Put(
        CR0_LT,
        Expr::bin(BinOp::CmpLtU, a.clone(), b.clone()),
    ));
    ctx.emit(Stmt::Put(
        CR0_GT,
        Expr::bin(BinOp::CmpLtU, b.clone(), a.clone()),
    ));
    ctx.emit(Stmt::Put(CR0_EQ, Expr::bin(BinOp::CmpEq, a, b)));
}

/// Lift one instruction into `ctx`.
pub fn lift(i: &Instr, addr: u32, ctx: &mut LiftCtx) {
    use Instr::*;
    let next = addr.wrapping_add(4);
    let put = |ctx: &mut LiftCtx, r: u8, e: Expr| ctx.emit(Stmt::Put(RegId(u16::from(r)), e));
    match *i {
        Addi { rt, ra, si } => {
            let c = Expr::Const(si as i32 as u32);
            let e = if ra == 0 {
                c
            } else {
                Expr::bin(BinOp::Add, gpr(ra), c)
            };
            put(ctx, rt, e);
        }
        Addis { rt, ra, si } => {
            let c = Expr::Const((si as i32 as u32) << 16);
            let e = if ra == 0 {
                c
            } else {
                Expr::bin(BinOp::Add, gpr(ra), c)
            };
            put(ctx, rt, e);
        }
        Ori { ra, rs, ui } => {
            if ra == rs && ui == 0 {
                return; // canonical nop
            }
            put(
                ctx,
                ra,
                Expr::bin(BinOp::Or, gpr(rs), Expr::Const(u32::from(ui))),
            );
        }
        AndiDot { ra, rs, ui } => {
            let res = ctx.bind(Expr::bin(BinOp::And, gpr(rs), Expr::Const(u32::from(ui))));
            put(ctx, ra, res.clone());
            set_cr0_signed(ctx, res, Expr::Const(0));
        }
        Xori { ra, rs, ui } => put(
            ctx,
            ra,
            Expr::bin(BinOp::Xor, gpr(rs), Expr::Const(u32::from(ui))),
        ),
        Add { rt, ra, rb } => put(ctx, rt, Expr::bin(BinOp::Add, gpr(ra), gpr(rb))),
        Subf { rt, ra, rb } => put(ctx, rt, Expr::bin(BinOp::Sub, gpr(rb), gpr(ra))),
        And { ra, rs, rb } => put(ctx, ra, Expr::bin(BinOp::And, gpr(rs), gpr(rb))),
        Or { ra, rs, rb } => put(ctx, ra, Expr::bin(BinOp::Or, gpr(rs), gpr(rb))),
        Xor { ra, rs, rb } => put(ctx, ra, Expr::bin(BinOp::Xor, gpr(rs), gpr(rb))),
        Slw { ra, rs, rb } => put(ctx, ra, Expr::bin(BinOp::Shl, gpr(rs), gpr(rb))),
        Srw { ra, rs, rb } => put(ctx, ra, Expr::bin(BinOp::Shr, gpr(rs), gpr(rb))),
        Sraw { ra, rs, rb } => put(ctx, ra, Expr::bin(BinOp::Sar, gpr(rs), gpr(rb))),
        Mullw { rt, ra, rb } => put(ctx, rt, Expr::bin(BinOp::Mul, gpr(ra), gpr(rb))),
        Cmpwi { ra, si } => set_cr0_signed(ctx, gpr(ra), Expr::Const(si as i32 as u32)),
        Cmplwi { ra, ui } => set_cr0_unsigned(ctx, gpr(ra), Expr::Const(u32::from(ui))),
        Cmpw { ra, rb } => set_cr0_signed(ctx, gpr(ra), gpr(rb)),
        Cmplw { ra, rb } => set_cr0_unsigned(ctx, gpr(ra), gpr(rb)),
        Lwz { rt, ra, d } => put(ctx, rt, Expr::load(mem_addr(ra, d), Width::W32)),
        Lbz { rt, ra, d } => put(ctx, rt, Expr::load(mem_addr(ra, d), Width::W8)),
        Stw { rs, ra, d } => ctx.emit(Stmt::Store {
            addr: mem_addr(ra, d),
            value: gpr(rs),
            width: Width::W32,
        }),
        Stb { rs, ra, d } => ctx.emit(Stmt::Store {
            addr: mem_addr(ra, d),
            value: gpr(rs),
            width: Width::W8,
        }),
        B { off, lk } => {
            let target = addr.wrapping_add(off as u32);
            if lk {
                ctx.emit(Stmt::Put(LR, Expr::Const(next)));
                ctx.terminate(Jump::Call {
                    target: firmup_ir::CallTarget::Direct(target),
                    return_to: next,
                });
            } else {
                ctx.terminate(Jump::Direct(target));
            }
        }
        Bc { cond, bd } => {
            let target = addr.wrapping_add(bd as i32 as u32);
            let c = match cond {
                BranchIf::Set(bit) => Expr::Get(bit.reg()),
                BranchIf::Clear(bit) => {
                    Expr::bin(BinOp::CmpEq, Expr::Get(bit.reg()), Expr::Const(0))
                }
            };
            ctx.emit(Stmt::Exit { cond: c, target });
            ctx.terminate(Jump::Fall(next));
        }
        Blr => ctx.terminate(Jump::Ret),
        Mflr { rt } => put(ctx, rt, Expr::Get(LR)),
        Mtlr { rs } => ctx.emit(Stmt::Put(LR, gpr(rs))),
    }
}

/// Decode and lift one instruction, appending statements to `ctx`.
///
/// # Errors
///
/// Propagates decode errors.
pub fn lift_into(
    bytes: &[u8],
    offset: usize,
    addr: u32,
    ctx: &mut LiftCtx,
) -> Result<Decoded, DecodeError> {
    let (i, len) = decode(bytes, offset, addr)?;
    let ctrl = control(&i, addr);
    lift(&i, addr, ctx);
    Ok(Decoded {
        len,
        asm: asm(&i, addr),
        ctrl,
        delay_slot: false,
    })
}

/// Decode one instruction without lifting.
///
/// # Errors
///
/// Propagates decode errors.
pub fn decode_info(bytes: &[u8], offset: usize, addr: u32) -> Result<Decoded, DecodeError> {
    let (i, len) = decode(bytes, offset, addr)?;
    Ok(Decoded {
        len,
        asm: asm(&i, addr),
        ctrl: control(&i, addr),
        delay_slot: false,
    })
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&asm(self, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmup_ir::Machine;

    fn rt(i: Instr) {
        let mut buf = Vec::new();
        encode(&i, &mut buf);
        let (d, len) = decode(&buf, 0, 0x1000).expect("decode");
        assert_eq!(len, 4);
        assert_eq!(d, i);
    }

    #[test]
    fn encode_decode_roundtrip_all_forms() {
        use Instr::*;
        for i in [
            Addi {
                rt: 3,
                ra: 0,
                si: -1,
            },
            Addis {
                rt: 3,
                ra: 4,
                si: 0x10,
            },
            Ori {
                ra: 3,
                rs: 4,
                ui: 0xbeef,
            },
            AndiDot {
                ra: 3,
                rs: 4,
                ui: 0xff,
            },
            Xori {
                ra: 3,
                rs: 4,
                ui: 1,
            },
            Add {
                rt: 3,
                ra: 4,
                rb: 5,
            },
            Subf {
                rt: 3,
                ra: 4,
                rb: 5,
            },
            And {
                ra: 3,
                rs: 4,
                rb: 5,
            },
            Or {
                ra: 3,
                rs: 4,
                rb: 5,
            },
            Xor {
                ra: 3,
                rs: 4,
                rb: 5,
            },
            Slw {
                ra: 3,
                rs: 4,
                rb: 5,
            },
            Srw {
                ra: 3,
                rs: 4,
                rb: 5,
            },
            Sraw {
                ra: 3,
                rs: 4,
                rb: 5,
            },
            Mullw {
                rt: 3,
                ra: 4,
                rb: 5,
            },
            Cmpwi { ra: 3, si: -5 },
            Cmplwi { ra: 3, ui: 31 },
            Cmpw { ra: 3, rb: 4 },
            Cmplw { ra: 3, rb: 4 },
            Lwz {
                rt: 3,
                ra: SP,
                d: 8,
            },
            Lbz {
                rt: 3,
                ra: 4,
                d: -1,
            },
            Stw {
                rs: 3,
                ra: SP,
                d: 12,
            },
            Stb { rs: 3, ra: 4, d: 0 },
            B {
                off: 0x100,
                lk: false,
            },
            B { off: -8, lk: true },
            Bc {
                cond: BranchIf::Set(CrBit::Eq),
                bd: 16,
            },
            Bc {
                cond: BranchIf::Clear(CrBit::Lt),
                bd: -4,
            },
            Blr,
            Mflr { rt: 0 },
            Mtlr { rs: 0 },
        ] {
            rt(i);
        }
    }

    #[test]
    fn branch_targets_relative_to_instruction() {
        let i = Instr::B {
            off: 0x20,
            lk: false,
        };
        assert_eq!(control(&i, 0x1000), Control::Jump(0x1020));
        let c = Instr::Bc {
            cond: BranchIf::Set(CrBit::Eq),
            bd: -8,
        };
        assert_eq!(control(&c, 0x1000), Control::CondJump(0xff8));
    }

    #[test]
    fn cmpwi_sets_cr0() {
        let mut ctx = LiftCtx::new();
        lift(&Instr::Cmpwi { ra: 3, si: 10 }, 0, &mut ctx);
        let mut m = Machine::new();
        m.set_reg(RegId(3), 7);
        for s in &ctx.stmts {
            m.step(s).unwrap();
        }
        assert_eq!(m.reg(CR0_LT), 1);
        assert_eq!(m.reg(CR0_GT), 0);
        assert_eq!(m.reg(CR0_EQ), 0);
    }

    #[test]
    fn cmplwi_is_unsigned() {
        let mut ctx = LiftCtx::new();
        lift(&Instr::Cmplwi { ra: 3, ui: 10 }, 0, &mut ctx);
        let mut m = Machine::new();
        m.set_reg(RegId(3), 0xffff_ffff);
        for s in &ctx.stmts {
            m.step(s).unwrap();
        }
        assert_eq!(m.reg(CR0_LT), 0, "u32::MAX is not < 10 unsigned");
        assert_eq!(m.reg(CR0_GT), 1);
    }

    #[test]
    fn subf_operand_order() {
        let mut ctx = LiftCtx::new();
        lift(
            &Instr::Subf {
                rt: 3,
                ra: 4,
                rb: 5,
            },
            0,
            &mut ctx,
        );
        let mut m = Machine::new();
        m.set_reg(RegId(4), 10);
        m.set_reg(RegId(5), 30);
        for s in &ctx.stmts {
            m.step(s).unwrap();
        }
        assert_eq!(m.reg(RegId(3)), 20, "subf rt = rb - ra");
    }

    #[test]
    fn li_uses_literal_zero_base() {
        let mut ctx = LiftCtx::new();
        lift(
            &Instr::Addi {
                rt: 3,
                ra: 0,
                si: -7,
            },
            0,
            &mut ctx,
        );
        assert_eq!(
            ctx.stmts[0],
            Stmt::Put(RegId(3), Expr::Const((-7i32) as u32))
        );
    }

    #[test]
    fn bl_sets_lr_and_calls() {
        let mut ctx = LiftCtx::new();
        lift(
            &Instr::B {
                off: 0x40,
                lk: true,
            },
            0x1000,
            &mut ctx,
        );
        assert_eq!(ctx.stmts[0], Stmt::Put(LR, Expr::Const(0x1004)));
        assert!(matches!(
            ctx.jump,
            Some(Jump::Call {
                return_to: 0x1004,
                ..
            })
        ));
    }

    #[test]
    fn bc_lifts_exit_on_cr_bit() {
        let mut ctx = LiftCtx::new();
        lift(
            &Instr::Bc {
                cond: BranchIf::Clear(CrBit::Eq),
                bd: 0x10,
            },
            0x1000,
            &mut ctx,
        );
        assert!(matches!(ctx.stmts[0], Stmt::Exit { target: 0x1010, .. }));
        assert_eq!(ctx.jump, Some(Jump::Fall(0x1004)));
    }

    #[test]
    fn unknown_opcodes_rejected() {
        let w = (63u32 << 26).to_le_bytes();
        assert!(decode(&w, 0, 0).is_err());
        let w2 = ((31u32 << 26) | (999 << 1)).to_le_bytes();
        assert!(decode(&w2, 0, 0).is_err());
    }

    #[test]
    fn asm_aliases() {
        assert_eq!(
            asm(
                &Instr::Addi {
                    rt: 3,
                    ra: 0,
                    si: 5
                },
                0
            ),
            "li r3, 5"
        );
        assert_eq!(
            asm(
                &Instr::Or {
                    ra: 3,
                    rs: 4,
                    rb: 4
                },
                0
            ),
            "mr r3, r4"
        );
        assert_eq!(
            asm(
                &Instr::Ori {
                    ra: 0,
                    rs: 0,
                    ui: 0
                },
                0
            ),
            "nop"
        );
    }

    #[test]
    fn mflr_mtlr_roundtrip_lr() {
        let mut ctx = LiftCtx::new();
        lift(&Instr::Mtlr { rs: 0 }, 0, &mut ctx);
        lift(&Instr::Mflr { rt: 5 }, 4, &mut ctx);
        let mut m = Machine::new();
        m.set_reg(RegId(0), 0x4242);
        for s in &ctx.stmts {
            m.step(s).unwrap();
        }
        assert_eq!(m.reg(RegId(5)), 0x4242);
    }
}
