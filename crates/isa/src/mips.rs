//! MIPS32 subset: encoder, decoder and lifter.
//!
//! Fixed four-byte instructions. Branches and jumps have a **delay
//! slot** — the instruction following a branch executes before control
//! transfers. The paper (§3.1) singles this out as a lifting caveat
//! ("this results in the first instruction of the subsequent block being
//! omitted from it and placed as part of the preceding block, which leads
//! to strand discrepancy"); the block builder in `firmup-core` handles it
//! by folding the delay instruction into the branch's block.

use std::fmt;

use firmup_ir::{BinOp, Expr, Jump, RegId, Stmt, UnOp, Width};

use crate::common::{Control, DecodeError, Decoded, LiftCtx};

/// A MIPS general-purpose register (`$0`–`$31`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Gpr(pub u8);

/// Conventional MIPS register names, indexed by number.
pub const REG_NAMES: [&str; 32] = [
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3", "t0", "t1", "t2", "t3", "t4", "t5", "t6",
    "t7", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "t8", "t9", "k0", "k1", "gp", "sp", "fp",
    "ra",
];

/// Stack pointer (`$sp`).
pub const SP: Gpr = Gpr(29);
/// Return-address register (`$ra`).
pub const RA: Gpr = Gpr(31);
/// Return-value register (`$v0`).
pub const V0: Gpr = Gpr(2);
/// First argument register (`$a0`).
pub const A0: Gpr = Gpr(4);

impl Gpr {
    /// The IR register id for this GPR.
    pub fn reg_id(self) -> RegId {
        RegId(u16::from(self.0))
    }

    /// Conventional name.
    pub fn name(self) -> &'static str {
        REG_NAMES[self.0 as usize]
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.name())
    }
}

/// Name of an IR register id, for diagnostics.
pub fn reg_name(r: RegId) -> String {
    if (r.0 as usize) < 32 {
        format!("${}", REG_NAMES[r.0 as usize])
    } else {
        format!("$?{}", r.0)
    }
}

/// Our MIPS32 instruction subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variants mirror the MIPS mnemonics directly
pub enum Instr {
    Sll { rd: Gpr, rt: Gpr, sh: u8 },
    Srl { rd: Gpr, rt: Gpr, sh: u8 },
    Sra { rd: Gpr, rt: Gpr, sh: u8 },
    Sllv { rd: Gpr, rt: Gpr, rs: Gpr },
    Srlv { rd: Gpr, rt: Gpr, rs: Gpr },
    Srav { rd: Gpr, rt: Gpr, rs: Gpr },
    Addu { rd: Gpr, rs: Gpr, rt: Gpr },
    Subu { rd: Gpr, rs: Gpr, rt: Gpr },
    And { rd: Gpr, rs: Gpr, rt: Gpr },
    Or { rd: Gpr, rs: Gpr, rt: Gpr },
    Xor { rd: Gpr, rs: Gpr, rt: Gpr },
    Nor { rd: Gpr, rs: Gpr, rt: Gpr },
    Slt { rd: Gpr, rs: Gpr, rt: Gpr },
    Sltu { rd: Gpr, rs: Gpr, rt: Gpr },
    Mul { rd: Gpr, rs: Gpr, rt: Gpr },
    Addiu { rt: Gpr, rs: Gpr, imm: i16 },
    Slti { rt: Gpr, rs: Gpr, imm: i16 },
    Sltiu { rt: Gpr, rs: Gpr, imm: i16 },
    Andi { rt: Gpr, rs: Gpr, imm: u16 },
    Ori { rt: Gpr, rs: Gpr, imm: u16 },
    Xori { rt: Gpr, rs: Gpr, imm: u16 },
    Lui { rt: Gpr, imm: u16 },
    Lw { rt: Gpr, base: Gpr, off: i16 },
    Lb { rt: Gpr, base: Gpr, off: i16 },
    Lbu { rt: Gpr, base: Gpr, off: i16 },
    Sw { rt: Gpr, base: Gpr, off: i16 },
    Sb { rt: Gpr, base: Gpr, off: i16 },
    Beq { rs: Gpr, rt: Gpr, off: i16 },
    Bne { rs: Gpr, rt: Gpr, off: i16 },
    Blez { rs: Gpr, off: i16 },
    Bgtz { rs: Gpr, off: i16 },
    Bltz { rs: Gpr, off: i16 },
    Bgez { rs: Gpr, off: i16 },
    J { target: u32 },
    Jal { target: u32 },
    Jr { rs: Gpr },
    Jalr { rd: Gpr, rs: Gpr },
}

fn r_type(funct: u32, rs: u8, rt: u8, rd: u8, sh: u8) -> u32 {
    (u32::from(rs) << 21)
        | (u32::from(rt) << 16)
        | (u32::from(rd) << 11)
        | (u32::from(sh) << 6)
        | funct
}

fn i_type(op: u32, rs: u8, rt: u8, imm: u16) -> u32 {
    (op << 26) | (u32::from(rs) << 21) | (u32::from(rt) << 16) | u32::from(imm)
}

/// Encode one instruction to its 32-bit word.
pub fn encode_word(i: &Instr) -> u32 {
    use Instr::*;
    match *i {
        Sll { rd, rt, sh } => r_type(0x00, 0, rt.0, rd.0, sh),
        Srl { rd, rt, sh } => r_type(0x02, 0, rt.0, rd.0, sh),
        Sra { rd, rt, sh } => r_type(0x03, 0, rt.0, rd.0, sh),
        Sllv { rd, rt, rs } => r_type(0x04, rs.0, rt.0, rd.0, 0),
        Srlv { rd, rt, rs } => r_type(0x06, rs.0, rt.0, rd.0, 0),
        Srav { rd, rt, rs } => r_type(0x07, rs.0, rt.0, rd.0, 0),
        Jr { rs } => r_type(0x08, rs.0, 0, 0, 0),
        Jalr { rd, rs } => r_type(0x09, rs.0, 0, rd.0, 0),
        Addu { rd, rs, rt } => r_type(0x21, rs.0, rt.0, rd.0, 0),
        Subu { rd, rs, rt } => r_type(0x23, rs.0, rt.0, rd.0, 0),
        And { rd, rs, rt } => r_type(0x24, rs.0, rt.0, rd.0, 0),
        Or { rd, rs, rt } => r_type(0x25, rs.0, rt.0, rd.0, 0),
        Xor { rd, rs, rt } => r_type(0x26, rs.0, rt.0, rd.0, 0),
        Nor { rd, rs, rt } => r_type(0x27, rs.0, rt.0, rd.0, 0),
        Slt { rd, rs, rt } => r_type(0x2a, rs.0, rt.0, rd.0, 0),
        Sltu { rd, rs, rt } => r_type(0x2b, rs.0, rt.0, rd.0, 0),
        Mul { rd, rs, rt } => (0x1c << 26) | r_type(0x02, rs.0, rt.0, rd.0, 0),
        Addiu { rt, rs, imm } => i_type(0x09, rs.0, rt.0, imm as u16),
        Slti { rt, rs, imm } => i_type(0x0a, rs.0, rt.0, imm as u16),
        Sltiu { rt, rs, imm } => i_type(0x0b, rs.0, rt.0, imm as u16),
        Andi { rt, rs, imm } => i_type(0x0c, rs.0, rt.0, imm),
        Ori { rt, rs, imm } => i_type(0x0d, rs.0, rt.0, imm),
        Xori { rt, rs, imm } => i_type(0x0e, rs.0, rt.0, imm),
        Lui { rt, imm } => i_type(0x0f, 0, rt.0, imm),
        Lw { rt, base, off } => i_type(0x23, base.0, rt.0, off as u16),
        Lb { rt, base, off } => i_type(0x20, base.0, rt.0, off as u16),
        Lbu { rt, base, off } => i_type(0x24, base.0, rt.0, off as u16),
        Sw { rt, base, off } => i_type(0x2b, base.0, rt.0, off as u16),
        Sb { rt, base, off } => i_type(0x28, base.0, rt.0, off as u16),
        Beq { rs, rt, off } => i_type(0x04, rs.0, rt.0, off as u16),
        Bne { rs, rt, off } => i_type(0x05, rs.0, rt.0, off as u16),
        Blez { rs, off } => i_type(0x06, rs.0, 0, off as u16),
        Bgtz { rs, off } => i_type(0x07, rs.0, 0, off as u16),
        Bltz { rs, off } => i_type(0x01, rs.0, 0, off as u16),
        Bgez { rs, off } => i_type(0x01, rs.0, 1, off as u16),
        J { target } => (0x02 << 26) | ((target >> 2) & 0x03ff_ffff),
        Jal { target } => (0x03 << 26) | ((target >> 2) & 0x03ff_ffff),
    }
}

/// Append the little-endian encoding of `i` to `buf`.
pub fn encode(i: &Instr, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&encode_word(i).to_le_bytes());
}

fn gpr(v: u32) -> Gpr {
    Gpr((v & 31) as u8)
}

/// Decode the instruction at `bytes[offset..]`, located at `addr`.
///
/// # Errors
///
/// [`DecodeError::Truncated`] if fewer than four bytes remain;
/// [`DecodeError::Unknown`] for words outside our subset.
pub fn decode(bytes: &[u8], offset: usize, addr: u32) -> Result<(Instr, u32), DecodeError> {
    let chunk = bytes
        .get(offset..offset + 4)
        .ok_or(DecodeError::Truncated { addr })?;
    let w = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    let op = w >> 26;
    let rs = gpr(w >> 21);
    let rt = gpr(w >> 16);
    let rd = gpr(w >> 11);
    let sh = ((w >> 6) & 31) as u8;
    let funct = w & 0x3f;
    let imm = (w & 0xffff) as u16;
    let simm = imm as i16;
    use Instr::*;
    let i = match op {
        0x00 => match funct {
            0x00 => Sll { rd, rt, sh },
            0x02 => Srl { rd, rt, sh },
            0x03 => Sra { rd, rt, sh },
            0x04 => Sllv { rd, rt, rs },
            0x06 => Srlv { rd, rt, rs },
            0x07 => Srav { rd, rt, rs },
            0x08 => Jr { rs },
            0x09 => Jalr { rd, rs },
            0x21 => Addu { rd, rs, rt },
            0x23 => Subu { rd, rs, rt },
            0x24 => And { rd, rs, rt },
            0x25 => Or { rd, rs, rt },
            0x26 => Xor { rd, rs, rt },
            0x27 => Nor { rd, rs, rt },
            0x2a => Slt { rd, rs, rt },
            0x2b => Sltu { rd, rs, rt },
            _ => return Err(DecodeError::Unknown { addr, word: w }),
        },
        0x1c if funct == 0x02 => Mul { rd, rs, rt },
        0x01 => match rt.0 {
            0 => Bltz { rs, off: simm },
            1 => Bgez { rs, off: simm },
            _ => return Err(DecodeError::Unknown { addr, word: w }),
        },
        0x02 => J {
            target: (addr.wrapping_add(4) & 0xf000_0000) | ((w & 0x03ff_ffff) << 2),
        },
        0x03 => Jal {
            target: (addr.wrapping_add(4) & 0xf000_0000) | ((w & 0x03ff_ffff) << 2),
        },
        0x04 => Beq { rs, rt, off: simm },
        0x05 => Bne { rs, rt, off: simm },
        0x06 => Blez { rs, off: simm },
        0x07 => Bgtz { rs, off: simm },
        0x09 => Addiu { rt, rs, imm: simm },
        0x0a => Slti { rt, rs, imm: simm },
        0x0b => Sltiu { rt, rs, imm: simm },
        0x0c => Andi { rt, rs, imm },
        0x0d => Ori { rt, rs, imm },
        0x0e => Xori { rt, rs, imm },
        0x0f => Lui { rt, imm },
        0x20 => Lb {
            rt,
            base: rs,
            off: simm,
        },
        0x23 => Lw {
            rt,
            base: rs,
            off: simm,
        },
        0x24 => Lbu {
            rt,
            base: rs,
            off: simm,
        },
        0x28 => Sb {
            rt,
            base: rs,
            off: simm,
        },
        0x2b => Sw {
            rt,
            base: rs,
            off: simm,
        },
        _ => return Err(DecodeError::Unknown { addr, word: w }),
    };
    Ok((i, 4))
}

fn branch_target(addr: u32, off: i16) -> u32 {
    addr.wrapping_add(4)
        .wrapping_add((i32::from(off) << 2) as u32)
}

/// Control-flow classification.
pub fn control(i: &Instr, addr: u32) -> Control {
    use Instr::*;
    match *i {
        Beq { off, .. }
        | Bne { off, .. }
        | Blez { off, .. }
        | Bgtz { off, .. }
        | Bltz { off, .. }
        | Bgez { off, .. } => Control::CondJump(branch_target(addr, off)),
        J { target } => Control::Jump(target),
        Jal { target } => Control::Call(target),
        Jr { rs } if rs == RA => Control::Ret,
        Jr { .. } => Control::IndirectJump,
        Jalr { .. } => Control::IndirectCall,
        _ => Control::Fall,
    }
}

/// Disassembly text.
pub fn asm(i: &Instr, addr: u32) -> String {
    use Instr::*;
    match *i {
        Sll { rd, rt, sh } if rd.0 == 0 && rt.0 == 0 && sh == 0 => "nop".into(),
        Sll { rd, rt, sh } => format!("sll {rd}, {rt}, {sh}"),
        Srl { rd, rt, sh } => format!("srl {rd}, {rt}, {sh}"),
        Sra { rd, rt, sh } => format!("sra {rd}, {rt}, {sh}"),
        Sllv { rd, rt, rs } => format!("sllv {rd}, {rt}, {rs}"),
        Srlv { rd, rt, rs } => format!("srlv {rd}, {rt}, {rs}"),
        Srav { rd, rt, rs } => format!("srav {rd}, {rt}, {rs}"),
        Addu { rd, rs, rt } if rt.0 == 0 => format!("move {rd}, {rs}"),
        Addu { rd, rs, rt } => format!("addu {rd}, {rs}, {rt}"),
        Subu { rd, rs, rt } => format!("subu {rd}, {rs}, {rt}"),
        And { rd, rs, rt } => format!("and {rd}, {rs}, {rt}"),
        Or { rd, rs, rt } => format!("or {rd}, {rs}, {rt}"),
        Xor { rd, rs, rt } => format!("xor {rd}, {rs}, {rt}"),
        Nor { rd, rs, rt } => format!("nor {rd}, {rs}, {rt}"),
        Slt { rd, rs, rt } => format!("slt {rd}, {rs}, {rt}"),
        Sltu { rd, rs, rt } => format!("sltu {rd}, {rs}, {rt}"),
        Mul { rd, rs, rt } => format!("mul {rd}, {rs}, {rt}"),
        Addiu { rt, rs, imm } if rs.0 == 0 => format!("li {rt}, {imm}"),
        Addiu { rt, rs, imm } => format!("addiu {rt}, {rs}, {imm}"),
        Slti { rt, rs, imm } => format!("slti {rt}, {rs}, {imm}"),
        Sltiu { rt, rs, imm } => format!("sltiu {rt}, {rs}, {imm}"),
        Andi { rt, rs, imm } => format!("andi {rt}, {rs}, {imm:#x}"),
        Ori { rt, rs, imm } => format!("ori {rt}, {rs}, {imm:#x}"),
        Xori { rt, rs, imm } => format!("xori {rt}, {rs}, {imm:#x}"),
        Lui { rt, imm } => format!("lui {rt}, {imm:#x}"),
        Lw { rt, base, off } => format!("lw {rt}, {off}({base})"),
        Lb { rt, base, off } => format!("lb {rt}, {off}({base})"),
        Lbu { rt, base, off } => format!("lbu {rt}, {off}({base})"),
        Sw { rt, base, off } => format!("sw {rt}, {off}({base})"),
        Sb { rt, base, off } => format!("sb {rt}, {off}({base})"),
        Beq { rs, rt, off } => format!("beq {rs}, {rt}, {:#x}", branch_target(addr, off)),
        Bne { rs, rt, off } => format!("bne {rs}, {rt}, {:#x}", branch_target(addr, off)),
        Blez { rs, off } => format!("blez {rs}, {:#x}", branch_target(addr, off)),
        Bgtz { rs, off } => format!("bgtz {rs}, {:#x}", branch_target(addr, off)),
        Bltz { rs, off } => format!("bltz {rs}, {:#x}", branch_target(addr, off)),
        Bgez { rs, off } => format!("bgez {rs}, {:#x}", branch_target(addr, off)),
        J { target } => format!("j {target:#x}"),
        Jal { target } => format!("jal {target:#x}"),
        Jr { rs } => format!("jr {rs}"),
        Jalr { rd, rs } => format!("jalr {rd}, {rs}"),
    }
}

fn get(r: Gpr) -> Expr {
    if r.0 == 0 {
        Expr::Const(0)
    } else {
        Expr::Get(r.reg_id())
    }
}

fn put(ctx: &mut LiftCtx, r: Gpr, e: Expr) {
    if r.0 != 0 {
        // Writes to $zero are architecturally discarded.
        ctx.emit(Stmt::Put(r.reg_id(), e));
    }
}

fn mem_addr(base: Gpr, off: i16) -> Expr {
    if off == 0 {
        get(base)
    } else {
        Expr::bin(BinOp::Add, get(base), Expr::Const(off as i32 as u32))
    }
}

/// Lift one instruction into `ctx`.
///
/// The delay-slot ordering contract: the caller lifts the delay-slot
/// instruction *before* the branch (our compiler never fills a delay slot
/// with an instruction the branch condition depends on, so this ordering
/// is semantics-preserving).
pub fn lift(i: &Instr, addr: u32, ctx: &mut LiftCtx) {
    use Instr::*;
    // Fallthrough for a branch skips the delay slot (addr+8).
    let fall = addr.wrapping_add(8);
    let ret_to = addr.wrapping_add(8);
    match *i {
        Sll { rd, rt, sh } => {
            if rd.0 == 0 && rt.0 == 0 && sh == 0 {
                return; // nop
            }
            put(
                ctx,
                rd,
                Expr::bin(BinOp::Shl, get(rt), Expr::Const(u32::from(sh))),
            );
        }
        Srl { rd, rt, sh } => put(
            ctx,
            rd,
            Expr::bin(BinOp::Shr, get(rt), Expr::Const(u32::from(sh))),
        ),
        Sra { rd, rt, sh } => put(
            ctx,
            rd,
            Expr::bin(BinOp::Sar, get(rt), Expr::Const(u32::from(sh))),
        ),
        Sllv { rd, rt, rs } => put(ctx, rd, Expr::bin(BinOp::Shl, get(rt), get(rs))),
        Srlv { rd, rt, rs } => put(ctx, rd, Expr::bin(BinOp::Shr, get(rt), get(rs))),
        Srav { rd, rt, rs } => put(ctx, rd, Expr::bin(BinOp::Sar, get(rt), get(rs))),
        Addu { rd, rs, rt } => put(ctx, rd, Expr::bin(BinOp::Add, get(rs), get(rt))),
        Subu { rd, rs, rt } => put(ctx, rd, Expr::bin(BinOp::Sub, get(rs), get(rt))),
        And { rd, rs, rt } => put(ctx, rd, Expr::bin(BinOp::And, get(rs), get(rt))),
        Or { rd, rs, rt } => put(ctx, rd, Expr::bin(BinOp::Or, get(rs), get(rt))),
        Xor { rd, rs, rt } => put(ctx, rd, Expr::bin(BinOp::Xor, get(rs), get(rt))),
        Nor { rd, rs, rt } => put(
            ctx,
            rd,
            Expr::un(UnOp::Not, Expr::bin(BinOp::Or, get(rs), get(rt))),
        ),
        Slt { rd, rs, rt } => put(ctx, rd, Expr::bin(BinOp::CmpLtS, get(rs), get(rt))),
        Sltu { rd, rs, rt } => put(ctx, rd, Expr::bin(BinOp::CmpLtU, get(rs), get(rt))),
        Mul { rd, rs, rt } => put(ctx, rd, Expr::bin(BinOp::Mul, get(rs), get(rt))),
        Addiu { rt, rs, imm } => {
            let c = Expr::Const(imm as i32 as u32);
            let e = if rs.0 == 0 {
                c
            } else {
                Expr::bin(BinOp::Add, get(rs), c)
            };
            put(ctx, rt, e);
        }
        Slti { rt, rs, imm } => put(
            ctx,
            rt,
            Expr::bin(BinOp::CmpLtS, get(rs), Expr::Const(imm as i32 as u32)),
        ),
        Sltiu { rt, rs, imm } => put(
            ctx,
            rt,
            Expr::bin(BinOp::CmpLtU, get(rs), Expr::Const(imm as i32 as u32)),
        ),
        Andi { rt, rs, imm } => put(
            ctx,
            rt,
            Expr::bin(BinOp::And, get(rs), Expr::Const(u32::from(imm))),
        ),
        Ori { rt, rs, imm } => {
            let c = Expr::Const(u32::from(imm));
            let e = if rs.0 == 0 {
                c
            } else {
                Expr::bin(BinOp::Or, get(rs), c)
            };
            put(ctx, rt, e);
        }
        Xori { rt, rs, imm } => put(
            ctx,
            rt,
            Expr::bin(BinOp::Xor, get(rs), Expr::Const(u32::from(imm))),
        ),
        Lui { rt, imm } => put(ctx, rt, Expr::Const(u32::from(imm) << 16)),
        Lw { rt, base, off } => put(ctx, rt, Expr::load(mem_addr(base, off), Width::W32)),
        Lb { rt, base, off } => put(
            ctx,
            rt,
            Expr::un(UnOp::Sext8, Expr::load(mem_addr(base, off), Width::W8)),
        ),
        Lbu { rt, base, off } => put(ctx, rt, Expr::load(mem_addr(base, off), Width::W8)),
        Sw { rt, base, off } => ctx.emit(Stmt::Store {
            addr: mem_addr(base, off),
            value: get(rt),
            width: Width::W32,
        }),
        Sb { rt, base, off } => ctx.emit(Stmt::Store {
            addr: mem_addr(base, off),
            value: get(rt),
            width: Width::W8,
        }),
        Beq { rs, rt, off } => {
            ctx.emit(Stmt::Exit {
                cond: Expr::bin(BinOp::CmpEq, get(rs), get(rt)),
                target: branch_target(addr, off),
            });
            ctx.terminate(Jump::Fall(fall));
        }
        Bne { rs, rt, off } => {
            ctx.emit(Stmt::Exit {
                cond: Expr::bin(BinOp::CmpNe, get(rs), get(rt)),
                target: branch_target(addr, off),
            });
            ctx.terminate(Jump::Fall(fall));
        }
        Blez { rs, off } => {
            ctx.emit(Stmt::Exit {
                cond: Expr::bin(BinOp::CmpLeS, get(rs), Expr::Const(0)),
                target: branch_target(addr, off),
            });
            ctx.terminate(Jump::Fall(fall));
        }
        Bgtz { rs, off } => {
            ctx.emit(Stmt::Exit {
                cond: Expr::bin(BinOp::CmpLtS, Expr::Const(0), get(rs)),
                target: branch_target(addr, off),
            });
            ctx.terminate(Jump::Fall(fall));
        }
        Bltz { rs, off } => {
            ctx.emit(Stmt::Exit {
                cond: Expr::bin(BinOp::CmpLtS, get(rs), Expr::Const(0)),
                target: branch_target(addr, off),
            });
            ctx.terminate(Jump::Fall(fall));
        }
        Bgez { rs, off } => {
            ctx.emit(Stmt::Exit {
                cond: Expr::bin(BinOp::CmpLeS, Expr::Const(0), get(rs)),
                target: branch_target(addr, off),
            });
            ctx.terminate(Jump::Fall(fall));
        }
        J { target } => ctx.terminate(Jump::Direct(target)),
        Jal { target } => {
            put(ctx, RA, Expr::Const(ret_to));
            ctx.terminate(Jump::Call {
                target: firmup_ir::CallTarget::Direct(target),
                return_to: ret_to,
            });
        }
        Jr { rs } if rs == RA => ctx.terminate(Jump::Ret),
        Jr { rs } => ctx.terminate(Jump::Indirect(get(rs))),
        Jalr { rd, rs } => {
            put(ctx, rd, Expr::Const(ret_to));
            ctx.terminate(Jump::Call {
                target: firmup_ir::CallTarget::Indirect(get(rs)),
                return_to: ret_to,
            });
        }
    }
}

/// Decode and lift one instruction, appending its statements to `ctx`.
///
/// # Errors
///
/// Propagates decode errors; never fails after a successful decode.
pub fn lift_into(
    bytes: &[u8],
    offset: usize,
    addr: u32,
    ctx: &mut LiftCtx,
) -> Result<Decoded, DecodeError> {
    let (i, len) = decode(bytes, offset, addr)?;
    let ctrl = control(&i, addr);
    lift(&i, addr, ctx);
    Ok(Decoded {
        len,
        asm: asm(&i, addr),
        ctrl,
        delay_slot: ctrl.is_terminator(),
    })
}

/// Decode one instruction without lifting (classification only).
///
/// # Errors
///
/// Propagates decode errors.
pub fn decode_info(bytes: &[u8], offset: usize, addr: u32) -> Result<Decoded, DecodeError> {
    let (i, len) = decode(bytes, offset, addr)?;
    let ctrl = control(&i, addr);
    Ok(Decoded {
        len,
        asm: asm(&i, addr),
        ctrl,
        delay_slot: ctrl.is_terminator(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmup_ir::Machine;

    fn roundtrip(i: Instr) {
        let mut buf = Vec::new();
        encode(&i, &mut buf);
        let (d, len) = decode(&buf, 0, 0x1000).expect("decode");
        assert_eq!(len, 4);
        // J/JAL absolute targets are reconstructed relative to the
        // decode address region; same region here, so exact match.
        assert_eq!(i, d, "round trip failed");
    }

    #[test]
    fn encode_decode_roundtrip_all_forms() {
        let a = Gpr(4);
        let b = Gpr(5);
        let c = Gpr(2);
        for i in [
            Instr::Sll {
                rd: c,
                rt: a,
                sh: 3,
            },
            Instr::Srl {
                rd: c,
                rt: a,
                sh: 31,
            },
            Instr::Sra {
                rd: c,
                rt: a,
                sh: 1,
            },
            Instr::Sllv {
                rd: c,
                rt: a,
                rs: b,
            },
            Instr::Srlv {
                rd: c,
                rt: a,
                rs: b,
            },
            Instr::Srav {
                rd: c,
                rt: a,
                rs: b,
            },
            Instr::Addu {
                rd: c,
                rs: a,
                rt: b,
            },
            Instr::Subu {
                rd: c,
                rs: a,
                rt: b,
            },
            Instr::And {
                rd: c,
                rs: a,
                rt: b,
            },
            Instr::Or {
                rd: c,
                rs: a,
                rt: b,
            },
            Instr::Xor {
                rd: c,
                rs: a,
                rt: b,
            },
            Instr::Nor {
                rd: c,
                rs: a,
                rt: b,
            },
            Instr::Slt {
                rd: c,
                rs: a,
                rt: b,
            },
            Instr::Sltu {
                rd: c,
                rs: a,
                rt: b,
            },
            Instr::Mul {
                rd: c,
                rs: a,
                rt: b,
            },
            Instr::Addiu {
                rt: c,
                rs: a,
                imm: -4,
            },
            Instr::Slti {
                rt: c,
                rs: a,
                imm: 100,
            },
            Instr::Sltiu {
                rt: c,
                rs: a,
                imm: -1,
            },
            Instr::Andi {
                rt: c,
                rs: a,
                imm: 0xff,
            },
            Instr::Ori {
                rt: c,
                rs: a,
                imm: 0xbeef,
            },
            Instr::Xori {
                rt: c,
                rs: a,
                imm: 1,
            },
            Instr::Lui { rt: c, imm: 0xdead },
            Instr::Lw {
                rt: c,
                base: SP,
                off: 0x28,
            },
            Instr::Lb {
                rt: c,
                base: a,
                off: -1,
            },
            Instr::Lbu {
                rt: c,
                base: a,
                off: 0,
            },
            Instr::Sw {
                rt: c,
                base: SP,
                off: 4,
            },
            Instr::Sb {
                rt: c,
                base: a,
                off: 2,
            },
            Instr::Beq {
                rs: a,
                rt: b,
                off: -2,
            },
            Instr::Bne {
                rs: a,
                rt: b,
                off: 10,
            },
            Instr::Blez { rs: a, off: 1 },
            Instr::Bgtz { rs: a, off: 1 },
            Instr::Bltz { rs: a, off: -1 },
            Instr::Bgez { rs: a, off: -1 },
            Instr::Jr { rs: RA },
            Instr::Jalr {
                rd: RA,
                rs: Gpr(25),
            },
        ] {
            roundtrip(i);
        }
    }

    #[test]
    fn jump_targets_roundtrip_within_region() {
        let i = Instr::Jal {
            target: 0x0040_b2ac,
        };
        let mut buf = Vec::new();
        encode(&i, &mut buf);
        let (d, _) = decode(&buf, 0, 0x0040_e700).unwrap();
        assert_eq!(d, i);
    }

    #[test]
    fn unknown_word_is_error() {
        let w = (0x3fu32 << 26).to_le_bytes();
        assert!(matches!(decode(&w, 0, 0), Err(DecodeError::Unknown { .. })));
        assert!(matches!(
            decode(&w, 2, 0),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn branch_target_math() {
        // beq at 0x1000 with off=+3 → 0x1004 + 12 = 0x1010
        let i = Instr::Beq {
            rs: Gpr(1),
            rt: Gpr(2),
            off: 3,
        };
        assert_eq!(control(&i, 0x1000), Control::CondJump(0x1010));
        let j = Instr::Bne {
            rs: Gpr(1),
            rt: Gpr(2),
            off: -1,
        };
        assert_eq!(control(&j, 0x1000), Control::CondJump(0x1000));
    }

    #[test]
    fn control_classes() {
        assert_eq!(control(&Instr::Jr { rs: RA }, 0), Control::Ret);
        assert_eq!(
            control(&Instr::Jr { rs: Gpr(25) }, 0),
            Control::IndirectJump
        );
        assert_eq!(
            control(&Instr::Jal { target: 0x40 }, 0),
            Control::Call(0x40)
        );
        assert_eq!(
            control(
                &Instr::Addu {
                    rd: Gpr(1),
                    rs: Gpr(2),
                    rt: Gpr(3)
                },
                0
            ),
            Control::Fall
        );
    }

    #[test]
    fn lift_addiu_executes_correctly() {
        let mut ctx = LiftCtx::new();
        lift(
            &Instr::Addiu {
                rt: Gpr(2),
                rs: Gpr(4),
                imm: -4,
            },
            0,
            &mut ctx,
        );
        let mut m = Machine::new();
        m.set_reg(Gpr(4).reg_id(), 10);
        for s in &ctx.stmts {
            m.step(s).unwrap();
        }
        assert_eq!(m.reg(Gpr(2).reg_id()), 6);
    }

    #[test]
    fn lift_memory_ops_execute_correctly() {
        let mut ctx = LiftCtx::new();
        lift(
            &Instr::Sw {
                rt: Gpr(4),
                base: SP,
                off: 8,
            },
            0,
            &mut ctx,
        );
        lift(
            &Instr::Lw {
                rt: Gpr(2),
                base: SP,
                off: 8,
            },
            4,
            &mut ctx,
        );
        lift(
            &Instr::Lb {
                rt: Gpr(3),
                base: SP,
                off: 8,
            },
            8,
            &mut ctx,
        );
        let mut m = Machine::new();
        m.set_reg(SP.reg_id(), 0x7fff_0000);
        m.set_reg(Gpr(4).reg_id(), 0xffff_ff85);
        for s in &ctx.stmts {
            m.step(s).unwrap();
        }
        assert_eq!(m.reg(Gpr(2).reg_id()), 0xffff_ff85);
        assert_eq!(m.reg(Gpr(3).reg_id()), 0xffff_ff85, "lb sign-extends");
    }

    #[test]
    fn zero_register_reads_zero_and_discards_writes() {
        let mut ctx = LiftCtx::new();
        lift(
            &Instr::Addu {
                rd: Gpr(0),
                rs: Gpr(1),
                rt: Gpr(2),
            },
            0,
            &mut ctx,
        );
        assert!(ctx.stmts.is_empty(), "write to $zero discarded");
        lift(
            &Instr::Addu {
                rd: Gpr(3),
                rs: Gpr(0),
                rt: Gpr(0),
            },
            4,
            &mut ctx,
        );
        let mut m = Machine::new();
        m.run_block(&firmup_ir::Block {
            addr: 0,
            len: 8,
            stmts: ctx.stmts.clone(),
            jump: firmup_ir::Jump::Ret,
            asm: vec![],
        })
        .unwrap();
        assert_eq!(m.reg(Gpr(3).reg_id()), 0);
    }

    #[test]
    fn branch_lift_emits_exit_and_fall() {
        let mut ctx = LiftCtx::new();
        lift(
            &Instr::Bne {
                rs: Gpr(16),
                rt: Gpr(2),
                off: 4,
            },
            0x1000,
            &mut ctx,
        );
        assert!(matches!(ctx.stmts[0], Stmt::Exit { target: 0x1014, .. }));
        assert_eq!(ctx.jump, Some(Jump::Fall(0x1008)), "fall skips delay slot");
    }

    #[test]
    fn jal_sets_ra_past_delay_slot() {
        let mut ctx = LiftCtx::new();
        lift(&Instr::Jal { target: 0x40b2ac }, 0x1000, &mut ctx);
        assert_eq!(
            ctx.stmts[0],
            Stmt::Put(RA.reg_id(), Expr::Const(0x1008)),
            "return address skips the delay slot"
        );
    }

    #[test]
    fn asm_text() {
        assert_eq!(
            asm(
                &Instr::Sll {
                    rd: Gpr(0),
                    rt: Gpr(0),
                    sh: 0
                },
                0
            ),
            "nop"
        );
        assert_eq!(
            asm(
                &Instr::Addu {
                    rd: Gpr(18),
                    rs: Gpr(4),
                    rt: Gpr(0)
                },
                0
            ),
            "move $s2, $a0"
        );
        assert_eq!(
            asm(
                &Instr::Lw {
                    rt: Gpr(28),
                    base: SP,
                    off: 0x28
                },
                0
            ),
            "lw $gp, 40($sp)"
        );
    }

    #[test]
    fn decode_info_marks_delay_slots() {
        let mut buf = Vec::new();
        encode(
            &Instr::Beq {
                rs: Gpr(1),
                rt: Gpr(2),
                off: 1,
            },
            &mut buf,
        );
        let d = decode_info(&buf, 0, 0).unwrap();
        assert!(d.delay_slot);
        let mut buf2 = Vec::new();
        encode(
            &Instr::Addiu {
                rt: Gpr(1),
                rs: Gpr(1),
                imm: 1,
            },
            &mut buf2,
        );
        assert!(!decode_info(&buf2, 0, 0).unwrap().delay_slot);
    }
}
