//! Intel x86 (32-bit protected mode) subset: encoder, decoder and lifter.
//!
//! Variable-length encoding with ModRM/SIB addressing, EFLAGS side
//! effects (ZF/SF/OF/CF modeled as explicit IR registers), and a
//! stack-based calling convention — the structurally farthest ISA from
//! the three RISC targets, which is exactly what makes it a good test of
//! the canonicalizer.

use std::fmt;

use firmup_ir::{BinOp, Expr, Jump, RegId, Stmt, UnOp, Width};

use crate::common::{Control, DecodeError, Decoded, LiftCtx};

/// Register numbers (`RegId(0..=7)`).
pub const EAX: u8 = 0;
/// `ecx`.
pub const ECX: u8 = 1;
/// `edx`.
pub const EDX: u8 = 2;
/// `ebx`.
pub const EBX: u8 = 3;
/// `esp`.
pub const ESP: u8 = 4;
/// `ebp`.
pub const EBP: u8 = 5;
/// `esi`.
pub const ESI: u8 = 6;
/// `edi`.
pub const EDI: u8 = 7;
/// IR register id of the zero flag.
pub const ZF: RegId = RegId(8);
/// IR register id of the sign flag.
pub const SF: RegId = RegId(9);
/// IR register id of the overflow flag.
pub const OF: RegId = RegId(10);
/// IR register id of the carry flag.
pub const CF: RegId = RegId(11);

const REG_NAMES: [&str; 8] = ["eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"];

/// Name of an IR register id, for diagnostics.
pub fn reg_name(r: RegId) -> String {
    match r.0 {
        n if n < 8 => REG_NAMES[n as usize].to_string(),
        8 => "zf".into(),
        9 => "sf".into(),
        10 => "of".into(),
        11 => "cf".into(),
        n => format!("?{n}"),
    }
}

/// A memory operand: `[base + disp]` or absolute `[disp]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mem {
    /// Base register, or `None` for absolute addressing.
    pub base: Option<u8>,
    /// Signed displacement.
    pub disp: i32,
}

impl Mem {
    /// `[base + disp]`.
    pub fn base_disp(base: u8, disp: i32) -> Mem {
        Mem {
            base: Some(base),
            disp,
        }
    }

    /// Absolute `[disp]`.
    pub fn abs(disp: u32) -> Mem {
        Mem {
            base: None,
            disp: disp as i32,
        }
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.base {
            Some(b) => {
                if self.disp == 0 {
                    write!(f, "[{}]", REG_NAMES[b as usize])
                } else if self.disp > 0 {
                    write!(f, "[{}+{:#x}]", REG_NAMES[b as usize], self.disp)
                } else {
                    write!(f, "[{}-{:#x}]", REG_NAMES[b as usize], -self.disp)
                }
            }
            None => write!(f, "[{:#x}]", self.disp as u32),
        }
    }
}

/// Two-operand ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Or,
    And,
    Sub,
    Xor,
    Cmp,
}

impl AluOp {
    fn mr_opcode(self) -> u8 {
        match self {
            AluOp::Add => 0x01,
            AluOp::Or => 0x09,
            AluOp::And => 0x21,
            AluOp::Sub => 0x29,
            AluOp::Xor => 0x31,
            AluOp::Cmp => 0x39,
        }
    }

    fn rm_opcode(self) -> u8 {
        self.mr_opcode() | 0x02
    }

    fn imm_ext(self) -> u8 {
        match self {
            AluOp::Add => 0,
            AluOp::Or => 1,
            AluOp::And => 4,
            AluOp::Sub => 5,
            AluOp::Xor => 6,
            AluOp::Cmp => 7,
        }
    }

    fn from_imm_ext(n: u8) -> Option<AluOp> {
        Some(match n {
            0 => AluOp::Add,
            1 => AluOp::Or,
            4 => AluOp::And,
            5 => AluOp::Sub,
            6 => AluOp::Xor,
            7 => AluOp::Cmp,
            _ => return None,
        })
    }

    fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Or => "or",
            AluOp::And => "and",
            AluOp::Sub => "sub",
            AluOp::Xor => "xor",
            AluOp::Cmp => "cmp",
        }
    }
}

/// Shift operations (`C1 /ext`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum ShiftKind {
    Shl,
    Shr,
    Sar,
}

impl ShiftKind {
    fn ext(self) -> u8 {
        match self {
            ShiftKind::Shl => 4,
            ShiftKind::Shr => 5,
            ShiftKind::Sar => 7,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            ShiftKind::Shl => "shl",
            ShiftKind::Shr => "shr",
            ShiftKind::Sar => "sar",
        }
    }
}

/// Condition codes for `Jcc` (low nibble of the `0F 8x` opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Cc {
    B = 0x2,
    Ae = 0x3,
    E = 0x4,
    Ne = 0x5,
    L = 0xc,
    Ge = 0xd,
    Le = 0xe,
    G = 0xf,
}

impl Cc {
    fn from_nibble(n: u8) -> Option<Cc> {
        Some(match n {
            0x2 => Cc::B,
            0x3 => Cc::Ae,
            0x4 => Cc::E,
            0x5 => Cc::Ne,
            0xc => Cc::L,
            0xd => Cc::Ge,
            0xe => Cc::Le,
            0xf => Cc::G,
            _ => return None,
        })
    }

    fn mnemonic(self) -> &'static str {
        match self {
            Cc::B => "jb",
            Cc::Ae => "jae",
            Cc::E => "je",
            Cc::Ne => "jne",
            Cc::L => "jl",
            Cc::Ge => "jge",
            Cc::Le => "jle",
            Cc::G => "jg",
        }
    }

    /// The flag expression that is true when this condition holds.
    pub fn expr(self) -> Expr {
        let zf = Expr::Get(ZF);
        let sf = Expr::Get(SF);
        let of = Expr::Get(OF);
        let cf = Expr::Get(CF);
        let not = |e: Expr| Expr::bin(BinOp::CmpEq, e, Expr::Const(0));
        match self {
            Cc::E => zf,
            Cc::Ne => not(zf),
            Cc::B => cf,
            Cc::Ae => not(cf),
            Cc::L => Expr::bin(BinOp::CmpNe, sf, of),
            Cc::Ge => Expr::bin(BinOp::CmpEq, sf, of),
            Cc::Le => Expr::bin(BinOp::Or, zf, Expr::bin(BinOp::CmpNe, sf, of)),
            Cc::G => Expr::bin(BinOp::And, not(zf), Expr::bin(BinOp::CmpEq, sf, of)),
        }
    }
}

/// Our x86 instruction subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Instr {
    MovRI {
        dst: u8,
        imm: u32,
    },
    MovRR {
        dst: u8,
        src: u8,
    },
    Load {
        dst: u8,
        mem: Mem,
    },
    Store {
        mem: Mem,
        src: u8,
    },
    Load8Z {
        dst: u8,
        mem: Mem,
    },
    Load8S {
        dst: u8,
        mem: Mem,
    },
    /// Byte store; `src` must be EAX/ECX/EDX/EBX (whose low bytes are
    /// encodable as AL/CL/DL/BL).
    Store8 {
        mem: Mem,
        src: u8,
    },
    AluRR {
        op: AluOp,
        dst: u8,
        src: u8,
    },
    AluRI {
        op: AluOp,
        dst: u8,
        imm: u32,
    },
    AluRM {
        op: AluOp,
        dst: u8,
        mem: Mem,
    },
    Test {
        a: u8,
        b: u8,
    },
    Imul {
        dst: u8,
        src: u8,
    },
    Shift {
        kind: ShiftKind,
        dst: u8,
        imm: u8,
    },
    Lea {
        dst: u8,
        mem: Mem,
    },
    Push {
        src: u8,
    },
    Pop {
        dst: u8,
    },
    CallRel {
        rel: i32,
    },
    CallInd {
        reg: u8,
    },
    Ret,
    JmpRel {
        rel: i32,
    },
    JmpInd {
        reg: u8,
    },
    Jcc {
        cc: Cc,
        rel: i32,
    },
    Nop,
}

fn emit_modrm_mem(buf: &mut Vec<u8>, reg: u8, mem: &Mem) {
    match mem.base {
        None => {
            buf.push((reg << 3) | 0b101); // mod=00 rm=101 → disp32
            buf.extend_from_slice(&mem.disp.to_le_bytes());
        }
        Some(base) => {
            let small = i8::try_from(mem.disp).is_ok();
            let modbits = if small { 0b01 } else { 0b10 };
            buf.push((modbits << 6) | (reg << 3) | (base & 7));
            if base == ESP {
                buf.push(0x24); // SIB: no index, base=ESP
            }
            if small {
                buf.push(mem.disp as i8 as u8);
            } else {
                buf.extend_from_slice(&mem.disp.to_le_bytes());
            }
        }
    }
}

fn modrm_rr(reg: u8, rm: u8) -> u8 {
    0xc0 | (reg << 3) | (rm & 7)
}

/// Append the encoding of `i` to `buf`, returning the instruction length.
pub fn encode(i: &Instr, buf: &mut Vec<u8>) -> u32 {
    let start = buf.len();
    use Instr::*;
    match *i {
        MovRI { dst, imm } => {
            buf.push(0xb8 + dst);
            buf.extend_from_slice(&imm.to_le_bytes());
        }
        MovRR { dst, src } => {
            buf.push(0x89);
            buf.push(modrm_rr(src, dst));
        }
        Load { dst, mem } => {
            buf.push(0x8b);
            emit_modrm_mem(buf, dst, &mem);
        }
        Store { mem, src } => {
            buf.push(0x89);
            emit_modrm_mem(buf, src, &mem);
        }
        Load8Z { dst, mem } => {
            buf.push(0x0f);
            buf.push(0xb6);
            emit_modrm_mem(buf, dst, &mem);
        }
        Load8S { dst, mem } => {
            buf.push(0x0f);
            buf.push(0xbe);
            emit_modrm_mem(buf, dst, &mem);
        }
        Store8 { mem, src } => {
            debug_assert!(src < 4, "byte store source must be EAX..EBX");
            buf.push(0x88);
            emit_modrm_mem(buf, src, &mem);
        }
        AluRR { op, dst, src } => {
            buf.push(op.mr_opcode());
            buf.push(modrm_rr(src, dst));
        }
        AluRI { op, dst, imm } => {
            buf.push(0x81);
            buf.push(modrm_rr(op.imm_ext(), dst));
            buf.extend_from_slice(&imm.to_le_bytes());
        }
        AluRM { op, dst, mem } => {
            buf.push(op.rm_opcode());
            emit_modrm_mem(buf, dst, &mem);
        }
        Test { a, b } => {
            buf.push(0x85);
            buf.push(modrm_rr(b, a));
        }
        Imul { dst, src } => {
            buf.push(0x0f);
            buf.push(0xaf);
            buf.push(modrm_rr(dst, src));
        }
        Shift { kind, dst, imm } => {
            buf.push(0xc1);
            buf.push(modrm_rr(kind.ext(), dst));
            buf.push(imm);
        }
        Lea { dst, mem } => {
            buf.push(0x8d);
            emit_modrm_mem(buf, dst, &mem);
        }
        Push { src } => buf.push(0x50 + src),
        Pop { dst } => buf.push(0x58 + dst),
        CallRel { rel } => {
            buf.push(0xe8);
            buf.extend_from_slice(&rel.to_le_bytes());
        }
        CallInd { reg } => {
            buf.push(0xff);
            buf.push(modrm_rr(2, reg));
        }
        Ret => buf.push(0xc3),
        JmpRel { rel } => {
            buf.push(0xe9);
            buf.extend_from_slice(&rel.to_le_bytes());
        }
        JmpInd { reg } => {
            buf.push(0xff);
            buf.push(modrm_rr(4, reg));
        }
        Jcc { cc, rel } => {
            buf.push(0x0f);
            buf.push(0x80 | cc as u8);
            buf.extend_from_slice(&rel.to_le_bytes());
        }
        Nop => buf.push(0x90),
    }
    (buf.len() - start) as u32
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    addr: u32,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or(DecodeError::Truncated { addr: self.addr })?;
        self.pos += 1;
        Ok(b)
    }

    fn i8(&mut self) -> Result<i8, DecodeError> {
        Ok(self.u8()? as i8)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let s = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or(DecodeError::Truncated { addr: self.addr })?;
        self.pos += 4;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        Ok(self.u32()? as i32)
    }

    /// Decode a ModRM byte expecting a memory operand; returns
    /// `(reg_field, mem)`.
    fn modrm_mem(&mut self) -> Result<(u8, Mem), DecodeError> {
        let m = self.u8()?;
        let modbits = m >> 6;
        let reg = (m >> 3) & 7;
        let rm = m & 7;
        let unknown = DecodeError::Unknown {
            addr: self.addr,
            word: u32::from(m),
        };
        let mem = match modbits {
            0b00 if rm == 0b101 => Mem {
                base: None,
                disp: self.i32()?,
            },
            0b01 | 0b10 => {
                let base = if rm == 0b100 {
                    let sib = self.u8()?;
                    if sib != 0x24 {
                        return Err(unknown); // only base=ESP, no index
                    }
                    ESP
                } else {
                    rm
                };
                let disp = if modbits == 0b01 {
                    i32::from(self.i8()?)
                } else {
                    self.i32()?
                };
                Mem {
                    base: Some(base),
                    disp,
                }
            }
            _ => return Err(unknown),
        };
        Ok((reg, mem))
    }
}

/// Decode the instruction at `bytes[offset..]`, located at `addr`.
///
/// # Errors
///
/// [`DecodeError::Truncated`] / [`DecodeError::Unknown`].
pub fn decode(bytes: &[u8], offset: usize, addr: u32) -> Result<(Instr, u32), DecodeError> {
    let mut r = Reader {
        bytes,
        pos: offset,
        addr,
    };
    let op = r.u8()?;
    use Instr::*;
    let unknown = |w: u8| DecodeError::Unknown {
        addr,
        word: u32::from(w),
    };
    let i = match op {
        0x90 => Nop,
        0xc3 => Ret,
        0x50..=0x57 => Push { src: op - 0x50 },
        0x58..=0x5f => Pop { dst: op - 0x58 },
        0xb8..=0xbf => MovRI {
            dst: op - 0xb8,
            imm: r.u32()?,
        },
        0xe8 => CallRel { rel: r.i32()? },
        0xe9 => JmpRel { rel: r.i32()? },
        0x89 => {
            let m = *r.bytes.get(r.pos).ok_or(DecodeError::Truncated { addr })?;
            if m >> 6 == 0b11 {
                r.pos += 1;
                MovRR {
                    dst: m & 7,
                    src: (m >> 3) & 7,
                }
            } else {
                let (src, mem) = r.modrm_mem()?;
                Store { mem, src }
            }
        }
        0x8b => {
            let (dst, mem) = r.modrm_mem()?;
            Load { dst, mem }
        }
        0x88 => {
            let (src, mem) = r.modrm_mem()?;
            if src >= 4 {
                return Err(unknown(op));
            }
            Store8 { mem, src }
        }
        0x8d => {
            let (dst, mem) = r.modrm_mem()?;
            Lea { dst, mem }
        }
        0x85 => {
            let m = r.u8()?;
            if m >> 6 != 0b11 {
                return Err(unknown(op));
            }
            Test {
                a: m & 7,
                b: (m >> 3) & 7,
            }
        }
        0x81 => {
            let m = r.u8()?;
            if m >> 6 != 0b11 {
                return Err(unknown(op));
            }
            let aluop = AluOp::from_imm_ext((m >> 3) & 7).ok_or(unknown(op))?;
            AluRI {
                op: aluop,
                dst: m & 7,
                imm: r.u32()?,
            }
        }
        0xc1 => {
            let m = r.u8()?;
            if m >> 6 != 0b11 {
                return Err(unknown(op));
            }
            let kind = match (m >> 3) & 7 {
                4 => ShiftKind::Shl,
                5 => ShiftKind::Shr,
                7 => ShiftKind::Sar,
                _ => return Err(unknown(op)),
            };
            Shift {
                kind,
                dst: m & 7,
                imm: r.u8()?,
            }
        }
        0xff => {
            let m = r.u8()?;
            if m >> 6 != 0b11 {
                return Err(unknown(op));
            }
            match (m >> 3) & 7 {
                2 => CallInd { reg: m & 7 },
                4 => JmpInd { reg: m & 7 },
                _ => return Err(unknown(op)),
            }
        }
        0x0f => {
            let op2 = r.u8()?;
            match op2 {
                0xb6 => {
                    let (dst, mem) = r.modrm_mem()?;
                    Load8Z { dst, mem }
                }
                0xbe => {
                    let (dst, mem) = r.modrm_mem()?;
                    Load8S { dst, mem }
                }
                0xaf => {
                    let m = r.u8()?;
                    if m >> 6 != 0b11 {
                        return Err(unknown(op2));
                    }
                    Imul {
                        dst: (m >> 3) & 7,
                        src: m & 7,
                    }
                }
                0x80..=0x8f => {
                    let cc = Cc::from_nibble(op2 & 0xf).ok_or(unknown(op2))?;
                    Jcc { cc, rel: r.i32()? }
                }
                _ => return Err(unknown(op2)),
            }
        }
        // ALU MR / RM register forms.
        _ => {
            let mr = [0x01, 0x09, 0x21, 0x29, 0x31, 0x39];
            let ops = [
                AluOp::Add,
                AluOp::Or,
                AluOp::And,
                AluOp::Sub,
                AluOp::Xor,
                AluOp::Cmp,
            ];
            if let Some(idx) = mr.iter().position(|&o| o == op) {
                let m = r.u8()?;
                if m >> 6 != 0b11 {
                    return Err(unknown(op));
                }
                AluRR {
                    op: ops[idx],
                    dst: m & 7,
                    src: (m >> 3) & 7,
                }
            } else if let Some(idx) = mr.iter().position(|&o| o | 0x02 == op) {
                let (dst, mem) = r.modrm_mem()?;
                AluRM {
                    op: ops[idx],
                    dst,
                    mem,
                }
            } else {
                return Err(unknown(op));
            }
        }
    };
    Ok((i, (r.pos - offset) as u32))
}

/// Length of the encoding of `i` in bytes.
pub fn encoded_len(i: &Instr) -> u32 {
    let mut buf = Vec::with_capacity(8);
    encode(i, &mut buf)
}

/// Control-flow classification (needs the instruction length for
/// relative targets).
pub fn control(i: &Instr, addr: u32, len: u32) -> Control {
    use Instr::*;
    let end = addr.wrapping_add(len);
    match *i {
        CallRel { rel } => Control::Call(end.wrapping_add(rel as u32)),
        CallInd { .. } => Control::IndirectCall,
        Ret => Control::Ret,
        JmpRel { rel } => Control::Jump(end.wrapping_add(rel as u32)),
        JmpInd { .. } => Control::IndirectJump,
        Jcc { rel, .. } => Control::CondJump(end.wrapping_add(rel as u32)),
        _ => Control::Fall,
    }
}

/// Disassembly text.
pub fn asm(i: &Instr, addr: u32, len: u32) -> String {
    use Instr::*;
    let r = |n: u8| REG_NAMES[n as usize];
    let end = addr.wrapping_add(len);
    match *i {
        MovRI { dst, imm } => format!("mov {}, {imm:#x}", r(dst)),
        MovRR { dst, src } => format!("mov {}, {}", r(dst), r(src)),
        Load { dst, mem } => format!("mov {}, {mem}", r(dst)),
        Store { mem, src } => format!("mov {mem}, {}", r(src)),
        Load8Z { dst, mem } => format!("movzx {}, byte {mem}", r(dst)),
        Load8S { dst, mem } => format!("movsx {}, byte {mem}", r(dst)),
        Store8 { mem, src } => {
            format!("mov byte {mem}, {}", ["al", "cl", "dl", "bl"][src as usize])
        }
        AluRR { op, dst, src } => format!("{} {}, {}", op.mnemonic(), r(dst), r(src)),
        AluRI { op, dst, imm } => format!("{} {}, {imm:#x}", op.mnemonic(), r(dst)),
        AluRM { op, dst, mem } => format!("{} {}, {mem}", op.mnemonic(), r(dst)),
        Test { a, b } => format!("test {}, {}", r(a), r(b)),
        Imul { dst, src } => format!("imul {}, {}", r(dst), r(src)),
        Shift { kind, dst, imm } => format!("{} {}, {imm}", kind.mnemonic(), r(dst)),
        Lea { dst, mem } => format!("lea {}, {mem}", r(dst)),
        Push { src } => format!("push {}", r(src)),
        Pop { dst } => format!("pop {}", r(dst)),
        CallRel { rel } => format!("call {:#x}", end.wrapping_add(rel as u32)),
        CallInd { reg } => format!("call {}", r(reg)),
        Ret => "ret".into(),
        JmpRel { rel } => format!("jmp {:#x}", end.wrapping_add(rel as u32)),
        JmpInd { reg } => format!("jmp {}", r(reg)),
        Jcc { cc, rel } => format!("{} {:#x}", cc.mnemonic(), end.wrapping_add(rel as u32)),
        Nop => "nop".into(),
    }
}

fn gpr(n: u8) -> Expr {
    Expr::Get(RegId(u16::from(n)))
}

fn mem_expr(mem: &Mem) -> Expr {
    match mem.base {
        None => Expr::Const(mem.disp as u32),
        Some(b) => {
            if mem.disp == 0 {
                gpr(b)
            } else {
                Expr::bin(BinOp::Add, gpr(b), Expr::Const(mem.disp as u32))
            }
        }
    }
}

fn set_zf_sf(ctx: &mut LiftCtx, res: &Expr) {
    ctx.emit(Stmt::Put(
        ZF,
        Expr::bin(BinOp::CmpEq, res.clone(), Expr::Const(0)),
    ));
    ctx.emit(Stmt::Put(
        SF,
        Expr::bin(BinOp::CmpLtS, res.clone(), Expr::Const(0)),
    ));
}

fn sign_bit(e: Expr) -> Expr {
    Expr::bin(BinOp::Shr, e, Expr::Const(31))
}

/// Flags for `a op b = res` where `op` is add or sub.
fn set_arith_flags(ctx: &mut LiftCtx, is_sub: bool, a: &Expr, b: &Expr, res: &Expr) {
    set_zf_sf(ctx, res);
    if is_sub {
        ctx.emit(Stmt::Put(
            CF,
            Expr::bin(BinOp::CmpLtU, a.clone(), b.clone()),
        ));
        ctx.emit(Stmt::Put(
            OF,
            Expr::bin(
                BinOp::And,
                sign_bit(Expr::bin(BinOp::Xor, a.clone(), b.clone())),
                sign_bit(Expr::bin(BinOp::Xor, a.clone(), res.clone())),
            ),
        ));
    } else {
        ctx.emit(Stmt::Put(
            CF,
            Expr::bin(BinOp::CmpLtU, res.clone(), a.clone()),
        ));
        ctx.emit(Stmt::Put(
            OF,
            Expr::bin(
                BinOp::And,
                sign_bit(Expr::bin(BinOp::Xor, a.clone(), res.clone())),
                sign_bit(Expr::bin(BinOp::Xor, b.clone(), res.clone())),
            ),
        ));
    }
}

fn set_logic_flags(ctx: &mut LiftCtx, res: &Expr) {
    set_zf_sf(ctx, res);
    ctx.emit(Stmt::Put(CF, Expr::Const(0)));
    ctx.emit(Stmt::Put(OF, Expr::Const(0)));
}

fn lift_alu(ctx: &mut LiftCtx, op: AluOp, dst: u8, rhs: Expr) {
    let a = ctx.bind(gpr(dst));
    let b = ctx.bind(rhs);
    let (res, arith_sub) = match op {
        AluOp::Add => (Expr::bin(BinOp::Add, a.clone(), b.clone()), Some(false)),
        AluOp::Sub | AluOp::Cmp => (Expr::bin(BinOp::Sub, a.clone(), b.clone()), Some(true)),
        AluOp::And => (Expr::bin(BinOp::And, a.clone(), b.clone()), None),
        AluOp::Or => (Expr::bin(BinOp::Or, a.clone(), b.clone()), None),
        AluOp::Xor => (Expr::bin(BinOp::Xor, a.clone(), b.clone()), None),
    };
    let res = ctx.bind(res);
    if op != AluOp::Cmp {
        ctx.emit(Stmt::Put(RegId(u16::from(dst)), res.clone()));
    }
    match arith_sub {
        Some(is_sub) => set_arith_flags(ctx, is_sub, &a, &b, &res),
        None => set_logic_flags(ctx, &res),
    }
}

/// Lift one instruction into `ctx`.
pub fn lift(i: &Instr, addr: u32, len: u32, ctx: &mut LiftCtx) {
    use Instr::*;
    let next = addr.wrapping_add(len);
    let esp = RegId(u16::from(ESP));
    match *i {
        Nop => {}
        MovRI { dst, imm } => ctx.emit(Stmt::Put(RegId(u16::from(dst)), Expr::Const(imm))),
        MovRR { dst, src } => ctx.emit(Stmt::Put(RegId(u16::from(dst)), gpr(src))),
        Load { dst, mem } => ctx.emit(Stmt::Put(
            RegId(u16::from(dst)),
            Expr::load(mem_expr(&mem), Width::W32),
        )),
        Store { mem, src } => ctx.emit(Stmt::Store {
            addr: mem_expr(&mem),
            value: gpr(src),
            width: Width::W32,
        }),
        Load8Z { dst, mem } => ctx.emit(Stmt::Put(
            RegId(u16::from(dst)),
            Expr::load(mem_expr(&mem), Width::W8),
        )),
        Load8S { dst, mem } => ctx.emit(Stmt::Put(
            RegId(u16::from(dst)),
            Expr::un(UnOp::Sext8, Expr::load(mem_expr(&mem), Width::W8)),
        )),
        Store8 { mem, src } => ctx.emit(Stmt::Store {
            addr: mem_expr(&mem),
            value: gpr(src),
            width: Width::W8,
        }),
        AluRR { op, dst, src } => lift_alu(ctx, op, dst, gpr(src)),
        AluRI { op, dst, imm } => lift_alu(ctx, op, dst, Expr::Const(imm)),
        AluRM { op, dst, mem } => lift_alu(ctx, op, dst, Expr::load(mem_expr(&mem), Width::W32)),
        Test { a, b } => {
            let res = ctx.bind(Expr::bin(BinOp::And, gpr(a), gpr(b)));
            set_logic_flags(ctx, &res);
        }
        Imul { dst, src } => ctx.emit(Stmt::Put(
            RegId(u16::from(dst)),
            Expr::bin(BinOp::Mul, gpr(dst), gpr(src)),
        )),
        Shift { kind, dst, imm } => {
            let op = match kind {
                ShiftKind::Shl => BinOp::Shl,
                ShiftKind::Shr => BinOp::Shr,
                ShiftKind::Sar => BinOp::Sar,
            };
            let res = ctx.bind(Expr::bin(op, gpr(dst), Expr::Const(u32::from(imm))));
            ctx.emit(Stmt::Put(RegId(u16::from(dst)), res.clone()));
            set_zf_sf(ctx, &res);
        }
        Lea { dst, mem } => ctx.emit(Stmt::Put(RegId(u16::from(dst)), mem_expr(&mem))),
        Push { src } => {
            let newsp = ctx.bind(Expr::bin(BinOp::Sub, Expr::Get(esp), Expr::Const(4)));
            ctx.emit(Stmt::Put(esp, newsp.clone()));
            ctx.emit(Stmt::Store {
                addr: newsp,
                value: gpr(src),
                width: Width::W32,
            });
        }
        Pop { dst } => {
            let val = ctx.bind(Expr::load(Expr::Get(esp), Width::W32));
            ctx.emit(Stmt::Put(RegId(u16::from(dst)), val));
            ctx.emit(Stmt::Put(
                esp,
                Expr::bin(BinOp::Add, Expr::Get(esp), Expr::Const(4)),
            ));
        }
        CallRel { rel } => {
            let target = next.wrapping_add(rel as u32);
            let newsp = ctx.bind(Expr::bin(BinOp::Sub, Expr::Get(esp), Expr::Const(4)));
            ctx.emit(Stmt::Put(esp, newsp.clone()));
            ctx.emit(Stmt::Store {
                addr: newsp,
                value: Expr::Const(next),
                width: Width::W32,
            });
            ctx.terminate(Jump::Call {
                target: firmup_ir::CallTarget::Direct(target),
                return_to: next,
            });
        }
        CallInd { reg } => {
            let newsp = ctx.bind(Expr::bin(BinOp::Sub, Expr::Get(esp), Expr::Const(4)));
            ctx.emit(Stmt::Put(esp, newsp.clone()));
            ctx.emit(Stmt::Store {
                addr: newsp,
                value: Expr::Const(next),
                width: Width::W32,
            });
            ctx.terminate(Jump::Call {
                target: firmup_ir::CallTarget::Indirect(gpr(reg)),
                return_to: next,
            });
        }
        Ret => {
            ctx.emit(Stmt::Put(
                esp,
                Expr::bin(BinOp::Add, Expr::Get(esp), Expr::Const(4)),
            ));
            ctx.terminate(Jump::Ret);
        }
        JmpRel { rel } => ctx.terminate(Jump::Direct(next.wrapping_add(rel as u32))),
        JmpInd { reg } => ctx.terminate(Jump::Indirect(gpr(reg))),
        Jcc { cc, rel } => {
            ctx.emit(Stmt::Exit {
                cond: cc.expr(),
                target: next.wrapping_add(rel as u32),
            });
            ctx.terminate(Jump::Fall(next));
        }
    }
}

/// Decode and lift one instruction, appending statements to `ctx`.
///
/// # Errors
///
/// Propagates decode errors.
pub fn lift_into(
    bytes: &[u8],
    offset: usize,
    addr: u32,
    ctx: &mut LiftCtx,
) -> Result<Decoded, DecodeError> {
    let (i, len) = decode(bytes, offset, addr)?;
    let ctrl = control(&i, addr, len);
    lift(&i, addr, len, ctx);
    Ok(Decoded {
        len,
        asm: asm(&i, addr, len),
        ctrl,
        delay_slot: false,
    })
}

/// Decode one instruction without lifting.
///
/// # Errors
///
/// Propagates decode errors.
pub fn decode_info(bytes: &[u8], offset: usize, addr: u32) -> Result<Decoded, DecodeError> {
    let (i, len) = decode(bytes, offset, addr)?;
    Ok(Decoded {
        len,
        asm: asm(&i, addr, len),
        ctrl: control(&i, addr, len),
        delay_slot: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmup_ir::Machine;

    fn rt(i: Instr) {
        let mut buf = Vec::new();
        let len = encode(&i, &mut buf);
        assert_eq!(len as usize, buf.len());
        let (d, dlen) = decode(&buf, 0, 0x8048000).expect("decode");
        assert_eq!(dlen, len);
        assert_eq!(d, i, "round trip failed for {i:?}");
    }

    #[test]
    fn encode_decode_roundtrip_all_forms() {
        use Instr::*;
        for i in [
            MovRI {
                dst: EAX,
                imm: 0xdead_beef,
            },
            MovRR { dst: EBX, src: ECX },
            Load {
                dst: EAX,
                mem: Mem::base_disp(ESP, 8),
            },
            Load {
                dst: EAX,
                mem: Mem::base_disp(EBP, -4),
            },
            Load {
                dst: EAX,
                mem: Mem::base_disp(ESI, 0x1000),
            },
            Load {
                dst: EAX,
                mem: Mem::abs(0x804_9000),
            },
            Store {
                mem: Mem::base_disp(ESP, 4),
                src: EDX,
            },
            Load8Z {
                dst: EAX,
                mem: Mem::base_disp(EBX, 1),
            },
            Load8S {
                dst: ECX,
                mem: Mem::base_disp(EBX, -1),
            },
            Store8 {
                mem: Mem::base_disp(EDI, 2),
                src: EAX,
            },
            AluRR {
                op: AluOp::Add,
                dst: EAX,
                src: EBX,
            },
            AluRR {
                op: AluOp::Cmp,
                dst: ESI,
                src: EDI,
            },
            AluRI {
                op: AluOp::Sub,
                dst: ESP,
                imm: 16,
            },
            AluRM {
                op: AluOp::Add,
                dst: EAX,
                mem: Mem::base_disp(ESP, 12),
            },
            Test { a: EAX, b: EAX },
            Imul { dst: EAX, src: ECX },
            Shift {
                kind: ShiftKind::Shl,
                dst: EAX,
                imm: 2,
            },
            Shift {
                kind: ShiftKind::Sar,
                dst: EDX,
                imm: 31,
            },
            Lea {
                dst: EAX,
                mem: Mem::base_disp(EBP, -8),
            },
            Push { src: EBP },
            Pop { dst: EBP },
            CallRel { rel: 0x100 },
            CallInd { reg: EAX },
            Ret,
            JmpRel { rel: -5 },
            JmpInd { reg: ECX },
            Jcc {
                cc: Cc::Ne,
                rel: 0x10,
            },
            Jcc {
                cc: Cc::L,
                rel: -0x20,
            },
            Nop,
        ] {
            rt(i);
        }
    }

    #[test]
    fn variable_lengths() {
        assert_eq!(encoded_len(&Instr::Nop), 1);
        assert_eq!(encoded_len(&Instr::Push { src: EAX }), 1);
        assert_eq!(encoded_len(&Instr::MovRI { dst: EAX, imm: 0 }), 5);
        assert_eq!(encoded_len(&Instr::MovRR { dst: EAX, src: EBX }), 2);
        assert_eq!(
            encoded_len(&Instr::Load {
                dst: EAX,
                mem: Mem::base_disp(ESP, 4)
            }),
            4,
            "ESP base needs a SIB byte"
        );
        assert_eq!(
            encoded_len(&Instr::Load {
                dst: EAX,
                mem: Mem::base_disp(EBX, 4)
            }),
            3
        );
        assert_eq!(encoded_len(&Instr::Jcc { cc: Cc::E, rel: 0 }), 6);
    }

    #[test]
    fn rel_targets_measured_from_end() {
        let i = Instr::CallRel { rel: 0x10 };
        let len = encoded_len(&i);
        assert_eq!(control(&i, 0x1000, len), Control::Call(0x1000 + 5 + 0x10));
        let j = Instr::JmpRel { rel: -5 };
        assert_eq!(control(&j, 0x1000, 5), Control::Jump(0x1000), "jmp to self");
    }

    #[test]
    fn push_pop_roundtrip() {
        let mut ctx = LiftCtx::new();
        lift(&Instr::Push { src: EBX }, 0, 1, &mut ctx);
        lift(&Instr::Pop { dst: EDX }, 1, 1, &mut ctx);
        let mut m = Machine::new();
        m.set_reg(RegId(u16::from(ESP)), 0x1000);
        m.set_reg(RegId(u16::from(EBX)), 77);
        for s in &ctx.stmts {
            m.step(s).unwrap();
        }
        assert_eq!(m.reg(RegId(u16::from(EDX))), 77);
        assert_eq!(m.reg(RegId(u16::from(ESP))), 0x1000, "balanced push/pop");
    }

    #[test]
    fn cmp_sets_flags_for_signed_compare() {
        let mut ctx = LiftCtx::new();
        lift(
            &Instr::AluRI {
                op: AluOp::Cmp,
                dst: EAX,
                imm: 10,
            },
            0,
            6,
            &mut ctx,
        );
        let mut m = Machine::new();
        m.set_reg(RegId(0), 3);
        for s in &ctx.stmts {
            m.step(s).unwrap();
        }
        // 3 < 10: SF != OF.
        let jl = Cc::L.expr();
        assert_eq!(m.eval(&jl).unwrap(), 1);
        assert_eq!(m.eval(&Cc::Ge.expr()).unwrap(), 0);
        assert_eq!(m.eval(&Cc::E.expr()).unwrap(), 0);
    }

    #[test]
    fn cmp_overflow_case() {
        // i32::MIN vs 1: signed less-than must hold despite overflow.
        let mut ctx = LiftCtx::new();
        lift(
            &Instr::AluRI {
                op: AluOp::Cmp,
                dst: EAX,
                imm: 1,
            },
            0,
            6,
            &mut ctx,
        );
        let mut m = Machine::new();
        m.set_reg(RegId(0), 0x8000_0000);
        for s in &ctx.stmts {
            m.step(s).unwrap();
        }
        assert_eq!(m.eval(&Cc::L.expr()).unwrap(), 1);
        assert_eq!(m.eval(&Cc::B.expr()).unwrap(), 0, "unsigned: MIN is huge");
    }

    #[test]
    fn call_pushes_return_address() {
        let mut ctx = LiftCtx::new();
        lift(&Instr::CallRel { rel: 0x20 }, 0x1000, 5, &mut ctx);
        let mut m = Machine::new();
        m.set_reg(RegId(u16::from(ESP)), 0x2000);
        for s in &ctx.stmts {
            m.step(s).unwrap();
        }
        assert_eq!(m.reg(RegId(u16::from(ESP))), 0x1ffc);
        assert_eq!(m.load(0x1ffc, Width::W32), 0x1005);
        assert!(matches!(
            ctx.jump,
            Some(Jump::Call {
                return_to: 0x1005,
                ..
            })
        ));
    }

    #[test]
    fn ret_pops_stack() {
        let mut ctx = LiftCtx::new();
        lift(&Instr::Ret, 0, 1, &mut ctx);
        let mut m = Machine::new();
        m.set_reg(RegId(u16::from(ESP)), 0x1ffc);
        for s in &ctx.stmts {
            m.step(s).unwrap();
        }
        assert_eq!(m.reg(RegId(u16::from(ESP))), 0x2000);
        assert_eq!(ctx.jump, Some(Jump::Ret));
    }

    #[test]
    fn movsx_sign_extends() {
        let mut ctx = LiftCtx::new();
        lift(
            &Instr::Load8S {
                dst: EAX,
                mem: Mem::abs(0x100),
            },
            0,
            7,
            &mut ctx,
        );
        let mut m = Machine::new();
        m.store(0x100, 0x80, Width::W8);
        for s in &ctx.stmts {
            m.step(s).unwrap();
        }
        assert_eq!(m.reg(RegId(0)), 0xffff_ff80);
    }

    #[test]
    fn unknown_bytes_rejected() {
        assert!(decode(&[0xcc], 0, 0).is_err()); // int3 not in subset
        assert!(decode(&[0x0f, 0x05], 0, 0).is_err()); // syscall
        assert!(decode(&[0xe8, 0x01], 0, 0).is_err()); // truncated rel32
    }

    #[test]
    fn asm_text() {
        let i = Instr::Load {
            dst: EAX,
            mem: Mem::base_disp(ESP, 0x20),
        };
        assert_eq!(asm(&i, 0, 4), "mov eax, [esp+0x20]");
        let j = Instr::Jcc {
            cc: Cc::E,
            rel: 0x10,
        };
        assert_eq!(asm(&j, 0x100, 6), "je 0x116");
    }
}
