//! ARM32 (ARMv7-A, A32) subset: encoder, decoder and lifter.
//!
//! Fixed four-byte instructions, condition code on (almost) every
//! instruction, explicit flag registers N/Z/C/V. Conditional execution of
//! data-processing instructions is lifted as `ITE` merges so that every
//! register write remains explicit, as the paper requires of the IR
//! ("full representation of the machine state, including side-effects").

use std::fmt;

use firmup_ir::{BinOp, Expr, Jump, RegId, Stmt, Width};

use crate::common::{Control, DecodeError, Decoded, LiftCtx};

/// Register ids: `r0`–`r15` map to `RegId(0..=15)`.
pub const SP: u8 = 13;
/// Link register `r14`.
pub const LR: u8 = 14;
/// Program counter `r15`.
pub const PC: u8 = 15;
/// IR register id of the N (negative) flag.
pub const NF: RegId = RegId(16);
/// IR register id of the Z (zero) flag.
pub const ZF: RegId = RegId(17);
/// IR register id of the C (carry) flag.
pub const CF: RegId = RegId(18);
/// IR register id of the V (overflow) flag.
pub const VF: RegId = RegId(19);

/// Name of an IR register id, for diagnostics.
pub fn reg_name(r: RegId) -> String {
    match r.0 {
        13 => "sp".into(),
        14 => "lr".into(),
        15 => "pc".into(),
        16 => "nf".into(),
        17 => "zf".into(),
        18 => "cf".into(),
        19 => "vf".into(),
        n if n < 13 => format!("r{n}"),
        n => format!("?{n}"),
    }
}

/// ARM condition codes (encodings 0–14; `0b1111` is unallocated here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Cond {
    Eq = 0,
    Ne = 1,
    Cs = 2,
    Cc = 3,
    Mi = 4,
    Pl = 5,
    Vs = 6,
    Vc = 7,
    Hi = 8,
    Ls = 9,
    Ge = 10,
    Lt = 11,
    Gt = 12,
    Le = 13,
    Al = 14,
}

impl Cond {
    /// Decode a 4-bit condition field.
    pub fn from_bits(b: u32) -> Option<Cond> {
        use Cond::*;
        Some(match b & 0xf {
            0 => Eq,
            1 => Ne,
            2 => Cs,
            3 => Cc,
            4 => Mi,
            5 => Pl,
            6 => Vs,
            7 => Vc,
            8 => Hi,
            9 => Ls,
            10 => Ge,
            11 => Lt,
            12 => Gt,
            13 => Le,
            14 => Al,
            _ => return None,
        })
    }

    /// Mnemonic suffix (`""` for AL).
    pub fn suffix(self) -> &'static str {
        use Cond::*;
        match self {
            Eq => "eq",
            Ne => "ne",
            Cs => "cs",
            Cc => "cc",
            Mi => "mi",
            Pl => "pl",
            Vs => "vs",
            Vc => "vc",
            Hi => "hi",
            Ls => "ls",
            Ge => "ge",
            Lt => "lt",
            Gt => "gt",
            Le => "le",
            Al => "",
        }
    }

    /// The flag expression that is true when this condition holds.
    pub fn expr(self) -> Expr {
        use Cond::*;
        let n = Expr::Get(NF);
        let z = Expr::Get(ZF);
        let c = Expr::Get(CF);
        let v = Expr::Get(VF);
        let not = |e: Expr| Expr::bin(BinOp::CmpEq, e, Expr::Const(0));
        match self {
            Eq => z,
            Ne => not(z),
            Cs => c,
            Cc => not(c),
            Mi => n,
            Pl => not(n),
            Vs => v,
            Vc => not(v),
            Hi => Expr::bin(BinOp::And, c, not(z)),
            Ls => Expr::bin(BinOp::Or, not(c), z),
            Ge => Expr::bin(BinOp::CmpEq, n, v),
            Lt => Expr::bin(BinOp::CmpNe, n, v),
            Gt => Expr::bin(BinOp::And, not(z), Expr::bin(BinOp::CmpEq, n, v)),
            Le => Expr::bin(BinOp::Or, z, Expr::bin(BinOp::CmpNe, n, v)),
            Al => Expr::Const(1),
        }
    }
}

/// Shift applied to a register operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Shift {
    Lsl = 0,
    Lsr = 1,
    Asr = 2,
}

/// The flexible second operand of a data-processing instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand2 {
    /// `imm8` rotated right by `2*rot`.
    Imm {
        /// Rotation (0–15, in units of two bits).
        rot: u8,
        /// 8-bit immediate.
        imm: u8,
    },
    /// Register with an immediate shift.
    Reg {
        /// Source register.
        rm: u8,
        /// Shift kind.
        shift: Shift,
        /// Shift amount (0–31).
        amount: u8,
    },
}

impl Operand2 {
    /// A plain register operand (LSL #0).
    pub fn reg(rm: u8) -> Operand2 {
        Operand2::Reg {
            rm,
            shift: Shift::Lsl,
            amount: 0,
        }
    }

    /// Encode a small immediate if representable.
    pub fn try_imm(v: u32) -> Option<Operand2> {
        for rot in 0..16u8 {
            let val = v.rotate_left(u32::from(rot) * 2);
            if val <= 0xff {
                return Some(Operand2::Imm {
                    rot,
                    imm: val as u8,
                });
            }
        }
        None
    }

    /// Concrete value of an immediate operand.
    pub fn imm_value(rot: u8, imm: u8) -> u32 {
        u32::from(imm).rotate_right(u32::from(rot) * 2)
    }
}

/// Data-processing opcodes (the 4-bit `opcode` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum DpOp {
    And = 0,
    Eor = 1,
    Sub = 2,
    Rsb = 3,
    Add = 4,
    Tst = 8,
    Cmp = 10,
    Orr = 12,
    Mov = 13,
    Bic = 14,
    Mvn = 15,
}

impl DpOp {
    fn from_bits(b: u32) -> Option<DpOp> {
        use DpOp::*;
        Some(match b & 0xf {
            0 => And,
            1 => Eor,
            2 => Sub,
            3 => Rsb,
            4 => Add,
            8 => Tst,
            10 => Cmp,
            12 => Orr,
            13 => Mov,
            14 => Bic,
            15 => Mvn,
            _ => return None,
        })
    }

    /// Mnemonic.
    pub fn mnemonic(self) -> &'static str {
        use DpOp::*;
        match self {
            And => "and",
            Eor => "eor",
            Sub => "sub",
            Rsb => "rsb",
            Add => "add",
            Tst => "tst",
            Cmp => "cmp",
            Orr => "orr",
            Mov => "mov",
            Bic => "bic",
            Mvn => "mvn",
        }
    }

    /// Whether the opcode discards its result (compare/test class).
    pub fn discards_result(self) -> bool {
        matches!(self, DpOp::Tst | DpOp::Cmp)
    }
}

/// Our ARM32 instruction subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Instr {
    Dp {
        cond: Cond,
        op: DpOp,
        s: bool,
        rn: u8,
        rd: u8,
        op2: Operand2,
    },
    Movw {
        cond: Cond,
        rd: u8,
        imm: u16,
    },
    Movt {
        cond: Cond,
        rd: u8,
        imm: u16,
    },
    Mul {
        cond: Cond,
        rd: u8,
        rm: u8,
        rs: u8,
    },
    Ldr {
        cond: Cond,
        byte: bool,
        rd: u8,
        rn: u8,
        up: bool,
        off: u16,
    },
    Str {
        cond: Cond,
        byte: bool,
        rd: u8,
        rn: u8,
        up: bool,
        off: u16,
    },
    B {
        cond: Cond,
        off: i32,
    },
    Bl {
        cond: Cond,
        off: i32,
    },
    Bx {
        cond: Cond,
        rm: u8,
    },
}

/// Encode one instruction to its 32-bit word.
pub fn encode_word(i: &Instr) -> u32 {
    use Instr::*;
    match *i {
        Dp {
            cond,
            op,
            s,
            rn,
            rd,
            op2,
        } => {
            let (ibit, op2bits) = match op2 {
                Operand2::Imm { rot, imm } => (1u32, (u32::from(rot) << 8) | u32::from(imm)),
                Operand2::Reg { rm, shift, amount } => (
                    0,
                    (u32::from(amount) << 7) | ((shift as u32) << 5) | u32::from(rm),
                ),
            };
            ((cond as u32) << 28)
                | (ibit << 25)
                | ((op as u32) << 21)
                | (u32::from(s) << 20)
                | (u32::from(rn) << 16)
                | (u32::from(rd) << 12)
                | op2bits
        }
        Movw { cond, rd, imm } => {
            ((cond as u32) << 28)
                | (0x30 << 20)
                | ((u32::from(imm) >> 12) << 16)
                | (u32::from(rd) << 12)
                | (u32::from(imm) & 0xfff)
        }
        Movt { cond, rd, imm } => {
            ((cond as u32) << 28)
                | (0x34 << 20)
                | ((u32::from(imm) >> 12) << 16)
                | (u32::from(rd) << 12)
                | (u32::from(imm) & 0xfff)
        }
        Mul { cond, rd, rm, rs } => {
            ((cond as u32) << 28)
                | (u32::from(rd) << 16)
                | (u32::from(rs) << 8)
                | 0x90
                | u32::from(rm)
        }
        Ldr {
            cond,
            byte,
            rd,
            rn,
            up,
            off,
        }
        | Str {
            cond,
            byte,
            rd,
            rn,
            up,
            off,
        } => {
            let load = matches!(i, Ldr { .. });
            ((cond as u32) << 28)
                | (0b01 << 26)
                | (1 << 24) // P
                | (u32::from(up) << 23)
                | (u32::from(byte) << 22)
                | (u32::from(load) << 20)
                | (u32::from(rn) << 16)
                | (u32::from(rd) << 12)
                | u32::from(off & 0xfff)
        }
        B { cond, off } => ((cond as u32) << 28) | (0b1010 << 24) | ((off as u32) & 0x00ff_ffff),
        Bl { cond, off } => ((cond as u32) << 28) | (0b1011 << 24) | ((off as u32) & 0x00ff_ffff),
        Bx { cond, rm } => ((cond as u32) << 28) | 0x012f_ff10 | u32::from(rm),
    }
}

/// Append the little-endian encoding of `i` to `buf`.
pub fn encode(i: &Instr, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&encode_word(i).to_le_bytes());
}

fn sext24(v: u32) -> i32 {
    ((v << 8) as i32) >> 8
}

/// Decode the instruction at `bytes[offset..]`, located at `addr`.
///
/// # Errors
///
/// [`DecodeError::Truncated`] / [`DecodeError::Unknown`].
pub fn decode(bytes: &[u8], offset: usize, addr: u32) -> Result<(Instr, u32), DecodeError> {
    let chunk = bytes
        .get(offset..offset + 4)
        .ok_or(DecodeError::Truncated { addr })?;
    let w = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    let cond = Cond::from_bits(w >> 28).ok_or(DecodeError::Unknown { addr, word: w })?;
    let unknown = DecodeError::Unknown { addr, word: w };
    use Instr::*;

    // BX (exact pattern, before data processing).
    if w & 0x0fff_fff0 == 0x012f_ff10 {
        return Ok((
            Bx {
                cond,
                rm: (w & 0xf) as u8,
            },
            4,
        ));
    }
    // MUL.
    if w & 0x0fc0_00f0 == 0x0000_0090 {
        return Ok((
            Mul {
                cond,
                rd: ((w >> 16) & 0xf) as u8,
                rs: ((w >> 8) & 0xf) as u8,
                rm: (w & 0xf) as u8,
            },
            4,
        ));
    }
    // MOVW / MOVT.
    let top8 = (w >> 20) & 0xff;
    if top8 == 0x30 || top8 == 0x34 {
        let imm = (((w >> 16) & 0xf) << 12 | (w & 0xfff)) as u16;
        let rd = ((w >> 12) & 0xf) as u8;
        return Ok((
            if top8 == 0x30 {
                Movw { cond, rd, imm }
            } else {
                Movt { cond, rd, imm }
            },
            4,
        ));
    }
    match (w >> 26) & 3 {
        0b00 => {
            let i_bit = (w >> 25) & 1;
            let op = DpOp::from_bits(w >> 21).ok_or_else(|| unknown.clone())?;
            let s = (w >> 20) & 1 == 1;
            if op.discards_result() && !s {
                return Err(unknown);
            }
            let rn = ((w >> 16) & 0xf) as u8;
            let rd = ((w >> 12) & 0xf) as u8;
            let op2 = if i_bit == 1 {
                Operand2::Imm {
                    rot: ((w >> 8) & 0xf) as u8,
                    imm: (w & 0xff) as u8,
                }
            } else {
                if (w >> 4) & 1 == 1 {
                    return Err(unknown); // register-shifted register: unsupported
                }
                let shift = match (w >> 5) & 3 {
                    0 => Shift::Lsl,
                    1 => Shift::Lsr,
                    2 => Shift::Asr,
                    _ => return Err(unknown),
                };
                Operand2::Reg {
                    rm: (w & 0xf) as u8,
                    shift,
                    amount: ((w >> 7) & 0x1f) as u8,
                }
            };
            Ok((
                Dp {
                    cond,
                    op,
                    s,
                    rn,
                    rd,
                    op2,
                },
                4,
            ))
        }
        0b01 => {
            // Load/store immediate offset, P=1, W=0, I=0 only.
            if (w >> 25) & 1 == 1 || (w >> 24) & 1 == 0 || (w >> 21) & 1 == 1 {
                return Err(unknown);
            }
            if cond != Cond::Al {
                return Err(unknown); // conditional memory ops: not in our subset
            }
            let load = (w >> 20) & 1 == 1;
            let byte = (w >> 22) & 1 == 1;
            let up = (w >> 23) & 1 == 1;
            let rn = ((w >> 16) & 0xf) as u8;
            let rd = ((w >> 12) & 0xf) as u8;
            let off = (w & 0xfff) as u16;
            Ok((
                if load {
                    Ldr {
                        cond,
                        byte,
                        rd,
                        rn,
                        up,
                        off,
                    }
                } else {
                    Str {
                        cond,
                        byte,
                        rd,
                        rn,
                        up,
                        off,
                    }
                },
                4,
            ))
        }
        0b10 => {
            if (w >> 25) & 7 != 0b101 {
                return Err(unknown);
            }
            let off = sext24(w & 0x00ff_ffff);
            Ok((
                if (w >> 24) & 1 == 1 {
                    Bl { cond, off }
                } else {
                    B { cond, off }
                },
                4,
            ))
        }
        _ => Err(unknown),
    }
}

fn branch_target(addr: u32, off: i32) -> u32 {
    addr.wrapping_add(8).wrapping_add((off << 2) as u32)
}

/// Control-flow classification.
pub fn control(i: &Instr, addr: u32) -> Control {
    use Instr::*;
    match *i {
        B {
            cond: Cond::Al,
            off,
        } => Control::Jump(branch_target(addr, off)),
        B { off, .. } => Control::CondJump(branch_target(addr, off)),
        Bl { off, .. } => Control::Call(branch_target(addr, off)),
        Bx { rm, .. } if rm == LR => Control::Ret,
        Bx { .. } => Control::IndirectJump,
        // Writing PC with a data-processing op is an indirect jump.
        Dp { rd: 15, op, .. } if !op.discards_result() => Control::IndirectJump,
        _ => Control::Fall,
    }
}

/// Disassembly text.
pub fn asm(i: &Instr, addr: u32) -> String {
    use Instr::*;
    let r = |n: u8| reg_name(RegId(u16::from(n)));
    let op2s = |op2: &Operand2| match *op2 {
        Operand2::Imm { rot, imm } => format!("#{:#x}", Operand2::imm_value(rot, imm)),
        Operand2::Reg { rm, shift, amount } if amount == 0 && shift == Shift::Lsl => r(rm),
        Operand2::Reg { rm, shift, amount } => {
            let s = match shift {
                Shift::Lsl => "lsl",
                Shift::Lsr => "lsr",
                Shift::Asr => "asr",
            };
            format!("{}, {s} #{amount}", r(rm))
        }
    };
    match i {
        Dp {
            cond,
            op,
            s,
            rn,
            rd,
            op2,
        } => {
            let sfx = cond.suffix();
            let sbit = if *s && !op.discards_result() { "s" } else { "" };
            match op {
                DpOp::Mov | DpOp::Mvn => {
                    format!("{}{sfx}{sbit} {}, {}", op.mnemonic(), r(*rd), op2s(op2))
                }
                DpOp::Cmp | DpOp::Tst => {
                    format!("{}{sfx} {}, {}", op.mnemonic(), r(*rn), op2s(op2))
                }
                _ => format!(
                    "{}{sfx}{sbit} {}, {}, {}",
                    op.mnemonic(),
                    r(*rd),
                    r(*rn),
                    op2s(op2)
                ),
            }
        }
        Movw { cond, rd, imm } => format!("movw{} {}, #{imm:#x}", cond.suffix(), r(*rd)),
        Movt { cond, rd, imm } => format!("movt{} {}, #{imm:#x}", cond.suffix(), r(*rd)),
        Mul { cond, rd, rm, rs } => {
            format!("mul{} {}, {}, {}", cond.suffix(), r(*rd), r(*rm), r(*rs))
        }
        Ldr {
            byte,
            rd,
            rn,
            up,
            off,
            ..
        } => {
            let b = if *byte { "b" } else { "" };
            let sign = if *up { "" } else { "-" };
            format!("ldr{b} {}, [{}, #{sign}{off:#x}]", r(*rd), r(*rn))
        }
        Str {
            byte,
            rd,
            rn,
            up,
            off,
            ..
        } => {
            let b = if *byte { "b" } else { "" };
            let sign = if *up { "" } else { "-" };
            format!("str{b} {}, [{}, #{sign}{off:#x}]", r(*rd), r(*rn))
        }
        B { cond, off } => format!("b{} {:#x}", cond.suffix(), branch_target(addr, *off)),
        Bl { cond, off } => format!("bl{} {:#x}", cond.suffix(), branch_target(addr, *off)),
        Bx { cond, rm } => format!("bx{} {}", cond.suffix(), r(*rm)),
    }
}

fn get(r: u8, addr: u32) -> Expr {
    if r == PC {
        // Reading PC in A32 yields the instruction address plus 8.
        Expr::Const(addr.wrapping_add(8))
    } else {
        Expr::Get(RegId(u16::from(r)))
    }
}

/// Write `rd`, honouring a condition by merging with the old value.
fn put_cond(ctx: &mut LiftCtx, cond: Cond, rd: u8, value: Expr) {
    let dst = RegId(u16::from(rd));
    if cond == Cond::Al {
        ctx.emit(Stmt::Put(dst, value));
    } else {
        let guard = ctx.bind(cond.expr());
        ctx.emit(Stmt::Put(dst, Expr::ite(guard, value, Expr::Get(dst))));
    }
}

fn set_nz(ctx: &mut LiftCtx, cond: Cond, res: &Expr) {
    put_cond_flag(
        ctx,
        cond,
        NF,
        Expr::bin(BinOp::CmpLtS, res.clone(), Expr::Const(0)),
    );
    put_cond_flag(
        ctx,
        cond,
        ZF,
        Expr::bin(BinOp::CmpEq, res.clone(), Expr::Const(0)),
    );
}

fn put_cond_flag(ctx: &mut LiftCtx, cond: Cond, flag: RegId, value: Expr) {
    if cond == Cond::Al {
        ctx.emit(Stmt::Put(flag, value));
    } else {
        let guard = ctx.bind(cond.expr());
        ctx.emit(Stmt::Put(flag, Expr::ite(guard, value, Expr::Get(flag))));
    }
}

fn sign_bit(e: Expr) -> Expr {
    Expr::bin(BinOp::Shr, e, Expr::Const(31))
}

/// Lift one instruction into `ctx`.
pub fn lift(i: &Instr, addr: u32, ctx: &mut LiftCtx) {
    use Instr::*;
    let next = addr.wrapping_add(4);
    match *i {
        Dp {
            cond,
            op,
            s,
            rn,
            rd,
            op2,
        } => {
            let a = get(rn, addr);
            let b = match op2 {
                Operand2::Imm { rot, imm } => Expr::Const(Operand2::imm_value(rot, imm)),
                Operand2::Reg { rm, shift, amount } => {
                    let base = get(rm, addr);
                    if amount == 0 && shift == Shift::Lsl {
                        base
                    } else {
                        let opk = match shift {
                            Shift::Lsl => BinOp::Shl,
                            Shift::Lsr => BinOp::Shr,
                            Shift::Asr => BinOp::Sar,
                        };
                        Expr::bin(opk, base, Expr::Const(u32::from(amount)))
                    }
                }
            };
            let a = ctx.bind(a);
            let b = ctx.bind(b);
            let (result, carry, overflow): (Expr, Option<Expr>, Option<Expr>) = match op {
                DpOp::And | DpOp::Tst => (Expr::bin(BinOp::And, a.clone(), b.clone()), None, None),
                DpOp::Eor => (Expr::bin(BinOp::Xor, a.clone(), b.clone()), None, None),
                DpOp::Orr => (Expr::bin(BinOp::Or, a.clone(), b.clone()), None, None),
                DpOp::Bic => (
                    Expr::bin(
                        BinOp::And,
                        a.clone(),
                        Expr::un(firmup_ir::UnOp::Not, b.clone()),
                    ),
                    None,
                    None,
                ),
                DpOp::Mov => (b.clone(), None, None),
                DpOp::Mvn => (Expr::un(firmup_ir::UnOp::Not, b.clone()), None, None),
                DpOp::Add => {
                    let res = Expr::bin(BinOp::Add, a.clone(), b.clone());
                    let res_t = ctx.bind(res);
                    let c = Expr::bin(BinOp::CmpLtU, res_t.clone(), a.clone());
                    let v = Expr::bin(
                        BinOp::And,
                        sign_bit(Expr::bin(BinOp::Xor, a.clone(), res_t.clone())),
                        sign_bit(Expr::bin(BinOp::Xor, b.clone(), res_t.clone())),
                    );
                    (res_t, Some(c), Some(v))
                }
                DpOp::Sub | DpOp::Cmp => {
                    let res = Expr::bin(BinOp::Sub, a.clone(), b.clone());
                    let res_t = ctx.bind(res);
                    let c = Expr::bin(BinOp::CmpLeU, b.clone(), a.clone());
                    let v = Expr::bin(
                        BinOp::And,
                        sign_bit(Expr::bin(BinOp::Xor, a.clone(), b.clone())),
                        sign_bit(Expr::bin(BinOp::Xor, a.clone(), res_t.clone())),
                    );
                    (res_t, Some(c), Some(v))
                }
                DpOp::Rsb => {
                    let res = Expr::bin(BinOp::Sub, b.clone(), a.clone());
                    let res_t = ctx.bind(res);
                    let c = Expr::bin(BinOp::CmpLeU, a.clone(), b.clone());
                    let v = Expr::bin(
                        BinOp::And,
                        sign_bit(Expr::bin(BinOp::Xor, b.clone(), a.clone())),
                        sign_bit(Expr::bin(BinOp::Xor, b.clone(), res_t.clone())),
                    );
                    (res_t, Some(c), Some(v))
                }
            };
            let result = ctx.bind(result);
            if !op.discards_result() {
                if rd == PC {
                    ctx.terminate(Jump::Indirect(result.clone()));
                    return;
                }
                put_cond(ctx, cond, rd, result.clone());
            }
            if s || op.discards_result() {
                set_nz(ctx, cond, &result);
                if let Some(c) = carry {
                    put_cond_flag(ctx, cond, CF, c);
                }
                if let Some(v) = overflow {
                    put_cond_flag(ctx, cond, VF, v);
                }
            }
        }
        Movw { cond, rd, imm } => put_cond(ctx, cond, rd, Expr::Const(u32::from(imm))),
        Movt { cond, rd, imm } => {
            let low = Expr::bin(
                BinOp::And,
                Expr::Get(RegId(u16::from(rd))),
                Expr::Const(0xffff),
            );
            put_cond(
                ctx,
                cond,
                rd,
                Expr::bin(BinOp::Or, low, Expr::Const(u32::from(imm) << 16)),
            );
        }
        Mul { cond, rd, rm, rs } => {
            put_cond(
                ctx,
                cond,
                rd,
                Expr::bin(BinOp::Mul, get(rm, addr), get(rs, addr)),
            );
        }
        Ldr {
            byte,
            rd,
            rn,
            up,
            off,
            ..
        } => {
            let disp = if up {
                u32::from(off)
            } else {
                (u32::from(off)).wrapping_neg()
            };
            let a = if disp == 0 {
                get(rn, addr)
            } else {
                Expr::bin(BinOp::Add, get(rn, addr), Expr::Const(disp))
            };
            let w = if byte { Width::W8 } else { Width::W32 };
            put_cond(ctx, Cond::Al, rd, Expr::load(a, w));
        }
        Str {
            byte,
            rd,
            rn,
            up,
            off,
            ..
        } => {
            let disp = if up {
                u32::from(off)
            } else {
                (u32::from(off)).wrapping_neg()
            };
            let a = if disp == 0 {
                get(rn, addr)
            } else {
                Expr::bin(BinOp::Add, get(rn, addr), Expr::Const(disp))
            };
            ctx.emit(Stmt::Store {
                addr: a,
                value: get(rd, addr),
                width: if byte { Width::W8 } else { Width::W32 },
            });
        }
        B { cond, off } => {
            let target = branch_target(addr, off);
            if cond == Cond::Al {
                ctx.terminate(Jump::Direct(target));
            } else {
                ctx.emit(Stmt::Exit {
                    cond: cond.expr(),
                    target,
                });
                ctx.terminate(Jump::Fall(next));
            }
        }
        Bl { off, .. } => {
            let target = branch_target(addr, off);
            ctx.emit(Stmt::Put(RegId(u16::from(LR)), Expr::Const(next)));
            ctx.terminate(Jump::Call {
                target: firmup_ir::CallTarget::Direct(target),
                return_to: next,
            });
        }
        Bx { rm, .. } => {
            if rm == LR {
                ctx.terminate(Jump::Ret);
            } else {
                ctx.terminate(Jump::Indirect(get(rm, addr)));
            }
        }
    }
}

/// Decode and lift one instruction, appending statements to `ctx`.
///
/// # Errors
///
/// Propagates decode errors.
pub fn lift_into(
    bytes: &[u8],
    offset: usize,
    addr: u32,
    ctx: &mut LiftCtx,
) -> Result<Decoded, DecodeError> {
    let (i, len) = decode(bytes, offset, addr)?;
    let ctrl = control(&i, addr);
    lift(&i, addr, ctx);
    Ok(Decoded {
        len,
        asm: asm(&i, addr),
        ctrl,
        delay_slot: false,
    })
}

/// Decode one instruction without lifting.
///
/// # Errors
///
/// Propagates decode errors.
pub fn decode_info(bytes: &[u8], offset: usize, addr: u32) -> Result<Decoded, DecodeError> {
    let (i, len) = decode(bytes, offset, addr)?;
    Ok(Decoded {
        len,
        asm: asm(&i, addr),
        ctrl: control(&i, addr),
        delay_slot: false,
    })
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&asm(self, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmup_ir::Machine;

    fn rt(i: Instr) {
        let mut buf = Vec::new();
        encode(&i, &mut buf);
        let (d, len) = decode(&buf, 0, 0x8000).expect("decode");
        assert_eq!(len, 4);
        assert_eq!(d, i);
    }

    #[test]
    fn encode_decode_roundtrip_all_forms() {
        for i in [
            Instr::Dp {
                cond: Cond::Al,
                op: DpOp::Add,
                s: false,
                rn: 1,
                rd: 0,
                op2: Operand2::Imm { rot: 0, imm: 4 },
            },
            Instr::Dp {
                cond: Cond::Al,
                op: DpOp::Sub,
                s: true,
                rn: 2,
                rd: 3,
                op2: Operand2::reg(4),
            },
            Instr::Dp {
                cond: Cond::Ne,
                op: DpOp::Mov,
                s: false,
                rn: 0,
                rd: 5,
                op2: Operand2::Reg {
                    rm: 6,
                    shift: Shift::Asr,
                    amount: 2,
                },
            },
            Instr::Dp {
                cond: Cond::Al,
                op: DpOp::Cmp,
                s: true,
                rn: 0,
                rd: 0,
                op2: Operand2::Imm { rot: 0, imm: 0x1f },
            },
            Instr::Movw {
                cond: Cond::Al,
                rd: 1,
                imm: 0xbeef,
            },
            Instr::Movt {
                cond: Cond::Al,
                rd: 1,
                imm: 0xdead,
            },
            Instr::Mul {
                cond: Cond::Al,
                rd: 2,
                rm: 3,
                rs: 4,
            },
            Instr::Ldr {
                cond: Cond::Al,
                byte: false,
                rd: 0,
                rn: SP,
                up: true,
                off: 8,
            },
            Instr::Ldr {
                cond: Cond::Al,
                byte: true,
                rd: 1,
                rn: 2,
                up: false,
                off: 1,
            },
            Instr::Str {
                cond: Cond::Al,
                byte: false,
                rd: 0,
                rn: SP,
                up: true,
                off: 4,
            },
            Instr::Str {
                cond: Cond::Al,
                byte: true,
                rd: 3,
                rn: 4,
                up: true,
                off: 0,
            },
            Instr::B {
                cond: Cond::Al,
                off: 10,
            },
            Instr::B {
                cond: Cond::Eq,
                off: -2,
            },
            Instr::Bl {
                cond: Cond::Al,
                off: 0x1000,
            },
            Instr::Bx {
                cond: Cond::Al,
                rm: LR,
            },
        ] {
            rt(i);
        }
    }

    #[test]
    fn operand2_imm_encoding() {
        assert_eq!(
            Operand2::try_imm(0xff),
            Some(Operand2::Imm { rot: 0, imm: 0xff })
        );
        let o = Operand2::try_imm(0x1_0000).expect("representable");
        if let Operand2::Imm { rot, imm } = o {
            assert_eq!(Operand2::imm_value(rot, imm), 0x1_0000);
        }
        assert_eq!(Operand2::try_imm(0x1234_5678), None);
    }

    #[test]
    fn branch_target_uses_pc_plus_8() {
        let i = Instr::B {
            cond: Cond::Al,
            off: 1,
        };
        assert_eq!(control(&i, 0x100), Control::Jump(0x10c));
    }

    #[test]
    fn bx_lr_is_return() {
        assert_eq!(
            control(
                &Instr::Bx {
                    cond: Cond::Al,
                    rm: LR
                },
                0
            ),
            Control::Ret
        );
        assert_eq!(
            control(
                &Instr::Bx {
                    cond: Cond::Al,
                    rm: 3
                },
                0
            ),
            Control::IndirectJump
        );
    }

    #[test]
    fn lift_add_and_flags() {
        let mut ctx = LiftCtx::new();
        lift(
            &Instr::Dp {
                cond: Cond::Al,
                op: DpOp::Cmp,
                s: true,
                rn: 0,
                rd: 0,
                op2: Operand2::Imm { rot: 0, imm: 5 },
            },
            0,
            &mut ctx,
        );
        let mut m = Machine::new();
        m.set_reg(RegId(0), 5);
        for s in &ctx.stmts {
            m.step(s).unwrap();
        }
        assert_eq!(m.reg(ZF), 1);
        assert_eq!(m.reg(NF), 0);
        assert_eq!(m.reg(CF), 1, "no borrow");
        assert_eq!(m.reg(VF), 0);
    }

    #[test]
    fn conditional_mov_merges_old_value() {
        // movne r0, #7 with Z=1 must keep r0.
        let mut ctx = LiftCtx::new();
        lift(
            &Instr::Dp {
                cond: Cond::Ne,
                op: DpOp::Mov,
                s: false,
                rn: 0,
                rd: 0,
                op2: Operand2::Imm { rot: 0, imm: 7 },
            },
            0,
            &mut ctx,
        );
        let mut m = Machine::new();
        m.set_reg(RegId(0), 42);
        m.set_reg(ZF, 1);
        for s in &ctx.stmts {
            m.step(s).unwrap();
        }
        assert_eq!(m.reg(RegId(0)), 42);
        m.set_reg(ZF, 0);
        for s in &ctx.stmts {
            m.step(s).unwrap();
        }
        assert_eq!(m.reg(RegId(0)), 7);
    }

    #[test]
    fn movw_movt_build_constant() {
        let mut ctx = LiftCtx::new();
        lift(
            &Instr::Movw {
                cond: Cond::Al,
                rd: 1,
                imm: 0x5678,
            },
            0,
            &mut ctx,
        );
        lift(
            &Instr::Movt {
                cond: Cond::Al,
                rd: 1,
                imm: 0x1234,
            },
            4,
            &mut ctx,
        );
        let mut m = Machine::new();
        for s in &ctx.stmts {
            m.step(s).unwrap();
        }
        assert_eq!(m.reg(RegId(1)), 0x1234_5678);
    }

    #[test]
    fn conditional_branch_lift() {
        let mut ctx = LiftCtx::new();
        lift(
            &Instr::B {
                cond: Cond::Eq,
                off: 2,
            },
            0x1000,
            &mut ctx,
        );
        assert!(matches!(ctx.stmts[0], Stmt::Exit { target: 0x1010, .. }));
        assert_eq!(ctx.jump, Some(Jump::Fall(0x1004)));
    }

    #[test]
    fn bl_sets_lr() {
        let mut ctx = LiftCtx::new();
        lift(
            &Instr::Bl {
                cond: Cond::Al,
                off: 4,
            },
            0x2000,
            &mut ctx,
        );
        assert_eq!(ctx.stmts[0], Stmt::Put(RegId(14), Expr::Const(0x2004)));
        assert!(matches!(
            ctx.jump,
            Some(Jump::Call {
                return_to: 0x2004,
                ..
            })
        ));
    }

    #[test]
    fn str_negative_offset() {
        let mut ctx = LiftCtx::new();
        lift(
            &Instr::Str {
                cond: Cond::Al,
                byte: false,
                rd: 0,
                rn: SP,
                up: false,
                off: 4,
            },
            0,
            &mut ctx,
        );
        let mut m = Machine::new();
        m.set_reg(RegId(u16::from(SP)), 0x100);
        m.set_reg(RegId(0), 99);
        for s in &ctx.stmts {
            m.step(s).unwrap();
        }
        assert_eq!(m.load(0xfc, Width::W32), 99);
    }

    #[test]
    fn condition_exprs_match_reference_semantics() {
        use Cond::*;
        let reference = |c: Cond, n: u32, z: u32, cf: u32, v: u32| -> u32 {
            let b = match c {
                Eq => z == 1,
                Ne => z == 0,
                Cs => cf == 1,
                Cc => cf == 0,
                Mi => n == 1,
                Pl => n == 0,
                Vs => v == 1,
                Vc => v == 0,
                Hi => cf == 1 && z == 0,
                Ls => cf == 0 || z == 1,
                Ge => n == v,
                Lt => n != v,
                Gt => z == 0 && n == v,
                Le => z == 1 || n != v,
                Al => true,
            };
            u32::from(b)
        };
        for cond in [Eq, Ne, Cs, Cc, Mi, Pl, Vs, Vc, Hi, Ls, Ge, Lt, Gt, Le, Al] {
            for bits in 0u32..16 {
                let (n, z, c, v) = (bits & 1, (bits >> 1) & 1, (bits >> 2) & 1, (bits >> 3) & 1);
                let mut m = Machine::new();
                m.set_reg(NF, n);
                m.set_reg(ZF, z);
                m.set_reg(CF, c);
                m.set_reg(VF, v);
                assert_eq!(
                    m.eval(&cond.expr()).unwrap(),
                    reference(cond, n, z, c, v),
                    "{cond:?} with N={n} Z={z} C={c} V={v}"
                );
            }
        }
    }

    #[test]
    fn flag_setting_matches_reference_for_random_operands() {
        // cmp a, b must make every condition agree with the signed /
        // unsigned relation it encodes, across tricky operand pairs.
        let cases = [
            (0u32, 0u32),
            (1, 2),
            (2, 1),
            (0x8000_0000, 1),
            (1, 0x8000_0000),
            (0x7fff_ffff, 0xffff_ffff),
            (0xffff_ffff, 0x7fff_ffff),
            (0x8000_0000, 0x8000_0000),
            (u32::MAX, u32::MAX),
            (0x1234_5678, 0x8765_4321),
        ];
        for (a, b) in cases {
            let mut ctx = LiftCtx::new();
            lift(
                &Instr::Dp {
                    cond: Cond::Al,
                    op: DpOp::Cmp,
                    s: true,
                    rn: 0,
                    rd: 0,
                    op2: Operand2::reg(1),
                },
                0,
                &mut ctx,
            );
            let mut m = Machine::new();
            m.set_reg(RegId(0), a);
            m.set_reg(RegId(1), b);
            for st in &ctx.stmts {
                m.step(st).unwrap();
            }
            let checks: [(Cond, bool); 10] = [
                (Cond::Eq, a == b),
                (Cond::Ne, a != b),
                (Cond::Lt, (a as i32) < (b as i32)),
                (Cond::Ge, (a as i32) >= (b as i32)),
                (Cond::Gt, (a as i32) > (b as i32)),
                (Cond::Le, (a as i32) <= (b as i32)),
                (Cond::Cs, a >= b),
                (Cond::Cc, a < b),
                (Cond::Hi, a > b),
                (Cond::Ls, a <= b),
            ];
            for (cond, expect) in checks {
                assert_eq!(
                    m.eval(&cond.expr()).unwrap(),
                    u32::from(expect),
                    "cmp {a:#x},{b:#x} then {cond:?}"
                );
            }
        }
    }

    #[test]
    fn unknown_patterns_rejected() {
        // Condition field 0b1111.
        let w = 0xf000_0000u32.to_le_bytes();
        assert!(decode(&w, 0, 0).is_err());
        // Register-shifted register (bit 4 set in DP reg form).
        let w2 = 0xe000_0012u32.to_le_bytes(); // and r0, r0, r2 lsl r0
        assert!(decode(&w2, 0, 0).is_err());
    }

    #[test]
    fn asm_text() {
        assert_eq!(
            asm(
                &Instr::Dp {
                    cond: Cond::Al,
                    op: DpOp::Add,
                    s: false,
                    rn: 1,
                    rd: 0,
                    op2: Operand2::Imm { rot: 0, imm: 4 }
                },
                0
            ),
            "add r0, r1, #0x4"
        );
        assert_eq!(
            asm(
                &Instr::Bx {
                    cond: Cond::Al,
                    rm: LR
                },
                0
            ),
            "bx lr"
        );
    }
}
