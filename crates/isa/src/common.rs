//! Shared types for the four instruction-set back ends.

use std::fmt;

use firmup_ir::{Expr, Jump, Stmt, Temp};

/// The four firmware architectures the paper targets (§1.1: "MIPS32,
/// ARM32, PPC32, and Intel-x86").
///
/// All four are modeled as little-endian for both code and data (real
/// firmware ships MIPSel and ARMel widely; using one byte order for PPC
/// as well keeps the pipeline uniform without changing anything the
/// similarity algorithms can observe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Arch {
    /// MIPS32 (with branch delay slots).
    Mips32,
    /// ARM32 (ARMv7, with condition codes on every instruction).
    Arm32,
    /// PowerPC 32-bit (condition-register fields).
    Ppc32,
    /// Intel x86, 32-bit protected mode (variable-length encoding).
    X86,
}

impl Arch {
    /// All supported architectures.
    pub fn all() -> [Arch; 4] {
        [Arch::Mips32, Arch::Arm32, Arch::Ppc32, Arch::X86]
    }

    /// Short lowercase name (`"mips32"`, `"arm32"`, `"ppc32"`, `"x86"`).
    pub fn name(self) -> &'static str {
        match self {
            Arch::Mips32 => "mips32",
            Arch::Arm32 => "arm32",
            Arch::Ppc32 => "ppc32",
            Arch::X86 => "x86",
        }
    }

    /// The ELF `e_machine` value used by `firmup-obj` for this
    /// architecture (EM_MIPS=8, EM_ARM=40, EM_PPC=20, EM_386=3).
    pub fn elf_machine(self) -> u16 {
        match self {
            Arch::Mips32 => 8,
            Arch::Arm32 => 40,
            Arch::Ppc32 => 20,
            Arch::X86 => 3,
        }
    }

    /// Inverse of [`Arch::elf_machine`].
    pub fn from_elf_machine(m: u16) -> Option<Arch> {
        match m {
            8 => Some(Arch::Mips32),
            40 => Some(Arch::Arm32),
            20 => Some(Arch::Ppc32),
            3 => Some(Arch::X86),
            _ => None,
        }
    }

    /// Whether instructions are a fixed four bytes (everything but x86).
    pub fn fixed_width(self) -> bool {
        !matches!(self, Arch::X86)
    }

    /// Whether branches have a delay slot (MIPS only).
    pub fn has_delay_slots(self) -> bool {
        matches!(self, Arch::Mips32)
    }
}

impl fmt::Display for Arch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes remained than the (minimum) instruction length.
    Truncated {
        /// Address at which decoding was attempted.
        addr: u32,
    },
    /// The byte pattern does not correspond to an instruction in our
    /// subset of the architecture.
    Unknown {
        /// Address of the undecodable instruction.
        addr: u32,
        /// The first (up to four) raw bytes, for diagnostics.
        word: u32,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { addr } => write!(f, "truncated instruction at {addr:#x}"),
            DecodeError::Unknown { addr, word } => {
                write!(f, "unknown instruction {word:#010x} at {addr:#x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Control-flow classification of a decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Ordinary instruction; execution continues at the next address.
    Fall,
    /// Unconditional direct branch.
    Jump(u32),
    /// Conditional branch; `0` is the taken target, fallthrough implicit.
    CondJump(u32),
    /// Unconditional indirect branch (e.g. `jr t9`).
    IndirectJump,
    /// Direct procedure call.
    Call(u32),
    /// Indirect procedure call.
    IndirectCall,
    /// Procedure return.
    Ret,
}

impl Control {
    /// Whether this instruction terminates a basic block.
    pub fn is_terminator(self) -> bool {
        !matches!(self, Control::Fall)
    }

    /// The direct branch/call target, if any.
    pub fn target(self) -> Option<u32> {
        match self {
            Control::Jump(t) | Control::CondJump(t) | Control::Call(t) => Some(t),
            _ => None,
        }
    }
}

/// Result of decoding (and possibly lifting) one instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decoded {
    /// Instruction length in bytes.
    pub len: u32,
    /// Disassembly text.
    pub asm: String,
    /// Control-flow classification.
    pub ctrl: Control,
    /// `true` when the following instruction is this branch's delay slot
    /// (MIPS).
    pub delay_slot: bool,
}

/// Accumulates lifted statements for one basic block.
///
/// A single `LiftCtx` spans all instructions of a block so that
/// temporary numbering stays unique across them.
#[derive(Debug, Default)]
pub struct LiftCtx {
    /// Lifted statements so far.
    pub stmts: Vec<Stmt>,
    /// The block terminator, set by the instruction that ends the block.
    pub jump: Option<Jump>,
    next_tmp: u32,
}

impl LiftCtx {
    /// Fresh context for a new block.
    pub fn new() -> LiftCtx {
        LiftCtx::default()
    }

    /// Allocate a fresh single-assignment temporary.
    pub fn tmp(&mut self) -> Temp {
        let t = Temp(self.next_tmp);
        self.next_tmp += 1;
        t
    }

    /// Append a statement.
    pub fn emit(&mut self, s: Stmt) {
        self.stmts.push(s);
    }

    /// Bind an expression to a fresh temporary and return a read of it.
    /// Constants and bare temp reads pass through unchanged, keeping the
    /// lifted form close to what VEX produces.
    pub fn bind(&mut self, e: Expr) -> Expr {
        match e {
            Expr::Const(_) | Expr::Tmp(_) => e,
            other => {
                let t = self.tmp();
                self.emit(Stmt::SetTmp(t, other));
                Expr::Tmp(t)
            }
        }
    }

    /// Set the block terminator.
    ///
    /// # Panics
    ///
    /// Panics if a terminator was already set — a block has exactly one.
    pub fn terminate(&mut self, j: Jump) {
        assert!(self.jump.is_none(), "block terminated twice");
        self.jump = Some(j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_roundtrips_elf_machine() {
        for a in Arch::all() {
            assert_eq!(Arch::from_elf_machine(a.elf_machine()), Some(a));
        }
        assert_eq!(Arch::from_elf_machine(62), None);
    }

    #[test]
    fn control_classification() {
        assert!(!Control::Fall.is_terminator());
        assert!(Control::Ret.is_terminator());
        assert_eq!(Control::CondJump(0x40).target(), Some(0x40));
        assert_eq!(Control::IndirectJump.target(), None);
    }

    #[test]
    fn liftctx_tmp_numbering_and_bind() {
        let mut ctx = LiftCtx::new();
        assert_eq!(ctx.tmp(), Temp(0));
        assert_eq!(ctx.tmp(), Temp(1));
        let e = ctx.bind(Expr::Const(5));
        assert_eq!(e, Expr::Const(5), "constants pass through");
        assert!(ctx.stmts.is_empty());
        let e2 = ctx.bind(Expr::Get(firmup_ir::RegId(3)));
        assert_eq!(e2, Expr::Tmp(Temp(2)));
        assert_eq!(ctx.stmts.len(), 1);
    }

    #[test]
    #[should_panic(expected = "terminated twice")]
    fn double_terminate_panics() {
        let mut ctx = LiftCtx::new();
        ctx.terminate(Jump::Ret);
        ctx.terminate(Jump::Ret);
    }

    #[test]
    fn only_mips_has_delay_slots() {
        assert!(Arch::Mips32.has_delay_slots());
        assert!(!Arch::Arm32.has_delay_slots());
        assert!(!Arch::Ppc32.has_delay_slots());
        assert!(!Arch::X86.has_delay_slots());
    }
}
