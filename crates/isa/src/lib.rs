//! Instruction sets for the FirmUp pipeline.
//!
//! The paper searches firmware across "the most common architectures
//! found throughout our firmware crawling process": MIPS32, ARM32, PPC32
//! and Intel-x86. This crate provides, for each of the four, a faithful
//! subset with
//!
//! * a **byte-level encoder** (used by `firmup-compiler` to emit real
//!   machine code),
//! * a **decoder/disassembler** (used by `firmup-core` to recover
//!   instructions from stripped binaries), and
//! * a **lifter** to the side-effect-complete IR of [`firmup_ir`]
//!   (standing in for the paper's angr.io/VEX tool chain).
//!
//! Architecture-specific quirks the paper calls out are modeled: MIPS
//! branch **delay slots**, ARM **conditional execution** (lifted as ITE
//! merges), PPC **condition-register fields**, and x86 **variable-length
//! encoding** with EFLAGS side effects.
//!
//! # Example
//!
//! ```
//! use firmup_isa::{mips, Arch, LiftCtx};
//!
//! // addiu $v0, $a0, 4
//! let mut code = Vec::new();
//! mips::encode(
//!     &mips::Instr::Addiu { rt: mips::V0, rs: mips::A0, imm: 4 },
//!     &mut code,
//! );
//! let mut ctx = LiftCtx::new();
//! let d = firmup_isa::lift_into(Arch::Mips32, &code, 0, 0x40_0000, &mut ctx)?;
//! assert_eq!(d.asm, "addiu $v0, $a0, 4");
//! assert_eq!(ctx.stmts.len(), 1);
//! # Ok::<(), firmup_isa::DecodeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arm;
pub mod common;
pub mod mips;
pub mod ppc;
pub mod x86;

pub use common::{Arch, Control, DecodeError, Decoded, LiftCtx};

use firmup_ir::RegId;

/// Decode and lift the instruction at `bytes[offset..]` (located at
/// virtual address `addr`), appending its statements to `ctx`.
///
/// # Errors
///
/// Returns a [`DecodeError`] when the bytes are truncated or outside the
/// supported subset of `arch`.
pub fn lift_into(
    arch: Arch,
    bytes: &[u8],
    offset: usize,
    addr: u32,
    ctx: &mut LiftCtx,
) -> Result<Decoded, DecodeError> {
    match arch {
        Arch::Mips32 => mips::lift_into(bytes, offset, addr, ctx),
        Arch::Arm32 => arm::lift_into(bytes, offset, addr, ctx),
        Arch::Ppc32 => ppc::lift_into(bytes, offset, addr, ctx),
        Arch::X86 => x86::lift_into(bytes, offset, addr, ctx),
    }
}

/// Decode the instruction at `bytes[offset..]` without lifting it
/// (length, disassembly and control-flow classification only).
///
/// # Errors
///
/// Returns a [`DecodeError`] when the bytes are truncated or outside the
/// supported subset of `arch`.
pub fn decode_info(
    arch: Arch,
    bytes: &[u8],
    offset: usize,
    addr: u32,
) -> Result<Decoded, DecodeError> {
    match arch {
        Arch::Mips32 => mips::decode_info(bytes, offset, addr),
        Arch::Arm32 => arm::decode_info(bytes, offset, addr),
        Arch::Ppc32 => ppc::decode_info(bytes, offset, addr),
        Arch::X86 => x86::decode_info(bytes, offset, addr),
    }
}

/// Human-readable name of an IR register id under `arch`'s conventions.
pub fn reg_name(arch: Arch, r: RegId) -> String {
    match arch {
        Arch::Mips32 => mips::reg_name(r),
        Arch::Arm32 => arm::reg_name(r),
        Arch::Ppc32 => ppc::reg_name(r),
        Arch::X86 => x86::reg_name(r),
    }
}

/// The stack-pointer register id under `arch`'s conventions.
pub fn stack_pointer(arch: Arch) -> RegId {
    match arch {
        Arch::Mips32 => mips::SP.reg_id(),
        Arch::Arm32 => RegId(u16::from(arm::SP)),
        Arch::Ppc32 => RegId(u16::from(ppc::SP)),
        Arch::X86 => RegId(u16::from(x86::ESP)),
    }
}

/// All registers that address stack frames under `arch`'s conventions
/// (the stack pointer, plus the frame pointer where one is customary).
pub fn frame_registers(arch: Arch) -> Vec<RegId> {
    match arch {
        Arch::X86 => vec![stack_pointer(arch), RegId(u16::from(x86::EBP))],
        _ => vec![stack_pointer(arch)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_dispatches_per_arch() {
        // One trivially encodable instruction per architecture.
        let mut mips_code = Vec::new();
        mips::encode(&mips::Instr::Jr { rs: mips::RA }, &mut mips_code);
        let mut arm_code = Vec::new();
        arm::encode(
            &arm::Instr::Bx {
                cond: arm::Cond::Al,
                rm: arm::LR,
            },
            &mut arm_code,
        );
        let mut ppc_code = Vec::new();
        ppc::encode(&ppc::Instr::Blr, &mut ppc_code);
        let x86_code = vec![0xc3];

        for (arch, code) in [
            (Arch::Mips32, mips_code),
            (Arch::Arm32, arm_code),
            (Arch::Ppc32, ppc_code),
            (Arch::X86, x86_code),
        ] {
            let d = decode_info(arch, &code, 0, 0x1000).unwrap();
            assert_eq!(d.ctrl, Control::Ret, "{arch}: expected a return");
        }
    }

    #[test]
    fn stack_pointer_names() {
        assert_eq!(reg_name(Arch::Mips32, stack_pointer(Arch::Mips32)), "$sp");
        assert_eq!(reg_name(Arch::Arm32, stack_pointer(Arch::Arm32)), "sp");
        assert_eq!(reg_name(Arch::Ppc32, stack_pointer(Arch::Ppc32)), "r1");
        assert_eq!(reg_name(Arch::X86, stack_pointer(Arch::X86)), "esp");
    }

    #[test]
    fn lift_into_reports_decode_errors() {
        let garbage = [0xff, 0xff, 0xff, 0xff];
        let mut ctx = LiftCtx::new();
        for arch in Arch::all() {
            assert!(lift_into(arch, &garbage, 0, 0, &mut ctx).is_err(), "{arch}");
        }
    }
}
