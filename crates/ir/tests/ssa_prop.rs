//! Property tests for per-block SSA conversion: the preconditions
//! Algorithm 1 relies on must hold for arbitrary lifted blocks.

use firmup_ir::ssa::ssa_block;
use firmup_ir::{BinOp, Block, Expr, Jump, RegId, Stmt, Temp, Width};
use proptest::prelude::*;

fn reg() -> impl Strategy<Value = RegId> {
    (0u16..8).prop_map(RegId)
}

/// Expressions over registers and previously defined temps.
fn expr(max_tmp: u32) -> BoxedStrategy<Expr> {
    let leaf = if max_tmp == 0 {
        prop_oneof![
            any::<u32>().prop_map(Expr::Const),
            reg().prop_map(Expr::Get),
        ]
        .boxed()
    } else {
        prop_oneof![
            any::<u32>().prop_map(Expr::Const),
            reg().prop_map(Expr::Get),
            (0..max_tmp).prop_map(|t| Expr::Tmp(Temp(t))),
        ]
        .boxed()
    };
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Add, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Xor, a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::bin(BinOp::CmpLtS, a, b)),
        ]
    })
    .boxed()
}

/// A well-formed lifted block: temps are defined in order before use.
fn block() -> impl Strategy<Value = Block> {
    proptest::collection::vec(0u8..4, 1..12).prop_flat_map(|kinds| {
        let mut strategies: Vec<BoxedStrategy<Stmt>> = Vec::new();
        let mut next_tmp = 0u32;
        for k in kinds {
            let s: BoxedStrategy<Stmt> = match k {
                0 => {
                    let t = Temp(next_tmp);
                    next_tmp += 1;
                    expr(t.0).prop_map(move |e| Stmt::SetTmp(t, e)).boxed()
                }
                1 => (reg(), expr(next_tmp))
                    .prop_map(|(r, e)| Stmt::Put(r, e))
                    .boxed(),
                2 => (expr(next_tmp), expr(next_tmp))
                    .prop_map(|(a, v)| Stmt::Store {
                        addr: a,
                        value: v,
                        width: Width::W32,
                    })
                    .boxed(),
                _ => (expr(next_tmp), any::<u32>())
                    .prop_map(|(c, t)| Stmt::Exit { cond: c, target: t })
                    .boxed(),
            };
            strategies.push(s);
        }
        strategies.prop_map(|stmts| Block {
            addr: 0x1000,
            len: 4 * stmts.len() as u32,
            stmts,
            jump: Jump::Ret,
            asm: vec![],
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every SSA statement defines exactly one fresh variable (the
    /// Algorithm 1 precondition).
    #[test]
    fn defs_are_unique(b in block()) {
        let ssa = ssa_block(&b);
        prop_assert_eq!(ssa.stmts.len(), b.stmts.len());
        let mut defs: Vec<u32> = ssa.stmts.iter().map(|s| s.def.0).collect();
        let n = defs.len();
        defs.sort_unstable();
        defs.dedup();
        prop_assert_eq!(defs.len(), n, "duplicate defs");
    }

    /// Uses only reference inputs or earlier defs — never later ones.
    #[test]
    fn uses_respect_order(b in block()) {
        let ssa = ssa_block(&b);
        let inputs: std::collections::BTreeSet<_> =
            ssa.inputs().into_iter().collect();
        let mut defined = inputs.clone();
        for s in &ssa.stmts {
            for u in s.uses() {
                prop_assert!(
                    defined.contains(&u),
                    "use of v{} before definition",
                    u.0
                );
            }
            defined.insert(s.def);
        }
    }

    /// SSA conversion is deterministic.
    #[test]
    fn conversion_is_deterministic(b in block()) {
        prop_assert_eq!(ssa_block(&b), ssa_block(&b));
    }

    /// Variable metadata covers every variable mentioned anywhere.
    #[test]
    fn var_table_is_complete(b in block()) {
        let ssa = ssa_block(&b);
        for s in &ssa.stmts {
            prop_assert!((s.def.0 as usize) < ssa.vars.len());
            for u in s.uses() {
                prop_assert!((u.0 as usize) < ssa.vars.len());
            }
        }
    }
}
