//! Concrete interpreter for lifted blocks and SSA expressions.
//!
//! Used by tests throughout the workspace: lifter tests execute lifted
//! blocks against expected machine behaviour, and the canonicalizer's
//! property tests check that optimization passes preserve the value an
//! expression evaluates to.

use std::collections::HashMap;
use std::fmt;

use crate::block::Block;
use crate::expr::{Expr, RegId, Temp, Width};
use crate::ssa::{SExpr, Var};
use crate::stmt::Stmt;

/// Error produced by concrete evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A temporary was read before being written.
    UndefinedTemp(Temp),
    /// An SSA variable had no binding in the environment.
    UnboundVar(Var),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UndefinedTemp(t) => write!(f, "temporary t{} read before write", t.0),
            EvalError::UnboundVar(v) => write!(f, "ssa variable v{} unbound", v.0),
        }
    }
}

impl std::error::Error for EvalError {}

/// A concrete machine state: registers and byte-addressed memory.
///
/// Registers default to 0 and memory defaults to 0, so partial setups in
/// tests stay terse.
#[derive(Debug, Clone, Default)]
pub struct Machine {
    regs: HashMap<RegId, u32>,
    mem: HashMap<u32, u8>,
    temps: HashMap<Temp, u32>,
    /// Targets of exits taken while executing a block, in order.
    pub taken_exits: Vec<u32>,
}

impl Machine {
    /// Fresh all-zero machine.
    pub fn new() -> Machine {
        Machine::default()
    }

    /// Read a register (0 when never written).
    pub fn reg(&self, r: RegId) -> u32 {
        self.regs.get(&r).copied().unwrap_or(0)
    }

    /// Write a register.
    pub fn set_reg(&mut self, r: RegId, v: u32) {
        self.regs.insert(r, v);
    }

    /// Read `width` bytes at `addr` (little-endian composition; the
    /// lifters already normalized endianness, so the IR view is uniform).
    pub fn load(&self, addr: u32, width: Width) -> u32 {
        let mut v: u32 = 0;
        for i in 0..width.bytes() {
            let b = self.mem.get(&addr.wrapping_add(i)).copied().unwrap_or(0);
            v |= u32::from(b) << (8 * i);
        }
        v
    }

    /// Write the low `width` bytes of `value` at `addr`.
    pub fn store(&mut self, addr: u32, value: u32, width: Width) {
        for i in 0..width.bytes() {
            self.mem
                .insert(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Evaluate a pure expression in the current state.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::UndefinedTemp`] if the expression reads a
    /// temporary that no prior statement wrote.
    pub fn eval(&self, e: &Expr) -> Result<u32, EvalError> {
        Ok(match e {
            Expr::Const(c) => *c,
            Expr::Tmp(t) => *self.temps.get(t).ok_or(EvalError::UndefinedTemp(*t))?,
            Expr::Get(r) => self.reg(*r),
            Expr::Load { addr, width } => self.load(self.eval(addr)?, *width),
            Expr::Bin { op, lhs, rhs } => op.eval(self.eval(lhs)?, self.eval(rhs)?),
            Expr::Un { op, arg } => op.eval(self.eval(arg)?),
            Expr::Ite {
                cond,
                then_e,
                else_e,
            } => {
                if self.eval(cond)? != 0 {
                    self.eval(then_e)?
                } else {
                    self.eval(else_e)?
                }
            }
        })
    }

    /// Execute every statement of a lifted block in order, recording
    /// taken exits in [`Machine::taken_exits`]. Execution does not stop
    /// at a taken exit (callers that want branch semantics should check
    /// `taken_exits`); this suffices for data-flow testing.
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError`] from expression evaluation.
    pub fn run_block(&mut self, b: &Block) -> Result<(), EvalError> {
        for s in &b.stmts {
            self.step(s)?;
        }
        Ok(())
    }

    /// Execute a single statement.
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError`] from expression evaluation.
    pub fn step(&mut self, s: &Stmt) -> Result<(), EvalError> {
        match s {
            Stmt::SetTmp(t, e) => {
                let v = self.eval(e)?;
                self.temps.insert(*t, v);
            }
            Stmt::Put(r, e) => {
                let v = self.eval(e)?;
                self.set_reg(*r, v);
            }
            Stmt::Store { addr, value, width } => {
                let a = self.eval(addr)?;
                let v = self.eval(value)?;
                self.store(a, v, *width);
            }
            Stmt::Exit { cond, target } => {
                if self.eval(cond)? != 0 {
                    self.taken_exits.push(*target);
                }
            }
        }
        Ok(())
    }
}

/// Evaluate an SSA expression under a variable environment.
///
/// Loads read from `mem_env` keyed by the *location variable*, not from a
/// byte-addressed memory: for canonicalizer tests what matters is that a
/// load of the same SSA location yields the same value.
///
/// # Errors
///
/// Returns [`EvalError::UnboundVar`] when the expression reads a variable
/// missing from `env` (or a load location missing from `mem_env`).
pub fn eval_sexpr(
    e: &SExpr,
    env: &HashMap<Var, u32>,
    mem_env: &HashMap<Var, u32>,
) -> Result<u32, EvalError> {
    Ok(match e {
        SExpr::Const(c) => *c,
        SExpr::Var(v) => *env.get(v).ok_or(EvalError::UnboundVar(*v))?,
        SExpr::Load { mem, .. } => *mem_env.get(mem).ok_or(EvalError::UnboundVar(*mem))?,
        SExpr::Bin { op, lhs, rhs } => op.eval(
            eval_sexpr(lhs, env, mem_env)?,
            eval_sexpr(rhs, env, mem_env)?,
        ),
        SExpr::Un { op, arg } => op.eval(eval_sexpr(arg, env, mem_env)?),
        SExpr::Ite {
            cond,
            then_e,
            else_e,
        } => {
            if eval_sexpr(cond, env, mem_env)? != 0 {
                eval_sexpr(then_e, env, mem_env)?
            } else {
                eval_sexpr(else_e, env, mem_env)?
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, UnOp};
    use crate::stmt::Jump;

    #[test]
    fn machine_memory_roundtrip() {
        let mut m = Machine::new();
        m.store(0x100, 0xdead_beef, Width::W32);
        assert_eq!(m.load(0x100, Width::W32), 0xdead_beef);
        assert_eq!(m.load(0x100, Width::W8), 0xef);
        assert_eq!(m.load(0x102, Width::W16), 0xdead);
    }

    #[test]
    fn block_execution_updates_state() {
        let b = Block {
            addr: 0,
            len: 12,
            stmts: vec![
                Stmt::SetTmp(
                    Temp(0),
                    Expr::bin(BinOp::Add, Expr::Get(RegId(1)), Expr::Const(5)),
                ),
                Stmt::Put(RegId(2), Expr::Tmp(Temp(0))),
                Stmt::Store {
                    addr: Expr::Const(0x80),
                    value: Expr::Get(RegId(2)),
                    width: Width::W32,
                },
            ],
            jump: Jump::Ret,
            asm: vec![],
        };
        let mut m = Machine::new();
        m.set_reg(RegId(1), 37);
        m.run_block(&b).unwrap();
        assert_eq!(m.reg(RegId(2)), 42);
        assert_eq!(m.load(0x80, Width::W32), 42);
    }

    #[test]
    fn exits_recorded_when_taken() {
        let b = Block {
            addr: 0,
            len: 8,
            stmts: vec![
                Stmt::Exit {
                    cond: Expr::Const(0),
                    target: 0x10,
                },
                Stmt::Exit {
                    cond: Expr::Const(1),
                    target: 0x20,
                },
            ],
            jump: Jump::Ret,
            asm: vec![],
        };
        let mut m = Machine::new();
        m.run_block(&b).unwrap();
        assert_eq!(m.taken_exits, vec![0x20]);
    }

    #[test]
    fn undefined_temp_is_an_error() {
        let m = Machine::new();
        assert_eq!(
            m.eval(&Expr::Tmp(Temp(9))),
            Err(EvalError::UndefinedTemp(Temp(9)))
        );
    }

    #[test]
    fn sexpr_eval_with_env() {
        let mut env = HashMap::new();
        env.insert(Var(0), 10);
        let mem = HashMap::new();
        let e = SExpr::bin(
            BinOp::Add,
            SExpr::un(UnOp::Neg, SExpr::Var(Var(0))),
            SExpr::Const(3),
        );
        assert_eq!(eval_sexpr(&e, &env, &mem), Ok(0u32.wrapping_sub(7)));
        let bad = SExpr::Var(Var(5));
        assert_eq!(
            eval_sexpr(&bad, &env, &mem),
            Err(EvalError::UnboundVar(Var(5)))
        );
    }
}
