//! Expressions: the pure (side-effect-free) fragment of the IR.

use std::fmt;

/// A single-assignment temporary introduced by a lifter.
///
/// Temporaries are block-local and are assigned exactly once, which is
/// what makes the lifted form "SSA by construction" within a block
/// (mirroring VEX `IRTemp`s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Temp(pub u32);

/// An architecture register, identified by an opaque index.
///
/// The mapping from `RegId` to a concrete register (and its name) is owned
/// by the per-architecture code in `firmup-isa`; the IR itself is
/// architecture neutral.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegId(pub u16);

/// Access width of a memory operation or extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Width {
    /// 8-bit byte.
    W8,
    /// 16-bit halfword.
    W16,
    /// 32-bit word (the native width of all four target ISAs).
    W32,
}

impl Width {
    /// Number of bytes covered by this width.
    pub fn bytes(self) -> u32 {
        match self {
            Width::W8 => 1,
            Width::W16 => 2,
            Width::W32 => 4,
        }
    }

    /// Mask selecting the low `self` bits of a 32-bit value.
    pub fn mask(self) -> u32 {
        match self {
            Width::W8 => 0xff,
            Width::W16 => 0xffff,
            Width::W32 => 0xffff_ffff,
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.bytes() * 8)
    }
}

/// Binary operators.
///
/// Comparison operators produce `0` or `1`. Shifts use only the low five
/// bits of their right operand, matching all four target ISAs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BinOp {
    /// Wrapping 32-bit addition.
    Add,
    /// Wrapping 32-bit subtraction.
    Sub,
    /// Wrapping 32-bit multiplication (low word).
    Mul,
    /// Unsigned division; division by zero yields all-ones (hardware-like).
    DivU,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
    /// Equality (0/1).
    CmpEq,
    /// Inequality (0/1).
    CmpNe,
    /// Signed less-than (0/1).
    CmpLtS,
    /// Unsigned less-than (0/1).
    CmpLtU,
    /// Signed less-or-equal (0/1).
    CmpLeS,
    /// Unsigned less-or-equal (0/1).
    CmpLeU,
}

impl BinOp {
    /// Whether the operator is commutative (used by the canonicalizer to
    /// order operands deterministically).
    pub fn commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::CmpEq
                | BinOp::CmpNe
        )
    }

    /// Whether the operator yields a boolean (0/1) value.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::CmpEq
                | BinOp::CmpNe
                | BinOp::CmpLtS
                | BinOp::CmpLtU
                | BinOp::CmpLeS
                | BinOp::CmpLeU
        )
    }

    /// Evaluate the operator on concrete 32-bit values.
    pub fn eval(self, a: u32, b: u32) -> u32 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::DivU => a.checked_div(b).unwrap_or(u32::MAX),
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b & 31),
            BinOp::Shr => a.wrapping_shr(b & 31),
            BinOp::Sar => (a as i32).wrapping_shr(b & 31) as u32,
            BinOp::CmpEq => (a == b) as u32,
            BinOp::CmpNe => (a != b) as u32,
            BinOp::CmpLtS => ((a as i32) < (b as i32)) as u32,
            BinOp::CmpLtU => (a < b) as u32,
            BinOp::CmpLeS => ((a as i32) <= (b as i32)) as u32,
            BinOp::CmpLeU => (a <= b) as u32,
        }
    }

    /// Mnemonic used in the canonical strand serialization.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::DivU => "udiv",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "lshr",
            BinOp::Sar => "ashr",
            BinOp::CmpEq => "icmp eq",
            BinOp::CmpNe => "icmp ne",
            BinOp::CmpLtS => "icmp slt",
            BinOp::CmpLtU => "icmp ult",
            BinOp::CmpLeS => "icmp sle",
            BinOp::CmpLeU => "icmp ule",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UnOp {
    /// Bitwise complement.
    Not,
    /// Two's-complement negation.
    Neg,
    /// Sign-extend the low 8 bits to 32.
    Sext8,
    /// Sign-extend the low 16 bits to 32.
    Sext16,
    /// Zero-extend the low 8 bits (mask with `0xff`).
    Zext8,
    /// Zero-extend the low 16 bits (mask with `0xffff`).
    Zext16,
}

impl UnOp {
    /// Evaluate the operator on a concrete 32-bit value.
    pub fn eval(self, a: u32) -> u32 {
        match self {
            UnOp::Not => !a,
            UnOp::Neg => a.wrapping_neg(),
            UnOp::Sext8 => a as u8 as i8 as i32 as u32,
            UnOp::Sext16 => a as u16 as i16 as i32 as u32,
            UnOp::Zext8 => a & 0xff,
            UnOp::Zext16 => a & 0xffff,
        }
    }

    /// Mnemonic used in the canonical strand serialization.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Not => "not",
            UnOp::Neg => "neg",
            UnOp::Sext8 => "sext i8",
            UnOp::Sext16 => "sext i16",
            UnOp::Zext8 => "zext i8",
            UnOp::Zext16 => "zext i16",
        }
    }
}

/// A pure expression over temporaries, registers and memory.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A 32-bit constant.
    Const(u32),
    /// Read of a single-assignment temporary.
    Tmp(Temp),
    /// Read of an architecture register (VEX `Get`).
    Get(RegId),
    /// Little/big-endianness is resolved by the lifter; `Load` reads
    /// `width` bytes at `addr` and zero-extends to 32 bits.
    Load {
        /// Address expression.
        addr: Box<Expr>,
        /// Access width.
        width: Width,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        arg: Box<Expr>,
    },
    /// If-then-else over values (VEX `ITE`): `cond != 0 ? then_e : else_e`.
    Ite {
        /// Condition (0 = false).
        cond: Box<Expr>,
        /// Value when the condition is non-zero.
        then_e: Box<Expr>,
        /// Value when the condition is zero.
        else_e: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for a binary operation.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Convenience constructor for a unary operation.
    pub fn un(op: UnOp, arg: Expr) -> Expr {
        Expr::Un {
            op,
            arg: Box::new(arg),
        }
    }

    /// Convenience constructor for a load.
    pub fn load(addr: Expr, width: Width) -> Expr {
        Expr::Load {
            addr: Box::new(addr),
            width,
        }
    }

    /// Convenience constructor for an if-then-else value.
    pub fn ite(cond: Expr, then_e: Expr, else_e: Expr) -> Expr {
        Expr::Ite {
            cond: Box::new(cond),
            then_e: Box::new(then_e),
            else_e: Box::new(else_e),
        }
    }

    /// Visit every sub-expression (pre-order), including `self`.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Const(_) | Expr::Tmp(_) | Expr::Get(_) => {}
            Expr::Load { addr, .. } => addr.visit(f),
            Expr::Bin { lhs, rhs, .. } => {
                lhs.visit(f);
                rhs.visit(f);
            }
            Expr::Un { arg, .. } => arg.visit(f),
            Expr::Ite {
                cond,
                then_e,
                else_e,
            } => {
                cond.visit(f);
                then_e.visit(f);
                else_e.visit(f);
            }
        }
    }

    /// Number of nodes in the expression tree.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// All temporaries read by this expression.
    pub fn temps(&self) -> Vec<Temp> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Tmp(t) = e {
                out.push(*t);
            }
        });
        out
    }

    /// All registers read by this expression.
    pub fn regs(&self) -> Vec<RegId> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Get(r) = e {
                out.push(*r);
            }
        });
        out
    }

    /// Whether this expression contains a memory load.
    pub fn has_load(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, Expr::Load { .. }) {
                found = true;
            }
        });
        found
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => {
                if *c < 10 {
                    write!(f, "{c}")
                } else {
                    write!(f, "{c:#x}")
                }
            }
            Expr::Tmp(t) => write!(f, "t{}", t.0),
            Expr::Get(r) => write!(f, "GET(r{})", r.0),
            Expr::Load { addr, width } => write!(f, "LD{}({addr})", width.bytes() * 8),
            Expr::Bin { op, lhs, rhs } => write!(f, "({} {lhs}, {rhs})", op.mnemonic()),
            Expr::Un { op, arg } => write!(f, "({} {arg})", op.mnemonic()),
            Expr::Ite {
                cond,
                then_e,
                else_e,
            } => write!(f, "ITE({cond}, {then_e}, {else_e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_basics() {
        assert_eq!(BinOp::Add.eval(2, 3), 5);
        assert_eq!(BinOp::Sub.eval(2, 3), u32::MAX);
        assert_eq!(BinOp::Mul.eval(0x10000, 0x10000), 0);
        assert_eq!(BinOp::DivU.eval(7, 2), 3);
        assert_eq!(BinOp::DivU.eval(7, 0), u32::MAX);
        assert_eq!(BinOp::Shl.eval(1, 33), 2, "shift uses low 5 bits");
        assert_eq!(BinOp::Sar.eval(0x8000_0000, 31), u32::MAX);
        assert_eq!(BinOp::CmpLtS.eval(u32::MAX, 0), 1, "-1 < 0 signed");
        assert_eq!(BinOp::CmpLtU.eval(u32::MAX, 0), 0);
    }

    #[test]
    fn unop_eval_basics() {
        assert_eq!(UnOp::Sext8.eval(0x80), 0xffff_ff80);
        assert_eq!(UnOp::Zext8.eval(0x1ff), 0xff);
        assert_eq!(UnOp::Sext16.eval(0x8000), 0xffff_8000);
        assert_eq!(UnOp::Neg.eval(1), u32::MAX);
        assert_eq!(UnOp::Not.eval(0), u32::MAX);
    }

    #[test]
    fn expr_visit_counts_nodes() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::load(Expr::Get(RegId(2)), Width::W32),
            Expr::Const(4),
        );
        assert_eq!(e.size(), 4);
        assert_eq!(e.regs(), vec![RegId(2)]);
        assert!(e.has_load());
    }

    #[test]
    fn expr_display_is_stable() {
        let e = Expr::bin(BinOp::CmpEq, Expr::Tmp(Temp(1)), Expr::Const(31));
        assert_eq!(e.to_string(), "(icmp eq t1, 0x1f)");
    }

    #[test]
    fn commutativity_flags() {
        assert!(BinOp::Add.commutative());
        assert!(!BinOp::Sub.commutative());
        assert!(BinOp::CmpEq.commutative());
        assert!(!BinOp::CmpLtS.commutative());
    }
}
