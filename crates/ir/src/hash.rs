//! Stable hashing utilities.
//!
//! Canonical strands are identified by 64-bit hashes that must be stable
//! across program runs and platforms (the paper keeps "the procedure
//! representation as a set of hashed strands", §3.3). `std`'s default
//! hasher is randomly seeded, so we use FNV-1a explicitly.

/// 64-bit FNV-1a hash of a byte slice.
///
/// # Example
///
/// ```
/// // The FNV-1a specification's test vector for the empty string.
/// assert_eq!(firmup_ir::hash::fnv1a_64(b""), 0xcbf29ce484222325);
/// ```
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Incremental FNV-1a hasher for composite keys.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// Start a fresh hash.
    pub fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Mix in a byte slice.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        const PRIME: u64 = 0x100_0000_01b3;
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(PRIME);
        }
        self
    }

    /// Mix in a `u32` (little-endian).
    pub fn update_u32(&mut self, v: u32) -> &mut Self {
        self.update(&v.to_le_bytes())
    }

    /// Mix in a `u64` (little-endian).
    pub fn update_u64(&mut self, v: u64) -> &mut Self {
        self.update(&v.to_le_bytes())
    }

    /// Final hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Fnv64::new();
        h.update(b"foo").update(b"bar");
        assert_eq!(h.finish(), fnv1a_64(b"foobar"));
    }

    #[test]
    fn distinct_inputs_distinct_hashes() {
        assert_ne!(fnv1a_64(b"strand-a"), fnv1a_64(b"strand-b"));
        let mut a = Fnv64::new();
        a.update_u32(7);
        let mut b = Fnv64::new();
        b.update_u64(7);
        assert_ne!(a.finish(), b.finish(), "width is part of the key");
    }
}
