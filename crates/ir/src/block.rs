//! Basic blocks, procedures, control-flow graphs and call graphs.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use crate::stmt::{Jump, Stmt};

/// A lifted basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Address of the first instruction.
    pub addr: u32,
    /// Byte length of the block in the original binary.
    pub len: u32,
    /// Lifted statements, in execution order.
    pub stmts: Vec<Stmt>,
    /// Terminator.
    pub jump: Jump,
    /// Disassembly text of the block's instructions (diagnostic only; not
    /// used for similarity).
    pub asm: Vec<String>,
}

impl Block {
    /// All intra-procedural successor addresses: side exits plus the
    /// terminator's successors.
    pub fn successors(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::Exit { target, .. } => Some(*target),
                _ => None,
            })
            .collect();
        out.extend(self.jump.successors());
        out
    }

    /// End address (exclusive).
    pub fn end(&self) -> u32 {
        self.addr + self.len
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "block {:#x}:", self.addr)?;
        for s in &self.stmts {
            writeln!(f, "  {s}")?;
        }
        writeln!(f, "  {}", self.jump)
    }
}

/// A lifted procedure: an entry block plus every block reachable from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Procedure {
    /// Entry address.
    pub addr: u32,
    /// Symbol name, when the binary was not stripped (`None` otherwise).
    pub name: Option<String>,
    /// Blocks, sorted by address. The entry block is the one whose
    /// `addr` equals the procedure's `addr`.
    pub blocks: Vec<Block>,
}

impl Procedure {
    /// Find a block by its start address.
    pub fn block_at(&self, addr: u32) -> Option<&Block> {
        self.blocks
            .binary_search_by_key(&addr, |b| b.addr)
            .ok()
            .map(|i| &self.blocks[i])
    }

    /// The entry block.
    ///
    /// # Panics
    ///
    /// Panics if the procedure has no block at its entry address, which
    /// would indicate a lifter bug.
    pub fn entry_block(&self) -> &Block {
        self.block_at(self.addr)
            .expect("procedure entry block missing")
    }

    /// Build the control-flow graph over this procedure's blocks.
    pub fn cfg(&self) -> Cfg {
        Cfg::new(self)
    }

    /// Direct call targets appearing in this procedure, deduplicated and
    /// sorted.
    pub fn call_targets(&self) -> Vec<u32> {
        let set: BTreeSet<u32> = self
            .blocks
            .iter()
            .filter_map(|b| b.jump.call_target())
            .collect();
        set.into_iter().collect()
    }

    /// Total number of lifted statements across all blocks.
    pub fn stmt_count(&self) -> usize {
        self.blocks.iter().map(|b| b.stmts.len()).sum()
    }

    /// A short printable identifier: the symbol name when available,
    /// otherwise `sub_<addr>` in the IDA style used throughout the paper.
    pub fn display_name(&self) -> String {
        match &self.name {
            Some(n) => n.clone(),
            None => format!("sub_{:x}", self.addr),
        }
    }
}

/// Control-flow graph of a procedure, with adjacency by block address.
#[derive(Debug, Clone)]
pub struct Cfg {
    entry: u32,
    succs: BTreeMap<u32, Vec<u32>>,
    preds: BTreeMap<u32, Vec<u32>>,
}

impl Cfg {
    /// Build the CFG of a procedure. Edges to addresses that are not block
    /// starts inside the procedure (e.g. tail jumps to other procedures)
    /// are dropped.
    pub fn new(proc: &Procedure) -> Cfg {
        let known: BTreeSet<u32> = proc.blocks.iter().map(|b| b.addr).collect();
        let mut succs: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        let mut preds: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for b in &proc.blocks {
            succs.entry(b.addr).or_default();
            preds.entry(b.addr).or_default();
        }
        for b in &proc.blocks {
            for s in b.successors() {
                if known.contains(&s) {
                    succs.get_mut(&b.addr).expect("inserted above").push(s);
                    preds.get_mut(&s).expect("inserted above").push(b.addr);
                }
            }
        }
        Cfg {
            entry: proc.addr,
            succs,
            preds,
        }
    }

    /// Entry block address.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Successor addresses of a block.
    pub fn successors(&self, addr: u32) -> &[u32] {
        self.succs.get(&addr).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Predecessor addresses of a block.
    pub fn predecessors(&self, addr: u32) -> &[u32] {
        self.preds.get(&addr).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.succs.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.succs.values().map(Vec::len).sum()
    }

    /// Blocks unreachable from the entry. A non-empty result indicates a
    /// lifting problem; the paper (§3.1) adds exactly this kind of
    /// connectivity corroboration on top of the lifter.
    pub fn unreachable_blocks(&self) -> Vec<u32> {
        let mut seen: BTreeSet<u32> = BTreeSet::new();
        let mut queue = VecDeque::new();
        queue.push_back(self.entry);
        seen.insert(self.entry);
        while let Some(a) = queue.pop_front() {
            for &s in self.successors(a) {
                if seen.insert(s) {
                    queue.push_back(s);
                }
            }
        }
        self.succs
            .keys()
            .copied()
            .filter(|a| !seen.contains(a))
            .collect()
    }

    /// Reverse post-order of the reachable blocks (entry first).
    pub fn reverse_post_order(&self) -> Vec<u32> {
        let mut visited = BTreeSet::new();
        let mut order = Vec::new();
        // Iterative DFS with an explicit "post" marker.
        let mut stack = vec![(self.entry, false)];
        while let Some((node, post)) = stack.pop() {
            if post {
                order.push(node);
                continue;
            }
            if !visited.insert(node) {
                continue;
            }
            stack.push((node, true));
            for &s in self.successors(node).iter().rev() {
                if !visited.contains(&s) {
                    stack.push((s, false));
                }
            }
        }
        order.reverse();
        order
    }

    /// Out-degree sequence, sorted descending — a structural fingerprint
    /// used by the BinDiff-style baseline.
    pub fn degree_sequence(&self) -> Vec<usize> {
        let mut seq: Vec<usize> = self.succs.values().map(Vec::len).collect();
        seq.sort_unstable_by(|a, b| b.cmp(a));
        seq
    }
}

/// A whole lifted executable: its procedures and the call graph.
#[derive(Debug, Clone)]
pub struct ProgramIr {
    /// Procedures, sorted by entry address.
    pub procedures: Vec<Procedure>,
}

impl ProgramIr {
    /// Find a procedure by entry address.
    pub fn procedure_at(&self, addr: u32) -> Option<&Procedure> {
        self.procedures
            .binary_search_by_key(&addr, |p| p.addr)
            .ok()
            .map(|i| &self.procedures[i])
    }

    /// Find a procedure by (exact) name.
    pub fn procedure_named(&self, name: &str) -> Option<&Procedure> {
        self.procedures
            .iter()
            .find(|p| p.name.as_deref() == Some(name))
    }

    /// Build the static call graph.
    pub fn call_graph(&self) -> CallGraph {
        let mut edges: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        let known: BTreeSet<u32> = self.procedures.iter().map(|p| p.addr).collect();
        for p in &self.procedures {
            let callees: Vec<u32> = p
                .call_targets()
                .into_iter()
                .filter(|t| known.contains(t))
                .collect();
            edges.insert(p.addr, callees);
        }
        CallGraph { edges }
    }
}

/// Static call graph of an executable, keyed by procedure entry address.
#[derive(Debug, Clone)]
pub struct CallGraph {
    edges: BTreeMap<u32, Vec<u32>>,
}

impl CallGraph {
    /// Callees of a procedure.
    pub fn callees(&self, addr: u32) -> &[u32] {
        self.edges.get(&addr).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Callers of a procedure (computed by scan).
    pub fn callers(&self, addr: u32) -> Vec<u32> {
        self.edges
            .iter()
            .filter(|(_, cs)| cs.contains(&addr))
            .map(|(&a, _)| a)
            .collect()
    }

    /// Number of procedures.
    pub fn node_count(&self) -> usize {
        self.edges.len()
    }

    /// Total call edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Expr, RegId, Temp};
    use crate::stmt::CallTarget;

    fn blk(addr: u32, stmts: Vec<Stmt>, jump: Jump) -> Block {
        Block {
            addr,
            len: 8,
            stmts,
            jump,
            asm: vec![],
        }
    }

    /// A diamond-shaped procedure:
    /// 0x0 -> {0x10, 0x20} -> 0x30 -> ret
    fn diamond() -> Procedure {
        Procedure {
            addr: 0,
            name: Some("diamond".into()),
            blocks: vec![
                blk(
                    0,
                    vec![Stmt::Exit {
                        cond: Expr::bin(BinOp::CmpEq, Expr::Get(RegId(0)), Expr::Const(0)),
                        target: 0x20,
                    }],
                    Jump::Fall(0x10),
                ),
                blk(
                    0x10,
                    vec![Stmt::SetTmp(Temp(0), Expr::Const(1))],
                    Jump::Direct(0x30),
                ),
                blk(
                    0x20,
                    vec![Stmt::SetTmp(Temp(0), Expr::Const(2))],
                    Jump::Fall(0x30),
                ),
                blk(0x30, vec![], Jump::Ret),
            ],
        }
    }

    #[test]
    fn cfg_edges_and_reachability() {
        let p = diamond();
        let cfg = p.cfg();
        assert_eq!(cfg.node_count(), 4);
        assert_eq!(cfg.edge_count(), 4);
        assert_eq!(cfg.successors(0), &[0x20, 0x10]);
        assert_eq!(cfg.predecessors(0x30), &[0x10, 0x20]);
        assert!(cfg.unreachable_blocks().is_empty());
    }

    #[test]
    fn cfg_detects_unreachable() {
        let mut p = diamond();
        p.blocks.push(blk(0x40, vec![], Jump::Ret)); // orphan
        let cfg = p.cfg();
        assert_eq!(cfg.unreachable_blocks(), vec![0x40]);
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let p = diamond();
        let rpo = p.cfg().reverse_post_order();
        assert_eq!(rpo[0], 0);
        assert_eq!(rpo.len(), 4);
        // The join block must come after both branches.
        let pos = |a: u32| rpo.iter().position(|&x| x == a).unwrap();
        assert!(pos(0x30) > pos(0x10));
        assert!(pos(0x30) > pos(0x20));
    }

    #[test]
    fn call_graph_edges() {
        let main = Procedure {
            addr: 0x100,
            name: Some("main".into()),
            blocks: vec![blk(
                0x100,
                vec![],
                Jump::Call {
                    target: CallTarget::Direct(0x200),
                    return_to: 0x108,
                },
            )],
        };
        let helper = Procedure {
            addr: 0x200,
            name: Some("helper".into()),
            blocks: vec![blk(0x200, vec![], Jump::Ret)],
        };
        let prog = ProgramIr {
            procedures: vec![main, helper],
        };
        let cg = prog.call_graph();
        assert_eq!(cg.callees(0x100), &[0x200]);
        assert_eq!(cg.callers(0x200), vec![0x100]);
        assert_eq!(cg.node_count(), 2);
        assert_eq!(cg.edge_count(), 1);
    }

    #[test]
    fn display_name_falls_back_to_sub() {
        let mut p = diamond();
        assert_eq!(p.display_name(), "diamond");
        p.name = None;
        assert_eq!(p.display_name(), "sub_0");
    }

    #[test]
    fn degree_sequence_sorted() {
        let p = diamond();
        assert_eq!(p.cfg().degree_sequence(), vec![2, 1, 1, 0]);
    }
}
