//! Statements and block terminators.

use std::fmt;

use crate::expr::{Expr, RegId, Temp, Width};

/// A side-effecting IR statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Define a single-assignment temporary (VEX `WrTmp`).
    SetTmp(Temp, Expr),
    /// Write an architecture register (VEX `Put`).
    Put(RegId, Expr),
    /// Store `value` (low `width` bytes) at `addr`.
    Store {
        /// Address expression.
        addr: Expr,
        /// Value expression.
        value: Expr,
        /// Store width.
        width: Width,
    },
    /// Conditional side exit: if `cond != 0`, control transfers to
    /// `target` (VEX `Exit`). Statements after the exit execute only when
    /// the condition is false.
    Exit {
        /// Guard condition.
        cond: Expr,
        /// Branch target address.
        target: u32,
    },
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stmt::SetTmp(t, e) => write!(f, "t{} = {e}", t.0),
            Stmt::Put(r, e) => write!(f, "PUT(r{}) = {e}", r.0),
            Stmt::Store { addr, value, width } => {
                write!(f, "ST{}({addr}) = {value}", width.bytes() * 8)
            }
            Stmt::Exit { cond, target } => write!(f, "if ({cond}) goto {target:#x}"),
        }
    }
}

/// The target of a call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallTarget {
    /// Direct call to a known address.
    Direct(u32),
    /// Indirect call through an expression (e.g. a register).
    Indirect(Expr),
}

/// How control leaves a block once all statements have executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Jump {
    /// Fall through to the block starting at the given address.
    Fall(u32),
    /// Unconditional direct jump.
    Direct(u32),
    /// Unconditional indirect jump (e.g. `jr t9`, `bx lr` used as a jump).
    Indirect(Expr),
    /// Procedure call; control resumes at `return_to` afterwards.
    Call {
        /// Callee.
        target: CallTarget,
        /// Return address (the next block).
        return_to: u32,
    },
    /// Return from the current procedure.
    Ret,
}

impl Jump {
    /// Intra-procedural successor addresses of this terminator (call
    /// returns count as successors; the callee does not).
    pub fn successors(&self) -> Vec<u32> {
        match self {
            Jump::Fall(a) | Jump::Direct(a) => vec![*a],
            Jump::Call { return_to, .. } => vec![*return_to],
            Jump::Indirect(_) | Jump::Ret => vec![],
        }
    }

    /// The direct callee address, if this is a direct call.
    pub fn call_target(&self) -> Option<u32> {
        match self {
            Jump::Call {
                target: CallTarget::Direct(a),
                ..
            } => Some(*a),
            _ => None,
        }
    }
}

impl fmt::Display for Jump {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Jump::Fall(a) => write!(f, "fall {a:#x}"),
            Jump::Direct(a) => write!(f, "goto {a:#x}"),
            Jump::Indirect(e) => write!(f, "goto [{e}]"),
            Jump::Call {
                target: CallTarget::Direct(a),
                return_to,
            } => write!(f, "call {a:#x} ret {return_to:#x}"),
            Jump::Call {
                target: CallTarget::Indirect(e),
                return_to,
            } => write!(f, "call [{e}] ret {return_to:#x}"),
            Jump::Ret => write!(f, "ret"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    #[test]
    fn jump_successors() {
        assert_eq!(Jump::Fall(4).successors(), vec![4]);
        assert_eq!(Jump::Direct(8).successors(), vec![8]);
        assert_eq!(
            Jump::Call {
                target: CallTarget::Direct(0x100),
                return_to: 0x20
            }
            .successors(),
            vec![0x20]
        );
        assert!(Jump::Ret.successors().is_empty());
        assert!(Jump::Indirect(Expr::Get(RegId(1))).successors().is_empty());
    }

    #[test]
    fn call_target_extraction() {
        let j = Jump::Call {
            target: CallTarget::Direct(0x400),
            return_to: 0x8,
        };
        assert_eq!(j.call_target(), Some(0x400));
        assert_eq!(Jump::Ret.call_target(), None);
    }

    #[test]
    fn stmt_display() {
        let s = Stmt::Exit {
            cond: Expr::bin(BinOp::CmpNe, Expr::Tmp(Temp(0)), Expr::Const(0)),
            target: 0x40e744,
        };
        assert_eq!(s.to_string(), "if ((icmp ne t0, 0)) goto 0x40e744");
    }
}
