//! Per-block SSA conversion.
//!
//! Algorithm 1 of the paper assumes "the BB is in SSA form, a property of
//! the VEX-IR lifting we use". Lifted temporaries are single-assignment by
//! construction, but registers and memory locations are not: a block may
//! `Put` the same register several times. This module renames registers
//! and (syntactic) memory locations into a unified single-assignment
//! variable space so that **every statement defines exactly one variable**
//! — the precondition that makes the paper's backward slicing precise.
//!
//! Memory is handled syntactically: two accesses belong to the same
//! location iff their address expressions are structurally identical after
//! renaming (this captures stack-slot reuse inside a block, the common
//! case, and deliberately ignores aliasing — a store to `[r1]` does not
//! kill `[sp+8]`). This matches the granularity the paper needs: strand
//! inputs are "variables (registers and memory locations) used before
//! they are defined in the block".

use std::collections::HashMap;
use std::fmt;

use crate::block::Block;
use crate::expr::{BinOp, Expr, RegId, Temp, UnOp, Width};
use crate::hash::Fnv64;
use crate::stmt::{CallTarget, Jump, Stmt};

/// A single-assignment variable in the unified per-block namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

/// What a [`Var`] stands for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VarKind {
    /// A version of an architecture register.
    Reg(RegId, u16),
    /// A lifter temporary (always version 0 — temps are SSA already).
    Tmp(Temp),
    /// A version of a syntactic memory location (keyed by the structural
    /// hash of its address expression).
    Mem(u64, u16),
    /// The outward-facing value of a conditional exit to the given target.
    Exit(u32),
    /// The outward-facing value of an indirect jump or indirect call
    /// target computation.
    JumpTarget,
}

/// Per-variable metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarInfo {
    /// What the variable stands for.
    pub kind: VarKind,
    /// `true` when the variable is a block input (used before defined).
    pub input: bool,
}

/// An expression over SSA variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SExpr {
    /// 32-bit constant.
    Const(u32),
    /// Variable read.
    Var(Var),
    /// Memory load. `mem` is the SSA variable of the syntactic location
    /// being read (so slicing pulls in the defining store, if any).
    Load {
        /// Location variable.
        mem: Var,
        /// Address expression.
        addr: Box<SExpr>,
        /// Access width.
        width: Width,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<SExpr>,
        /// Right operand.
        rhs: Box<SExpr>,
    },
    /// Unary operation.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        arg: Box<SExpr>,
    },
    /// If-then-else value.
    Ite {
        /// Condition.
        cond: Box<SExpr>,
        /// Value when non-zero.
        then_e: Box<SExpr>,
        /// Value when zero.
        else_e: Box<SExpr>,
    },
}

impl SExpr {
    /// Convenience constructor for a binary operation.
    pub fn bin(op: BinOp, lhs: SExpr, rhs: SExpr) -> SExpr {
        SExpr::Bin {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Convenience constructor for a unary operation.
    pub fn un(op: UnOp, arg: SExpr) -> SExpr {
        SExpr::Un {
            op,
            arg: Box::new(arg),
        }
    }

    /// Visit every sub-expression (pre-order), including `self`.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a SExpr)) {
        f(self);
        match self {
            SExpr::Const(_) | SExpr::Var(_) => {}
            SExpr::Load { addr, .. } => addr.visit(f),
            SExpr::Bin { lhs, rhs, .. } => {
                lhs.visit(f);
                rhs.visit(f);
            }
            SExpr::Un { arg, .. } => arg.visit(f),
            SExpr::Ite {
                cond,
                then_e,
                else_e,
            } => {
                cond.visit(f);
                then_e.visit(f);
                else_e.visit(f);
            }
        }
    }

    /// All variables read by this expression (including `mem` variables
    /// of loads), in visit order, possibly with duplicates.
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        self.visit(&mut |e| match e {
            SExpr::Var(v) => out.push(*v),
            SExpr::Load { mem, .. } => out.push(*mem),
            _ => {}
        });
        out
    }

    /// Number of nodes in the tree.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Structural hash (stable across runs).
    pub fn structural_hash(&self) -> u64 {
        let mut h = Fnv64::new();
        hash_into(self, &mut h);
        h.finish()
    }
}

fn hash_into(e: &SExpr, h: &mut Fnv64) {
    match e {
        SExpr::Const(c) => {
            h.update(b"C").update_u32(*c);
        }
        SExpr::Var(v) => {
            h.update(b"V").update_u32(v.0);
        }
        SExpr::Load { mem, addr, width } => {
            h.update(b"L").update_u32(mem.0).update_u32(width.bytes());
            hash_into(addr, h);
        }
        SExpr::Bin { op, lhs, rhs } => {
            h.update(b"B").update(op.mnemonic().as_bytes());
            hash_into(lhs, h);
            hash_into(rhs, h);
        }
        SExpr::Un { op, arg } => {
            h.update(b"U").update(op.mnemonic().as_bytes());
            hash_into(arg, h);
        }
        SExpr::Ite {
            cond,
            then_e,
            else_e,
        } => {
            h.update(b"I");
            hash_into(cond, h);
            hash_into(then_e, h);
            hash_into(else_e, h);
        }
    }
}

impl fmt::Display for SExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SExpr::Const(c) => {
                if *c < 10 {
                    write!(f, "{c}")
                } else {
                    write!(f, "{c:#x}")
                }
            }
            SExpr::Var(v) => write!(f, "v{}", v.0),
            SExpr::Load { addr, width, .. } => write!(f, "load {width}, ({addr})"),
            SExpr::Bin { op, lhs, rhs } => write!(f, "{} {lhs}, {rhs}", op.mnemonic()),
            SExpr::Un { op, arg } => write!(f, "{} {arg}", op.mnemonic()),
            SExpr::Ite {
                cond,
                then_e,
                else_e,
            } => {
                write!(f, "select {cond}, {then_e}, {else_e}")
            }
        }
    }
}

/// The operation performed by an SSA statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SsaKind {
    /// Pure assignment: the defined variable equals the expression.
    Assign(SExpr),
    /// Memory store; the defined variable is the new version of the
    /// syntactic location.
    Store {
        /// Address expression.
        addr: SExpr,
        /// Stored value.
        value: SExpr,
        /// Store width.
        width: Width,
    },
    /// Conditional exit; the defined variable is the (outward) branch
    /// decision.
    Exit {
        /// Guard.
        cond: SExpr,
        /// Target address.
        target: u32,
    },
    /// Indirect jump or call-target computation at the end of the block.
    JumpTarget(SExpr),
}

/// One statement of an SSA block. `def` is the unique variable the
/// statement writes, which makes the paper's `WSet` a singleton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SsaStmt {
    /// The variable this statement defines.
    pub def: Var,
    /// The operation.
    pub kind: SsaKind,
}

impl SsaStmt {
    /// The paper's `RSet`: variables read by this statement.
    pub fn uses(&self) -> Vec<Var> {
        let mut out = Vec::new();
        self.for_each_use(&mut |v| out.push(v));
        out
    }

    /// Visit the paper's `RSet` — every variable this statement reads,
    /// in visit order with duplicates — without allocating. The
    /// allocation-free twin of [`uses`](SsaStmt::uses) for the strand
    /// decomposition hot path.
    pub fn for_each_use(&self, f: &mut impl FnMut(Var)) {
        let mut g = |e: &SExpr| match e {
            SExpr::Var(v) => f(*v),
            SExpr::Load { mem, .. } => f(*mem),
            _ => {}
        };
        match &self.kind {
            SsaKind::Assign(e) | SsaKind::JumpTarget(e) => e.visit(&mut g),
            SsaKind::Store { addr, value, .. } => {
                addr.visit(&mut g);
                value.visit(&mut g);
            }
            SsaKind::Exit { cond, .. } => cond.visit(&mut g),
        }
    }
}

impl fmt::Display for SsaStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            SsaKind::Assign(e) => write!(f, "v{} = {e}", self.def.0),
            SsaKind::Store { addr, value, width } => {
                write!(f, "store {width} {value}, ({addr})")
            }
            SsaKind::Exit { cond, target } => {
                write!(f, "br {cond}, {target:#x}")
            }
            SsaKind::JumpTarget(e) => write!(f, "jump {e}"),
        }
    }
}

/// A basic block in per-block SSA form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SsaBlock {
    /// Address of the source block.
    pub addr: u32,
    /// Statements in execution order; each defines exactly one variable.
    pub stmts: Vec<SsaStmt>,
    /// Metadata for each variable, indexed by `Var.0`.
    pub vars: Vec<VarInfo>,
}

impl SsaBlock {
    /// Metadata for a variable.
    pub fn var_info(&self, v: Var) -> &VarInfo {
        &self.vars[v.0 as usize]
    }

    /// The block's input variables (used before defined), in creation
    /// order.
    pub fn inputs(&self) -> Vec<Var> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, i)| i.input)
            .map(|(n, _)| Var(n as u32))
            .collect()
    }
}

impl fmt::Display for SsaBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ssa block {:#x}:", self.addr)?;
        for s in &self.stmts {
            writeln!(f, "  {s}")?;
        }
        Ok(())
    }
}

struct SsaBuilder {
    vars: Vec<VarInfo>,
    reg_cur: HashMap<RegId, Var>,
    reg_ver: HashMap<RegId, u16>,
    mem_cur: HashMap<u64, Var>,
    mem_ver: HashMap<u64, u16>,
    tmp_map: HashMap<Temp, Var>,
    stmts: Vec<SsaStmt>,
}

impl SsaBuilder {
    fn new() -> SsaBuilder {
        SsaBuilder {
            vars: Vec::new(),
            reg_cur: HashMap::new(),
            reg_ver: HashMap::new(),
            mem_cur: HashMap::new(),
            mem_ver: HashMap::new(),
            tmp_map: HashMap::new(),
            stmts: Vec::new(),
        }
    }

    fn fresh(&mut self, kind: VarKind, input: bool) -> Var {
        let v = Var(self.vars.len() as u32);
        self.vars.push(VarInfo { kind, input });
        v
    }

    fn read_reg(&mut self, r: RegId) -> Var {
        if let Some(&v) = self.reg_cur.get(&r) {
            return v;
        }
        let v = self.fresh(VarKind::Reg(r, 0), true);
        self.reg_cur.insert(r, v);
        self.reg_ver.insert(r, 0);
        v
    }

    fn write_reg(&mut self, r: RegId) -> Var {
        let ver = self.reg_ver.get(&r).map_or(0, |v| v + 1);
        let v = self.fresh(VarKind::Reg(r, ver), false);
        self.reg_cur.insert(r, v);
        self.reg_ver.insert(r, ver);
        v
    }

    fn read_mem(&mut self, loc: u64) -> Var {
        if let Some(&v) = self.mem_cur.get(&loc) {
            return v;
        }
        let v = self.fresh(VarKind::Mem(loc, 0), true);
        self.mem_cur.insert(loc, v);
        self.mem_ver.insert(loc, 0);
        v
    }

    fn write_mem(&mut self, loc: u64) -> Var {
        let ver = self.mem_ver.get(&loc).map_or(0, |v| v + 1);
        let v = self.fresh(VarKind::Mem(loc, ver), false);
        self.mem_cur.insert(loc, v);
        self.mem_ver.insert(loc, ver);
        v
    }

    fn convert(&mut self, e: &Expr) -> SExpr {
        match e {
            Expr::Const(c) => SExpr::Const(*c),
            Expr::Tmp(t) => {
                let v = *self
                    .tmp_map
                    .get(t)
                    .unwrap_or_else(|| panic!("temp t{} used before defined (lifter bug)", t.0));
                SExpr::Var(v)
            }
            Expr::Get(r) => SExpr::Var(self.read_reg(*r)),
            Expr::Load { addr, width } => {
                let a = self.convert(addr);
                let loc = a.structural_hash();
                let mem = self.read_mem(loc);
                SExpr::Load {
                    mem,
                    addr: Box::new(a),
                    width: *width,
                }
            }
            Expr::Bin { op, lhs, rhs } => SExpr::bin(*op, self.convert(lhs), self.convert(rhs)),
            Expr::Un { op, arg } => SExpr::un(*op, self.convert(arg)),
            Expr::Ite {
                cond,
                then_e,
                else_e,
            } => SExpr::Ite {
                cond: Box::new(self.convert(cond)),
                then_e: Box::new(self.convert(then_e)),
                else_e: Box::new(self.convert(else_e)),
            },
        }
    }

    fn push(&mut self, def: Var, kind: SsaKind) {
        self.stmts.push(SsaStmt { def, kind });
    }
}

/// Convert a lifted block to per-block SSA form.
///
/// # Panics
///
/// Panics if the block reads a temporary before defining it, which would
/// indicate a lifter bug (lifters emit temps in SSA order by
/// construction).
pub fn ssa_block(block: &Block) -> SsaBlock {
    let mut b = SsaBuilder::new();
    for s in &block.stmts {
        match s {
            Stmt::SetTmp(t, e) => {
                let rhs = b.convert(e);
                let v = b.fresh(VarKind::Tmp(*t), false);
                b.tmp_map.insert(*t, v);
                b.push(v, SsaKind::Assign(rhs));
            }
            Stmt::Put(r, e) => {
                let rhs = b.convert(e);
                let v = b.write_reg(*r);
                b.push(v, SsaKind::Assign(rhs));
            }
            Stmt::Store { addr, value, width } => {
                let a = b.convert(addr);
                let val = b.convert(value);
                let loc = a.structural_hash();
                let v = b.write_mem(loc);
                b.push(
                    v,
                    SsaKind::Store {
                        addr: a,
                        value: val,
                        width: *width,
                    },
                );
            }
            Stmt::Exit { cond, target } => {
                let c = b.convert(cond);
                let v = b.fresh(VarKind::Exit(*target), false);
                b.push(
                    v,
                    SsaKind::Exit {
                        cond: c,
                        target: *target,
                    },
                );
            }
        }
    }
    // Indirect control flow at the block end is a computation worth a
    // strand (e.g. `jr t9` in Fig. 1 of the paper).
    match &block.jump {
        Jump::Indirect(e)
        | Jump::Call {
            target: CallTarget::Indirect(e),
            ..
        } => {
            let t = b.convert(e);
            let v = b.fresh(VarKind::JumpTarget, false);
            b.push(v, SsaKind::JumpTarget(t));
        }
        _ => {}
    }
    SsaBlock {
        addr: block.addr,
        stmts: b.stmts,
        vars: b.vars,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(stmts: Vec<Stmt>, jump: Jump) -> Block {
        Block {
            addr: 0x1000,
            len: 4 * stmts.len() as u32,
            stmts,
            jump,
            asm: vec![],
        }
    }

    #[test]
    fn every_stmt_defines_one_var() {
        let b = block(
            vec![
                Stmt::SetTmp(
                    Temp(0),
                    Expr::bin(BinOp::Add, Expr::Get(RegId(1)), Expr::Const(4)),
                ),
                Stmt::Put(RegId(1), Expr::Tmp(Temp(0))),
                Stmt::Put(
                    RegId(1),
                    Expr::bin(BinOp::Add, Expr::Get(RegId(1)), Expr::Const(1)),
                ),
            ],
            Jump::Ret,
        );
        let ssa = ssa_block(&b);
        assert_eq!(ssa.stmts.len(), 3);
        // Defs must be unique.
        let mut defs: Vec<u32> = ssa.stmts.iter().map(|s| s.def.0).collect();
        defs.dedup();
        assert_eq!(defs.len(), 3);
    }

    #[test]
    fn register_versions_increase() {
        let b = block(
            vec![
                Stmt::Put(RegId(5), Expr::Const(1)),
                Stmt::Put(RegId(5), Expr::Const(2)),
            ],
            Jump::Ret,
        );
        let ssa = ssa_block(&b);
        assert_eq!(
            ssa.var_info(ssa.stmts[0].def).kind,
            VarKind::Reg(RegId(5), 0)
        );
        assert_eq!(
            ssa.var_info(ssa.stmts[1].def).kind,
            VarKind::Reg(RegId(5), 1)
        );
    }

    #[test]
    fn use_before_def_creates_input() {
        let b = block(
            vec![Stmt::SetTmp(
                Temp(0),
                Expr::bin(BinOp::Add, Expr::Get(RegId(3)), Expr::Get(RegId(4))),
            )],
            Jump::Ret,
        );
        let ssa = ssa_block(&b);
        let inputs = ssa.inputs();
        assert_eq!(inputs.len(), 2);
        assert_eq!(ssa.var_info(inputs[0]).kind, VarKind::Reg(RegId(3), 0));
        assert!(ssa.var_info(inputs[0]).input);
    }

    #[test]
    fn later_reads_see_new_version() {
        let b = block(
            vec![
                Stmt::Put(RegId(2), Expr::Const(7)),
                Stmt::SetTmp(Temp(0), Expr::Get(RegId(2))),
            ],
            Jump::Ret,
        );
        let ssa = ssa_block(&b);
        // t0's use must be the defined version, not a fresh input.
        assert_eq!(ssa.stmts[1].uses(), vec![ssa.stmts[0].def]);
        assert!(ssa.inputs().is_empty());
    }

    #[test]
    fn store_then_load_same_location_links() {
        // store [sp+8] = r1 ; t0 = load [sp+8]
        let addr = Expr::bin(BinOp::Add, Expr::Get(RegId(29)), Expr::Const(8));
        let b = block(
            vec![
                Stmt::Store {
                    addr: addr.clone(),
                    value: Expr::Get(RegId(1)),
                    width: Width::W32,
                },
                Stmt::SetTmp(Temp(0), Expr::load(addr, Width::W32)),
            ],
            Jump::Ret,
        );
        let ssa = ssa_block(&b);
        let store_def = ssa.stmts[0].def;
        assert!(
            ssa.stmts[1].uses().contains(&store_def),
            "load must read the store's mem version"
        );
    }

    #[test]
    fn store_different_locations_do_not_link() {
        let a1 = Expr::bin(BinOp::Add, Expr::Get(RegId(29)), Expr::Const(8));
        let a2 = Expr::bin(BinOp::Add, Expr::Get(RegId(29)), Expr::Const(12));
        let b = block(
            vec![
                Stmt::Store {
                    addr: a1,
                    value: Expr::Const(1),
                    width: Width::W32,
                },
                Stmt::SetTmp(Temp(0), Expr::load(a2, Width::W32)),
            ],
            Jump::Ret,
        );
        let ssa = ssa_block(&b);
        let store_def = ssa.stmts[0].def;
        assert!(!ssa.stmts[1].uses().contains(&store_def));
    }

    #[test]
    fn exit_and_indirect_jump_become_stmts() {
        let b = block(
            vec![Stmt::Exit {
                cond: Expr::bin(BinOp::CmpEq, Expr::Get(RegId(2)), Expr::Const(0x1f)),
                target: 0x40e744,
            }],
            Jump::Indirect(Expr::Get(RegId(25))),
        );
        let ssa = ssa_block(&b);
        assert_eq!(ssa.stmts.len(), 2);
        assert!(matches!(
            ssa.stmts[0].kind,
            SsaKind::Exit {
                target: 0x40e744,
                ..
            }
        ));
        assert!(matches!(ssa.stmts[1].kind, SsaKind::JumpTarget(_)));
        assert_eq!(ssa.var_info(ssa.stmts[1].def).kind, VarKind::JumpTarget);
    }

    #[test]
    fn structural_hash_distinguishes() {
        let a = SExpr::bin(BinOp::Add, SExpr::Var(Var(0)), SExpr::Const(4));
        let b = SExpr::bin(BinOp::Add, SExpr::Var(Var(0)), SExpr::Const(5));
        let c = SExpr::bin(BinOp::Sub, SExpr::Var(Var(0)), SExpr::Const(4));
        assert_ne!(a.structural_hash(), b.structural_hash());
        assert_ne!(a.structural_hash(), c.structural_hash());
        assert_eq!(a.structural_hash(), a.clone().structural_hash());
    }
}
