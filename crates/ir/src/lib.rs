//! VEX-like intermediate representation for the FirmUp pipeline.
//!
//! The paper lifts machine code to Valgrind's VEX IR through angr.io
//! (§3.1). This crate is the from-scratch equivalent: a small, explicit,
//! side-effect-complete block IR that the per-architecture lifters in
//! `firmup-isa` target, and that `firmup-core` decomposes into strands.
//!
//! Key properties mirrored from VEX:
//!
//! * **Full machine state** — every register write (including condition
//!   flags) is an explicit [`Stmt::Put`]; nothing is implicit.
//! * **Per-block SSA** — temporaries are assigned exactly once; the
//!   [`ssa`] module renames registers and memory locations so that *every*
//!   statement defines exactly one variable, the precondition of the
//!   paper's Algorithm 1.
//! * **Architecture neutrality** — registers are opaque [`RegId`]s; the
//!   IR never mentions an ISA.
//!
//! # Example
//!
//! ```
//! use firmup_ir::{Block, Expr, Jump, RegId, Stmt, Temp, Width};
//!
//! // r1 = r0 + 4; branch to 0x40 if r1 == 0
//! let block = Block {
//!     addr: 0x1000,
//!     len: 8,
//!     stmts: vec![
//!         Stmt::SetTmp(Temp(0), Expr::bin(firmup_ir::BinOp::Add, Expr::Get(RegId(0)), Expr::Const(4))),
//!         Stmt::Put(RegId(1), Expr::Tmp(Temp(0))),
//!         Stmt::Exit {
//!             cond: Expr::bin(firmup_ir::BinOp::CmpEq, Expr::Tmp(Temp(0)), Expr::Const(0)),
//!             target: 0x40,
//!         },
//!     ],
//!     jump: Jump::Fall(0x1008),
//!     asm: vec!["addiu r1, r0, 4".into(), "beqz r1, 0x40".into()],
//! };
//! let ssa = firmup_ir::ssa::ssa_block(&block);
//! assert_eq!(ssa.stmts.len(), 3);
//! # let _ = Width::W32;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod expr;
pub mod hash;
pub mod interp;
pub mod ssa;
pub mod stmt;

pub use block::{Block, CallGraph, Cfg, Procedure, ProgramIr};
pub use expr::{BinOp, Expr, RegId, Temp, UnOp, Width};
pub use interp::{EvalError, Machine};
pub use ssa::{SExpr, SsaBlock, SsaKind, SsaStmt, Var, VarKind};
pub use stmt::{CallTarget, Jump, Stmt};
