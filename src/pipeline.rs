//! Shared unpack → lift plumbing for the CLI front end.
//!
//! Three commands walk the same front half of the pipeline — `scan`
//! (cold path), `index` (per-image checkpointed), and `fsck --repair`
//! (rebuild damaged segments) — so the fault-isolated unpack and the
//! work-stealing parallel lift live here once. Every per-image and
//! per-part step runs under [`isolate`]: a corrupt image or a panicking
//! lift is a structured, skippable error, never a process abort.

use firmup_core::canon::CanonConfig;
use firmup_core::error::{isolate, FaultCtx, FirmUpError};
use firmup_core::sim::{index_elf, ExecutableRep};
use firmup_firmware::image::unpack;
use firmup_obj::Elf;

/// One liftable part: attribution context, executable id
/// (`image:part`), and the raw ELF bytes.
pub type PartJob = (FaultCtx, String, Vec<u8>);

/// Unpack one image blob into its part jobs. Emits an `unpack.issue`
/// telemetry event per degraded-but-recoverable issue.
///
/// # Errors
///
/// A structured [`FirmUpError`] when the image is unreadable beyond
/// recovery (including a contained panic in the unpacker).
pub fn unpack_parts(tag: &str, bytes: &[u8]) -> Result<Vec<PartJob>, FirmUpError> {
    let img_ctx = FaultCtx::image(tag);
    let u = isolate(img_ctx.clone(), || unpack(bytes).map_err(FirmUpError::from))?;
    for issue in &u.issues {
        firmup_telemetry::event(
            "unpack.issue",
            &[
                ("image", firmup_telemetry::json::Json::Str(tag.to_string())),
                (
                    "issue",
                    firmup_telemetry::json::Json::Str(format!("{issue:?}")),
                ),
            ],
        );
    }
    Ok(u.parts
        .into_iter()
        .map(|part| {
            let ctx = img_ctx.clone().with_package(&part.name);
            let id = format!("{tag}:{}", part.name);
            (ctx, id, part.data)
        })
        .collect())
}

/// Lift + canonicalize each part, fanning out over `threads` scoped
/// worker threads (0 = one per core). Results keep part order; each
/// slot is the part's [`ExecutableRep`] or the structured error that
/// felled it.
pub fn lift_parts(parts: &[PartJob], threads: usize) -> Vec<Result<ExecutableRep, FirmUpError>> {
    let canon = CanonConfig::default();
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
    } else {
        threads
    };
    // Every part runs under a `part` span parented on the caller's
    // innermost span and keyed by part index, so the span tree is the
    // same whether the part lifts inline or on a worker thread.
    let parent = firmup_telemetry::current_ctx();
    let lift_one = |i: usize, (ctx, id, data): &PartJob| {
        let _span = match &parent {
            Some(p) => p.child("part", i as u64).enter(),
            None => firmup_telemetry::span!("part"),
        };
        isolate(ctx.clone(), || {
            let elf = Elf::parse(data)?;
            index_elf(&elf, id, &canon).map_err(FirmUpError::from)
        })
    };
    if threads <= 1 || parts.len() <= 1 {
        return parts
            .iter()
            .enumerate()
            .map(|(i, p)| lift_one(i, p))
            .collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: std::sync::Mutex<Vec<Option<Result<ExecutableRep, FirmUpError>>>> =
        std::sync::Mutex::new(vec![None; parts.len()]);
    std::thread::scope(|scope| {
        for w in 0..threads.min(parts.len()) {
            let (lift_one, next, slots) = (&lift_one, &next, &slots);
            scope.spawn(move || {
                firmup_telemetry::set_worker(Some(w as u32));
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= parts.len() {
                        break;
                    }
                    let r = lift_one(i, &parts[i]);
                    slots.lock().expect("lift slots lock")[i] = Some(r);
                }
            });
        }
    });
    slots
        .into_inner()
        .expect("lift slots lock")
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// Unpack one image and lift every part, keeping only the successful
/// reps (failures are reported to stderr and skipped) — the per-image
/// unit `firmup index` checkpoints and `fsck --repair` rebuilds.
///
/// # Errors
///
/// Only when the image itself is unreadable; per-part failures degrade.
pub fn lift_image(
    tag: &str,
    bytes: &[u8],
    threads: usize,
) -> Result<Vec<ExecutableRep>, FirmUpError> {
    let parts = unpack_parts(tag, bytes)?;
    let mut reps = Vec::with_capacity(parts.len());
    for r in lift_parts(&parts, threads) {
        match r {
            Ok(rep) => reps.push(rep),
            Err(e) => {
                eprintln!("firmup: skipping part: {e}");
                firmup_telemetry::incr(&format!("scan.errors.{}", e.kind()));
            }
        }
    }
    Ok(reps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmup_firmware::corpus::{generate, CorpusConfig};

    #[test]
    fn lift_image_produces_ordered_reps_and_degrades_on_garbage() {
        let corpus = generate(&CorpusConfig::tiny());
        let img = &corpus.images[0];
        let reps = lift_image("img0", &img.blob, 2).unwrap();
        assert!(!reps.is_empty());
        // Part order is preserved and ids carry the tag.
        assert!(reps.iter().all(|r| r.id.starts_with("img0:")));
        let serial = lift_image("img0", &img.blob, 1).unwrap();
        assert_eq!(reps, serial, "parallel lift must match serial order");
        // Total garbage is a structured error, not a panic.
        assert!(lift_image("junk", &[0u8; 16], 1).is_err());
    }
}
