//! Shared pipeline plumbing for the CLI front end and the daemon.
//!
//! Three commands walk the same front half of the pipeline — `scan`
//! (cold path), `index` (per-image checkpointed), and `fsck --repair`
//! (rebuild damaged segments) — so the fault-isolated unpack and the
//! work-stealing parallel lift live here once. Every per-image and
//! per-part step runs under [`isolate`]: a corrupt image or a panicking
//! lift is a structured, skippable error, never a process abort.
//!
//! The back half lives here too: [`run_scan`] executes one complete
//! corpus scan (query build → unit decomposition → work-stealing search
//! → deterministic merge) against an already-acquired [`CorpusIndex`]
//! and returns a structured [`ScanOutput`]. `firmup scan` renders it as
//! text or JSON; `firmup serve` renders the *same* [`ScanOutput`] per
//! request — which is what makes a served response byte-identical to
//! single-threaded CLI output for the same snapshot.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use firmup_core::canon::CanonConfig;
use firmup_core::error::{isolate, FaultCtx, FirmUpError};
use firmup_core::persist::CorpusIndex;
use firmup_core::search::{
    merge_outcomes, prefilter_candidates, scan_units, BudgetReason, Explain, ScanBudget, ScanUnit,
    SearchConfig, TargetOutcome,
};
use firmup_core::sim::{index_elf, ExecutableRep};
use firmup_firmware::corpus::try_build_query;
use firmup_firmware::image::unpack;
use firmup_firmware::packages::{all_cves, CveSpec};
use firmup_isa::Arch;
use firmup_obj::Elf;
use firmup_telemetry::json::Json;

/// One liftable part: attribution context, executable id
/// (`image:part`), and the raw ELF bytes.
pub type PartJob = (FaultCtx, String, Vec<u8>);

/// Unpack one image blob into its part jobs. Emits an `unpack.issue`
/// telemetry event per degraded-but-recoverable issue.
///
/// # Errors
///
/// A structured [`FirmUpError`] when the image is unreadable beyond
/// recovery (including a contained panic in the unpacker).
pub fn unpack_parts(tag: &str, bytes: &[u8]) -> Result<Vec<PartJob>, FirmUpError> {
    let img_ctx = FaultCtx::image(tag);
    let u = isolate(img_ctx.clone(), || unpack(bytes).map_err(FirmUpError::from))?;
    for issue in &u.issues {
        firmup_telemetry::event(
            "unpack.issue",
            &[
                ("image", firmup_telemetry::json::Json::Str(tag.to_string())),
                (
                    "issue",
                    firmup_telemetry::json::Json::Str(format!("{issue:?}")),
                ),
            ],
        );
    }
    Ok(u.parts
        .into_iter()
        .map(|part| {
            let ctx = img_ctx.clone().with_package(&part.name);
            let id = format!("{tag}:{}", part.name);
            (ctx, id, part.data)
        })
        .collect())
}

/// Lift + canonicalize each part, fanning out over `threads` scoped
/// worker threads (0 = one per core). Results keep part order; each
/// slot is the part's [`ExecutableRep`] or the structured error that
/// felled it.
pub fn lift_parts(parts: &[PartJob], threads: usize) -> Vec<Result<ExecutableRep, FirmUpError>> {
    let canon = CanonConfig::default();
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
    } else {
        threads
    };
    // Every part runs under a `part` span parented on the caller's
    // innermost span and keyed by part index, so the span tree is the
    // same whether the part lifts inline or on a worker thread.
    let parent = firmup_telemetry::current_ctx();
    let lift_one = |i: usize, (ctx, id, data): &PartJob| {
        let _span = match &parent {
            Some(p) => p.child("part", i as u64).enter(),
            None => firmup_telemetry::span!("part"),
        };
        isolate(ctx.clone(), || {
            let elf = Elf::parse(data)?;
            index_elf(&elf, id, &canon).map_err(FirmUpError::from)
        })
    };
    if threads <= 1 || parts.len() <= 1 {
        return parts
            .iter()
            .enumerate()
            .map(|(i, p)| lift_one(i, p))
            .collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: std::sync::Mutex<Vec<Option<Result<ExecutableRep, FirmUpError>>>> =
        std::sync::Mutex::new(vec![None; parts.len()]);
    std::thread::scope(|scope| {
        for w in 0..threads.min(parts.len()) {
            let (lift_one, next, slots) = (&lift_one, &next, &slots);
            scope.spawn(move || {
                firmup_telemetry::set_worker(Some(w as u32));
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= parts.len() {
                        break;
                    }
                    let r = lift_one(i, &parts[i]);
                    slots.lock().expect("lift slots lock")[i] = Some(r);
                }
            });
        }
    });
    slots
        .into_inner()
        .expect("lift slots lock")
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// Unpack one image and lift every part, keeping only the successful
/// reps (failures are reported to stderr and skipped) — the per-image
/// unit `firmup index` checkpoints and `fsck --repair` rebuilds.
///
/// # Errors
///
/// Only when the image itself is unreadable; per-part failures degrade.
pub fn lift_image(
    tag: &str,
    bytes: &[u8],
    threads: usize,
) -> Result<Vec<ExecutableRep>, FirmUpError> {
    let parts = unpack_parts(tag, bytes)?;
    let mut reps = Vec::with_capacity(parts.len());
    for r in lift_parts(&parts, threads) {
        match r {
            Ok(rep) => reps.push(rep),
            Err(e) => {
                eprintln!("firmup: skipping part: {e}");
                firmup_telemetry::incr(&format!("scan.errors.{}", e.kind()));
            }
        }
    }
    Ok(reps)
}

// ---------------------------------------------------------------------------
// Shared scan core (CLI `scan` and `serve` both render from this)
// ---------------------------------------------------------------------------

/// Number of contiguous corpus shards a scan decomposes into. A fixed
/// constant — never derived from `--threads` — so the (query ×
/// candidate-shard) unit decomposition, and with it the span tree
/// reconstructed from `--trace-out`, is identical at every thread
/// count; 32 keeps stealing granular for typical core counts
/// (`CorpusIndex::shards` clamps to the corpus size).
pub const SCAN_SHARDS: usize = 32;

/// A compiled CVE query: the query rep, the index of the vulnerable
/// procedure inside it, and the vulnerable package version string.
type QueryRep = Arc<(ExecutableRep, usize, String)>;

/// Cache of compiled CVE queries keyed by (package, arch). Query
/// compilation is corpus-independent, so one cache can serve every scan
/// in a process — the CLI builds a fresh one per run, `firmup serve`
/// shares one across all requests. A failed build is cached as `None`
/// (and reported once via [`ScanOutput::diagnostics`]) so a broken
/// package is not recompiled per request.
#[derive(Default)]
pub struct QueryCache {
    entries: Mutex<HashMap<(String, Arch), Option<QueryRep>>>,
}

/// One scan job: a built CVE query and the candidate targets it plays
/// against. The query rep lives behind an `Arc` shared with the cache —
/// an [`ExecutableRep`] is never cloned on the scan path.
struct ScanJob {
    cve: CveSpec,
    query: QueryRep,
    candidates: Vec<usize>,
    /// Full prefilter ranking `(corpus index, overlap score)` kept for
    /// explain provenance (None when explain is off).
    prefilter: Option<Vec<(usize, f64)>>,
}

/// What one scan should hunt and how hard.
#[derive(Clone, Debug, Default)]
pub struct ScanOptions {
    /// Restrict to one CVE id (`--cve`); `None` hunts every built-in.
    pub cve: Option<String>,
    /// Prefilter each query to the K most strand-overlapping
    /// executables before playing the game (0 = play everything).
    pub top_k: usize,
    /// Worker threads for the work-stealing executor (0 = all cores).
    /// Findings are byte-identical for every value.
    pub threads: usize,
    /// Attach an [`Explain`] provenance record to every finding.
    pub explain: bool,
}

/// One confirmed finding, with everything both renderers (CLI text/JSON
/// and the serve response) need.
#[derive(Clone, Debug)]
pub struct ScanFinding {
    /// The CVE query that matched.
    pub cve: CveSpec,
    /// Vulnerable package version string from the query build.
    pub version: String,
    /// Target executable id (`image:part`).
    pub target: String,
    /// Address of the matched procedure inside the target.
    pub addr: u32,
    /// Similarity score of the match.
    pub sim: usize,
    /// Back-and-forth game steps played.
    pub steps: usize,
    /// Provenance record (only when [`ScanOptions::explain`] is set).
    pub explain: Option<Explain>,
}

impl ScanFinding {
    /// The finding as one JSON object (the element shape of the CLI's
    /// `--format json` `findings` array and of serve responses).
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("cve".into(), Json::Str(self.cve.cve.to_string())),
            (
                "procedure".into(),
                Json::Str(self.cve.procedure.to_string()),
            ),
            ("package".into(), Json::Str(self.cve.package.to_string())),
            ("version".into(), Json::Str(self.version.clone())),
            ("target".into(), Json::Str(self.target.clone())),
            ("addr".into(), Json::Num(f64::from(self.addr))),
            ("sim".into(), Json::Num(self.sim as f64)),
            ("steps".into(), Json::Num(self.steps as f64)),
        ];
        if let Some(ex) = &self.explain {
            obj.push(("explain".into(), ex.to_json()));
        }
        Json::Obj(obj)
    }
}

/// Structured result of one whole-corpus scan: deterministically merged
/// findings plus degradation counts and human-readable diagnostics.
#[derive(Clone, Debug, Default)]
pub struct ScanOutput {
    /// Confirmed findings in deterministic merge order (sim descending,
    /// target id, address — never arrival order).
    pub findings: Vec<ScanFinding>,
    /// Targets whose work panicked (the unwind was contained).
    pub poisoned: usize,
    /// Targets degraded by a budget bound.
    pub over_budget: usize,
    /// Whether the whole-scan deadline fired at least once.
    pub saw_scan_deadline: bool,
    /// Whether the step budget fired at least once.
    pub saw_step_budget: bool,
    /// Human-readable degradation lines (poisoned targets, over-budget
    /// targets, query-build failures), for stderr.
    pub diagnostics: Vec<String>,
}

impl ScanOutput {
    /// Render the scan as the canonical findings document — the exact
    /// JSON the CLI prints on stdout under `--format json` and the body
    /// `firmup serve` returns, byte-identical for the same corpus
    /// snapshot and options at any thread count.
    pub fn render_json(&self, interrupted: bool) -> Json {
        Json::Obj(vec![
            (
                "findings".into(),
                Json::Arr(self.findings.iter().map(ScanFinding::to_json).collect()),
            ),
            ("total".into(), Json::Num(self.findings.len() as f64)),
            ("poisoned".into(), Json::Num(self.poisoned as f64)),
            ("over_budget".into(), Json::Num(self.over_budget as f64)),
            ("interrupted".into(), Json::Bool(interrupted)),
        ])
    }
}

/// Execute one complete scan against an acquired corpus: build (or
/// fetch cached) CVE queries, decompose candidates along the index's
/// [`SCAN_SHARDS`] shard boundaries into fine-grained work units, run
/// them all in one work-stealing pass sharing `budget`, and merge the
/// outcomes deterministically. `stop` is polled at unit boundaries (the
/// cooperative-cancel path behind `^C` and serve's drain deadline).
///
/// On a lazily opened index only the union of every job's candidates is
/// decoded (batched, before the parallel pass), so with `--top-k` the
/// per-scan decode cost tracks the candidate set, not the corpus.
///
/// Every per-finding `finding` telemetry event is emitted here, under
/// whatever span/trace context the caller has entered — `firmup serve`
/// enters a per-request root so concurrent scans trace disjointly.
///
/// # Errors
///
/// A damaged executable payload in a lazily opened index surfaces as
/// the structured [`FirmUpError::Index`] the decode diagnosed (callers
/// add the index path context).
pub fn run_scan(
    corpus: &CorpusIndex,
    opts: &ScanOptions,
    budget: &ScanBudget,
    cache: &QueryCache,
    stop: &(dyn Fn() -> bool + Sync),
) -> Result<ScanOutput, FirmUpError> {
    let canon = CanonConfig::default();
    let mut out = ScanOutput::default();

    // Group targets by architecture: each (CVE, arch) pair is one job.
    // Identity metadata only — no executable payload is decoded here.
    let mut arch_groups: Vec<(Arch, Vec<usize>)> = Vec::new();
    for i in 0..corpus.len() {
        let arch = corpus.exe_arch(i);
        match arch_groups.iter_mut().find(|(a, _)| *a == arch) {
            Some((_, members)) => members.push(i),
            None => arch_groups.push((arch, vec![i])),
        }
    }
    // Groups are discovered in executable order, which an `index --add`
    // history is free to permute. Sort by arch so the job list — and
    // with it the findings stream — is a pure function of corpus
    // content, not of ingestion order.
    arch_groups.sort_by_key(|(a, _)| *a);

    // Phase 1 — build the job list serially: compile one query per
    // (package, arch) and select its candidates (whole arch group, or
    // top-k by weighted strand overlap from the postings table).
    let mut jobs: Vec<ScanJob> = Vec::new();
    {
        let _span = firmup_telemetry::span!("queries");
        for cve in all_cves() {
            if let Some(filter) = &opts.cve {
                if cve.cve != filter.as_str() {
                    continue;
                }
            }
            for (arch, members) in &arch_groups {
                let key = (cve.package.to_string(), *arch);
                let mut entries = cache.entries.lock().expect("query cache lock");
                let entry = entries.entry(key).or_insert_with(|| {
                    let (elf, version) = match try_build_query(cve.package, *arch) {
                        Ok(q) => q,
                        Err(e) => {
                            out.diagnostics
                                .push(format!("firmup: query for {}: {e}", cve.cve));
                            return None;
                        }
                    };
                    index_elf(&elf, "query", &canon).ok().and_then(|mut rep| {
                        // Intern against the current corpus snapshot up
                        // front: a fresh query must not take the
                        // re-intern clone below (`rep.clones` is pinned
                        // flat — and zero — as the corpus grows).
                        rep.intern_with(&corpus.interner);
                        rep.find_named(cve.procedure)
                            .map(|qv| Arc::new((rep, qv, version)))
                    })
                });
                // Re-intern the cached query against the *current*
                // corpus snapshot: the cache outlives hot reloads, and
                // a stale interner token would silently demote the
                // whole scan to the hash-compare slow path (never to a
                // wrong answer — token mismatches fall back). One rep
                // clone per (package, arch, corpus *generation*) — a
                // hot-reload event, never a function of corpus size.
                if let Some(q) = entry.as_mut() {
                    let tok = corpus.interner.token();
                    let have =
                        q.0.procedures
                            .first()
                            .and_then(|p| p.interned.as_ref())
                            .map(|i| i.token);
                    if have != Some(tok) {
                        let mut rep = q.0.clone();
                        rep.intern_with(&corpus.interner);
                        *q = Arc::new((rep, q.1, q.2.clone()));
                    }
                }
                let Some(query) = entry.clone() else {
                    continue;
                };
                drop(entries);
                // The full overlap ranking serves two masters: top-k
                // candidate selection and explain provenance (rank /
                // score / pool). Computed once, unconditionally ranked
                // (k = 0) so explain records are identical with and
                // without top-k trimming. Score ties are re-broken on
                // the executable's stable id: the raw postings index
                // reflects ingestion order, which an `index --add`
                // history is free to permute, and the top-k cut must
                // land identically for every such history.
                let ranked: Option<Vec<(usize, f64)>> =
                    (opts.top_k > 0 || opts.explain).then(|| {
                        let mut r = prefilter_candidates(
                            &query.0.procedures[query.1],
                            &corpus.postings,
                            Some(&corpus.context),
                            0,
                        );
                        r.sort_by(|a, b| {
                            b.1.partial_cmp(&a.1)
                                .unwrap_or(std::cmp::Ordering::Equal)
                                .then_with(|| corpus.exe_id(a.0).cmp(corpus.exe_id(b.0)))
                        });
                        r
                    });
                let candidates: Vec<usize> = if opts.top_k > 0 {
                    ranked
                        .as_deref()
                        .unwrap_or_default()
                        .iter()
                        .map(|&(i, _)| i)
                        .filter(|&i| corpus.exe_arch(i) == *arch)
                        .take(opts.top_k)
                        .collect()
                } else {
                    members.clone()
                };
                if candidates.is_empty() {
                    continue;
                }
                jobs.push(ScanJob {
                    cve,
                    query,
                    candidates,
                    prefilter: if opts.explain { ranked } else { None },
                });
            }
        }
    }

    // Phase 2 — decode the union of every job's candidates (a no-op on
    // eager indexes; on lazy ones this is the only place executable
    // payloads are read, batched so the parallel pass below borrows
    // infallibly), then decompose candidate lists along the index's
    // shard boundaries into fine-grained (query × candidate-shard) work
    // units and execute them all in one work-stealing pass sharing a
    // single scan-wide budget.
    {
        let _span = firmup_telemetry::span!("decode");
        let mut wanted: Vec<usize> = jobs
            .iter()
            .flat_map(|j| j.candidates.iter().copied())
            .collect();
        wanted.sort_unstable();
        wanted.dedup();
        corpus.ensure_decoded(wanted)?;
    }
    let shards = corpus.shard_ranges(SCAN_SHARDS);
    let mut units: Vec<ScanUnit> = Vec::new();
    for (j, job) in jobs.iter().enumerate() {
        for shard in &shards {
            let targets: Vec<usize> = job
                .candidates
                .iter()
                .copied()
                .filter(|i| shard.contains(i))
                .collect();
            if !targets.is_empty() {
                units.push(ScanUnit { job: j, targets });
            }
        }
    }
    let job_queries: Vec<(&ExecutableRep, usize)> =
        jobs.iter().map(|j| (&j.query.0, j.query.1)).collect();
    let config = SearchConfig {
        context: Some(corpus.context.clone()),
        threads: opts.threads,
        ..SearchConfig::default()
    };
    let corpus_view = corpus.rep_view();
    let per_unit = scan_units(&job_queries, &units, &corpus_view, &config, budget, stop);

    // Phase 3 — regroup outcomes per job and merge deterministically:
    // findings rank on (sim, target id, address), never arrival order,
    // so any thread count yields byte-identical findings.
    let mut per_job: Vec<Vec<Vec<TargetOutcome>>> = jobs.iter().map(|_| Vec::new()).collect();
    for (unit, outcomes) in units.iter().zip(per_unit) {
        per_job[unit.job].push(outcomes);
    }
    // Resolve a finding's target id back to its corpus slot, for
    // explain provenance (strand counts, prefilter rank).
    let target_index: HashMap<&str, usize> =
        (0..corpus.len()).map(|i| (corpus.exe_id(i), i)).collect();
    for (job, job_outcomes) in jobs.iter().zip(per_job) {
        let cve = &job.cve;
        for outcome in merge_outcomes(job_outcomes) {
            let id = outcome.target_id().to_string();
            match &outcome {
                TargetOutcome::Poisoned { panic, .. } => {
                    out.diagnostics.push(format!(
                        "firmup: target {id} poisoned while hunting {}: {panic}",
                        cve.cve
                    ));
                    out.poisoned += 1;
                    continue;
                }
                TargetOutcome::BudgetExceeded { reason, .. } => {
                    out.diagnostics.push(format!(
                        "firmup: target {id} over budget ({reason}) hunting {}",
                        cve.cve
                    ));
                    out.over_budget += 1;
                    match reason {
                        BudgetReason::ScanDeadline => out.saw_scan_deadline = true,
                        BudgetReason::StepBudget => out.saw_step_budget = true,
                        _ => {}
                    }
                }
                TargetOutcome::Completed(_) => {}
            }
            let Some(r) = outcome.result() else { continue };
            if let Some(m) = &r.matched {
                let explain_rec = if opts.explain {
                    target_index.get(id.as_str()).map(|&ti| {
                        let mut ex = Explain::for_match(
                            &job.query.0,
                            job.query.1,
                            corpus.get(ti),
                            m,
                            r,
                            &config,
                        );
                        if let Some(pf) = &job.prefilter {
                            if let Some(pos) = pf.iter().position(|&(i, _)| i == ti) {
                                ex = ex.with_prefilter(pos + 1, pf[pos].1, pf.len());
                            }
                        }
                        ex
                    })
                } else {
                    None
                };
                firmup_telemetry::event(
                    "finding",
                    &[
                        ("cve", Json::Str(cve.cve.to_string())),
                        ("target", Json::Str(id.clone())),
                        ("addr", Json::Num(f64::from(m.addr))),
                        ("sim", Json::Num(m.sim as f64)),
                        ("steps", Json::Num(r.steps as f64)),
                    ],
                );
                out.findings.push(ScanFinding {
                    cve: *cve,
                    version: job.query.2.clone(),
                    target: id,
                    addr: m.addr,
                    sim: m.sim,
                    steps: r.steps,
                    explain: explain_rec,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmup_firmware::corpus::{generate, CorpusConfig};

    #[test]
    fn lift_image_produces_ordered_reps_and_degrades_on_garbage() {
        let corpus = generate(&CorpusConfig::tiny());
        let img = &corpus.images[0];
        let reps = lift_image("img0", &img.blob, 2).unwrap();
        assert!(!reps.is_empty());
        // Part order is preserved and ids carry the tag.
        assert!(reps.iter().all(|r| r.id.starts_with("img0:")));
        let serial = lift_image("img0", &img.blob, 1).unwrap();
        assert_eq!(reps, serial, "parallel lift must match serial order");
        // Total garbage is a structured error, not a panic.
        assert!(lift_image("junk", &[0u8; 16], 1).is_err());
    }
}
