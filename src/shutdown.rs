//! Graceful signal handling for long-running commands.
//!
//! `firmup index` over a 200K-executable corpus runs for hours; a ^C
//! must not discard committed checkpoint segments or leave a torn
//! journal. [`install`] registers a minimal signal handler that only
//! sets an atomic flag; the `index`/`scan` loops poll [`interrupted`]
//! at their safe points (between committed segments, between search
//! batches), flush what they have, and exit with
//! [`INTERRUPT_EXIT_CODE`] so callers can tell a clean interrupt from a
//! failure.
//!
//! `firmup serve` needs the fuller daemon set — [`install_serve`]
//! additionally registers SIGTERM (the orchestrator's polite stop,
//! reported by [`term_signal`] so the exit code can distinguish it from
//! ^C) and SIGHUP (hot index reload: the handler only bumps a
//! generation counter read by [`hup_generation`]; the accept loop
//! notices the change and swaps the snapshot at a safe point).
//!
//! A second ^C/SIGTERM while the first is still being honored falls
//! back to the default disposition (immediate termination) — the escape
//! hatch when a safe point is far away. SIGHUP stays installed: reload
//! is repeatable.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Exit code for a run cut short by SIGINT after flushing its state
/// (the conventional 128 + SIGINT).
pub const INTERRUPT_EXIT_CODE: u8 = 130;

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// First terminating signal received (0 = none yet). Only the first
/// write sticks, so the exit code reflects what actually stopped us.
static TERM_SIG: AtomicUsize = AtomicUsize::new(0);

/// SIGHUP reload-request generation; every HUP bumps it.
static HUP_GEN: AtomicU64 = AtomicU64::new(0);

/// Whether a SIGINT (or, after [`install_serve`], SIGTERM) has arrived
/// since installation.
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// Which terminating signal arrived first (SIGINT = 2, SIGTERM = 15),
/// or `None` while still running. Lets `firmup serve` exit 0 on a
/// drain-to-completion SIGTERM but 130 on ^C.
pub fn term_signal() -> Option<i32> {
    match TERM_SIG.load(Ordering::SeqCst) {
        0 => None,
        s => Some(s as i32),
    }
}

/// How many SIGHUPs have arrived since process start. A serving loop
/// remembers the last generation it acted on and reloads whenever the
/// counter moves past it.
pub fn hup_generation() -> u64 {
    HUP_GEN.load(Ordering::SeqCst)
}

/// Reset the flag (tests only; production installs once per process).
pub fn reset() {
    INTERRUPTED.store(false, Ordering::SeqCst);
    TERM_SIG.store(0, Ordering::SeqCst);
}

/// Install the SIGINT handler. Idempotent; a no-op on non-Unix
/// platforms (where [`interrupted`] simply stays false and commands run
/// to completion or die by the default disposition).
pub fn install() {
    #[cfg(unix)]
    sys::install();
}

/// Install the full daemon signal set (SIGINT + SIGTERM terminate after
/// a graceful drain, SIGHUP requests a hot reload). Idempotent; a no-op
/// on non-Unix platforms.
pub fn install_serve() {
    #[cfg(unix)]
    sys::install_serve();
}

#[cfg(unix)]
#[allow(unsafe_code)] // libc signal(2) binding: std exposes no signal API
mod sys {
    use super::{AtomicBool, Ordering, HUP_GEN, INTERRUPTED, TERM_SIG};

    const SIGHUP: i32 = 1;
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    const SIG_DFL: usize = 0;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_term(sig: i32) {
        // Async-signal-safe: atomic stores only, then restore the
        // default disposition so a second signal terminates immediately.
        let _ = TERM_SIG.compare_exchange(0, sig as usize, Ordering::SeqCst, Ordering::SeqCst);
        INTERRUPTED.store(true, Ordering::SeqCst);
        unsafe {
            signal(sig, SIG_DFL);
        }
    }

    extern "C" fn on_hup(_sig: i32) {
        // Stays installed: reload is repeatable, unlike termination.
        HUP_GEN.fetch_add(1, Ordering::SeqCst);
    }

    static INSTALLED: AtomicBool = AtomicBool::new(false);
    static SERVE_INSTALLED: AtomicBool = AtomicBool::new(false);

    pub fn install() {
        if INSTALLED.swap(true, Ordering::SeqCst) {
            return;
        }
        unsafe {
            signal(SIGINT, on_term as extern "C" fn(i32) as usize);
        }
    }

    pub fn install_serve() {
        install();
        if SERVE_INSTALLED.swap(true, Ordering::SeqCst) {
            return;
        }
        unsafe {
            signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
            signal(SIGHUP, on_hup as extern "C" fn(i32) as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_resets() {
        install();
        assert!(!interrupted());
        assert_eq!(term_signal(), None);
        INTERRUPTED.store(true, Ordering::SeqCst);
        TERM_SIG.store(15, Ordering::SeqCst);
        assert!(interrupted());
        assert_eq!(term_signal(), Some(15));
        reset();
        assert!(!interrupted());
        assert_eq!(term_signal(), None);
        // HUP generation is monotonic and starts observable.
        assert!(hup_generation() < u64::MAX);
    }
}
