//! Graceful SIGINT handling for long-running commands.
//!
//! `firmup index` over a 200K-executable corpus runs for hours; a ^C
//! must not discard committed checkpoint segments or leave a torn
//! journal. [`install`] registers a minimal signal handler that only
//! sets an atomic flag; the `index`/`scan` loops poll [`interrupted`]
//! at their safe points (between committed segments, between search
//! batches), flush what they have, and exit with
//! [`INTERRUPT_EXIT_CODE`] so callers can tell a clean interrupt from a
//! failure.
//!
//! A second ^C while the first is still being honored falls back to the
//! default disposition (immediate termination) — the escape hatch when
//! a safe point is far away.

use std::sync::atomic::{AtomicBool, Ordering};

/// Exit code for a run cut short by SIGINT after flushing its state
/// (the conventional 128 + SIGINT).
pub const INTERRUPT_EXIT_CODE: u8 = 130;

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// Whether a SIGINT has arrived since [`install`].
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// Reset the flag (tests only; production installs once per process).
pub fn reset() {
    INTERRUPTED.store(false, Ordering::SeqCst);
}

/// Install the SIGINT handler. Idempotent; a no-op on non-Unix
/// platforms (where [`interrupted`] simply stays false and commands run
/// to completion or die by the default disposition).
pub fn install() {
    #[cfg(unix)]
    sys::install();
}

#[cfg(unix)]
#[allow(unsafe_code)] // libc signal(2) binding: std exposes no signal API
mod sys {
    use super::{AtomicBool, Ordering, INTERRUPTED};

    const SIGINT: i32 = 2;
    const SIG_DFL: usize = 0;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_sig: i32) {
        // Async-signal-safe: one atomic store, then restore the default
        // disposition so a second ^C terminates immediately.
        INTERRUPTED.store(true, Ordering::SeqCst);
        unsafe {
            signal(SIGINT, SIG_DFL);
        }
    }

    static INSTALLED: AtomicBool = AtomicBool::new(false);

    pub fn install() {
        if INSTALLED.swap(true, Ordering::SeqCst) {
            return;
        }
        unsafe {
            signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_resets() {
        install();
        assert!(!interrupted());
        INTERRUPTED.store(true, Ordering::SeqCst);
        assert!(interrupted());
        reset();
        assert!(!interrupted());
    }
}
