//! `firmup` — command-line front end for the FirmUp pipeline.
//!
//! ```text
//! firmup gen-corpus --out DIR [--scale PRESET] [--threads N] [--resume]
//! firmup info PATH                      # firmware image or ELF
//! firmup disasm ELF [--proc NAME]       # disassembly + canonical strands
//! firmup index IMAGE... --out DIR       # persist a strand-hash corpus index
//! firmup index ... --resume             # continue a crashed/interrupted build
//! firmup fsck DIR [--repair] [IMAGE...] # verify (and rebuild) a saved index
//! firmup scan IMAGE... [--cve ID]       # hunt CVE queries in images
//! firmup scan --index DIR [--cve ID]    # warm scan from a saved index
//! firmup profile IMAGE... [--out FILE]  # scan + collapsed-stack profile
//! firmup serve --index DIR [--listen ADDR]  # long-lived scan daemon
//! ```
//!
//! See the README's subcommand reference table for the full flag list.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use firmup::core::canon::{canonicalize, AddrSpace, CanonConfig};
use firmup::core::error::FirmUpError;
use firmup::core::lift::lift_executable;
use firmup::core::persist::{CorpusIndex, IndexCheckpoint};
use firmup::core::search::ScanBudget;
use firmup::core::sim::ExecutableRep;
use firmup::firmware::corpus::{
    build_device, plan as corpus_plan, CorpusImage, DevicePlan, ScalePreset,
};
use firmup::firmware::durable::{
    acquire_lock, crash_point, fnv1a_64, write_atomic, LockOptions, CP_BETWEEN_SEGMENTS,
};
use firmup::firmware::image::unpack;
use firmup::firmware::index::image_digest;
use firmup::isa::Arch;
use firmup::obj::Elf;

/// Top-level command outcome: a printable failure, or a clean SIGINT
/// cut-short (which exits with [`firmup::shutdown::INTERRUPT_EXIT_CODE`]
/// so scripts can tell the two apart).
enum CliError {
    Msg(String),
    Interrupted,
}

impl From<String> for CliError {
    fn from(msg: String) -> CliError {
        CliError::Msg(msg)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result: Result<(), CliError> = match args.first().map(String::as_str) {
        Some("gen-corpus") => gen_corpus(&args[1..]),
        Some("info") => info(&args[1..]).map_err(CliError::Msg),
        Some("disasm") => disasm(&args[1..]).map_err(CliError::Msg),
        Some("index") => index(&args[1..]),
        Some("compact") => compact_cmd(&args[1..]).map_err(CliError::Msg),
        Some("fsck") => fsck_cmd(&args[1..]).map_err(CliError::Msg),
        Some("scan") => scan(&args[1..]),
        Some("profile") => profile(&args[1..]),
        Some("chaos") => chaos(&args[1..]).map_err(CliError::Msg),
        // `serve` owns its exit code (0 = clean/SIGTERM drain, 130 =
        // SIGINT) — it never goes through the index-oriented
        // "rerun with --resume" interrupt message below.
        Some("serve") => {
            return match serve_cmd(&args[1..]) {
                Ok(code) => ExitCode::from(code),
                Err(e) => {
                    eprintln!("firmup: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("--help" | "-h") | None => {
            eprint!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(CliError::Msg(format!("unknown command `{other}`\n{USAGE}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Interrupted) => {
            eprintln!(
                "firmup: interrupted — committed work is durable; rerun with --resume to continue"
            );
            ExitCode::from(firmup::shutdown::INTERRUPT_EXIT_CODE)
        }
        Err(CliError::Msg(e)) => {
            eprintln!("firmup: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "firmup — static CVE detection in stripped firmware (ASPLOS'18 reproduction)

USAGE:
    firmup gen-corpus --out DIR [--scale smoke|small|medium|paper]
                 [--devices N] [--seed HEX] [--threads N] [--resume]
                 [--metrics-out FILE.json]
        Generate a synthetic firmware corpus (images + ground-truth
        manifest). --scale picks a preset sized against the paper's
        corpus dimensions (smoke = the CI fixture, medium >= 500 images
        / >= 100k procedures, paper >= 2000 images); --devices overrides
        the preset's device count. All randomness is drawn once from the
        seed into a plan, then each device is built as a pure function
        over --threads workers (0 = all cores, the default) — the output
        bytes are identical for every N. The run is crash safe: every
        image and per-device manifest fragment lands via
        temp+fsync+rename and each finished device is committed to
        DIR/gen.fuj behind an advisory lock; ^C exits cleanly (code 130)
        after in-flight devices, and --resume verifies the journal by
        content digest (never timestamps) and rebuilds only the devices
        that never committed.
    firmup info PATH
        Describe a firmware image (parts, vendors) or an ELF (sections, procedures).
    firmup disasm ELF [--proc NAME]
        Disassemble an executable and print lifted IR + canonical strands.
    firmup index IMAGE... --out DIR [--add] [--threads N] [--resume]
                 [--metrics-out FILE.json]
        Unpack, lift, and canonicalize every executable in the images and
        persist the result — procedure metadata, canonical strand hashes,
        the trained global context, and an inverted strand->procedure
        postings table — as DIR/corpus.fui (a versioned, checksummed
        binary index). Per-part work fans out over --threads (0 = all
        cores, the default); a corrupt part is skipped, never fatal.
        The build is crash safe: each image is committed as a durable
        checkpoint segment (DIR/segments/ + DIR/journal.fuj) behind an
        advisory lock, every file lands via temp+fsync+rename, and ^C
        exits cleanly (code 130) after the current segment. --resume
        verifies the journal and re-lifts only what was never committed.
        With --add, IMAGE... are appended incrementally instead: each
        new image becomes its own CRC'd segment and the live-segment
        manifest (DIR/segments.fum) is atomically rewritten to publish
        it — committed state is never rewritten, duplicates are skipped,
        and segments a crashed run committed but never published are
        adopted on rerun. Readers (scan, serve after SIGHUP) union the
        base corpus.fui with every live segment; findings are
        byte-identical to a from-scratch index over the same images.
    firmup compact DIR [--metrics-out FILE.json]
        Fold every live segment published by `index --add` into
        DIR/corpus.fui: one atomic rewrite of the base (its seals record
        absorbs the folded image digests), then an atomic rewrite of the
        manifest to empty. Crash safe at every point — a kill between
        the two writes leaves only sealed entries, which readers skip
        and a rerun clears idempotently. Scan findings are byte-for-byte
        unchanged by compaction.
    firmup fsck DIR [--repair] [IMAGE...] [--threads N]
        Verify a saved index: sweep atomic-write debris, trim a torn
        journal tail, CRC-check every checkpoint segment (quarantining
        damage), verify the live-segment manifest (torn headers,
        missing/damaged/truncated segments, double-committed entries
        already sealed into corpus.fui), and decode every corpus.fui
        record. Prints a per-object verdict table and a final taxonomy
        line: exit 0 for `clean` and for `repaired` (clean after
        --repair, with the report showing what was rebuilt), exit 1 for
        unrepairable damage. With --repair (and the source IMAGE... for
        anything lost) rebuilds only the damaged pieces, truncates the
        manifest to its longest verifiable prefix, and rewrites
        corpus.fui from verified segments.
    firmup scan IMAGE... [--index DIR] [--cve CVE-ID] [--threads N]
                [--top-k K] [--format text|json] [--explain] [--trace]
                [--trace-out FILE.json] [--metrics-out FILE.json]
                [--game-ms N] [--target-ms N] [--scan-ms N] [--max-steps N]
        Hunt the built-in CVE queries inside firmware images. With
        --index DIR the targets come from a saved index instead of
        IMAGE... arguments, skipping unpack/lift/canonicalize entirely;
        --top-k K additionally prefilters each query to the K most
        strand-overlapping executables before playing the game (0 = play
        everything, the default). --threads N schedules fine-grained
        (query x candidate-shard) work units over a work-stealing
        executor (0 = all cores; default 1); findings are byte-identical
        for every N — results merge on (similarity, target id, address),
        never on arrival order. --format json emits the findings as one
        machine-readable JSON document on stdout (all diagnostics and
        the profile move to stderr); text (the default) prints one line
        per finding. Prints a stage-by-stage profile; --metrics-out
        additionally writes the full metrics snapshot (span timings,
        game.steps histogram, counters) as JSON, atomically. --trace (or
        FIRMUP_TRACE=1) streams structured JSON-lines events to stderr.
        The scan is fault tolerant: unreadable/corrupt images are
        reported and skipped, a damaged index is a structured error, a
        panicking target poisons only itself, the --*-ms / --max-steps
        budgets degrade over-budget targets gracefully instead of
        hanging, and ^C stops at the next target boundary (exit 130)
        after flushing findings and metrics. --explain attaches a
        provenance record to every finding (prefilter rank/score, strand
        overlap counts, game rounds, deadline margin) in both text and
        JSON output; explain records obey the same determinism invariant
        as the findings themselves. --trace-out FILE.json records every
        span with stable trace/span ids and writes a Chrome trace-event
        file (open it in Perfetto or about://tracing) with one lane per
        worker thread and instant markers for work steals.
    firmup profile IMAGE... [--index DIR] [--cve CVE-ID] [--threads N]
                [--top-k K] [--out FILE]
        Run a quiet scan with span tracing on and fold the span tree
        into collapsed flamegraph stacks (\"path;to;span self_ns\" lines,
        ready for flamegraph.pl / inferno / speedscope). Writes to
        results/profile.folded unless --out overrides it.
    firmup serve --index DIR [--listen ADDR] [--workers N] [--queue-cap N]
                [--threads N] [--max-request-ms N] [--drain-ms N]
                [--port-file FILE] [--metrics-out FILE.json]
                [--trace-out FILE.json]
        Long-lived scan daemon over a resident index. Loads DIR once and
        answers concurrent scan requests over TCP at ADDR (default
        127.0.0.1:7878; :0 picks a free port, written to --port-file).
        Speaks two wire dialects on the same port: minimal HTTP/1.1
        (POST /scan with a JSON body; GET /healthz, /readyz, /metrics)
        and bare newline-JSON (one request object in, one findings
        document out). A scan body is {\"cve\": ..., \"top_k\": N,
        \"explain\": bool, \"deadline_ms\": N} — every field optional —
        and the response is byte-identical to `firmup scan --index DIR
        --format json` stdout for the same snapshot, regardless of load
        or --threads. Admission is bounded at --queue-cap pending
        requests (default 64); beyond it requests are shed with a
        structured 429 + Retry-After instead of queueing unboundedly.
        deadline_ms (or the x-firmup-deadline-ms header), capped by
        --max-request-ms (default 60000; 0 = uncapped), is anchored at
        arrival — queue wait counts — and exhaustion returns partial
        results with over_budget markers, exactly like the CLI. A
        panicking request answers 500 and poisons only itself. SIGHUP
        hot-reloads the index (in-flight requests finish on the old
        snapshot; a failed reload keeps the old snapshot and surfaces
        the error in /readyz). SIGTERM/SIGINT drain gracefully: stop
        accepting, answer everything admitted (budget-cancelled after
        --drain-ms, default 5000), flush metrics/trace, exit 0 (130 for
        SIGINT).
    firmup chaos [--seed HEX] [--devices N] [--variants N] [--crash-matrix]
                 [--serve]
        Fault-injection matrix: corrupt a seeded corpus with every
        operator (bit flips, truncation, torn sector-aligned renames,
        stale lock stamps, CRC smash, bogus/overlapping part headers,
        mangled section tables, oversized lengths) and push each damaged
        blob through unpack -> lift -> search. Exits nonzero if any stage
        panics. --crash-matrix instead kills a child firmup at every
        deterministic crash point in `index`, `index --add`, and
        `compact` (including the torn-manifest fault) and asserts each
        one recovers to byte-identical scan findings — and, for
        compact, a byte-identical corpus.fui. --serve
        instead runs the serving drill: boot a child daemon, corrupt
        its on-disk index between SIGHUP reloads, and assert it
        degrades (old snapshot keeps serving identical findings, the
        reload error surfaces in /readyz, a restored index recovers,
        SIGTERM drains to exit 0) rather than crashing.
";

/// Flags that consume the following argument as their value. Everything
/// else starting with `--` is a boolean flag (e.g. `--trace`,
/// `--resume`, `--repair`, `--crash-matrix`).
const VALUE_FLAGS: &[&str] = &[
    "--out",
    "--devices",
    "--scale",
    "--seed",
    "--proc",
    "--cve",
    "--metrics-out",
    "--trace-out",
    "--game-ms",
    "--target-ms",
    "--scan-ms",
    "--max-steps",
    "--variants",
    "--index",
    "--threads",
    "--top-k",
    "--format",
    "--listen",
    "--workers",
    "--queue-cap",
    "--max-request-ms",
    "--drain-ms",
    "--port-file",
];

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn positional(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < args.len() {
        let a = &args[i];
        if a.starts_with("--") {
            // Only flags in the table consume a value; boolean flags
            // (`--trace`) must not eat the following positional.
            i += if VALUE_FLAGS.contains(&a.as_str()) {
                2
            } else {
                1
            };
            continue;
        }
        out.push(a);
        i += 1;
    }
    out
}

/// Tab-separated ground-truth manifest header (one row per image).
const MANIFEST_HEADER: &str = "file\tvendor\tdevice\tfw_version\tlatest\tarch\tvulnerable\n";

/// Deterministic on-disk name of the `global`-th corpus image.
fn image_file_name(global: usize, img: &CorpusImage) -> String {
    format!(
        "{:03}_{}_{}_{}.fwim",
        global, img.meta.vendor, img.meta.device, img.meta.version
    )
}

/// One MANIFEST.tsv row for `img`, stored as `file`.
fn manifest_line(file: &str, img: &CorpusImage) -> String {
    let vulns: Vec<String> = img
        .truth
        .iter()
        .flat_map(|t| {
            t.vulnerable
                .iter()
                .map(move |(n, _)| format!("{}:{}@{}", t.package, t.version, n))
        })
        .collect();
    format!(
        "{file}\t{}\t{}\t{}\t{}\t{}\t{}\n",
        img.meta.vendor,
        img.meta.device,
        img.meta.version,
        img.is_latest,
        img.arch,
        vulns.join(",")
    )
}

/// A committed device parsed back out of `gen.fuj`: summary totals for
/// the final report plus the digests that let `--resume` verify the
/// durable bytes instead of trusting them.
struct GenEntry {
    execs: u64,
    procs: u64,
    frag_digest: u64,
    files: Vec<(String, u64)>,
}

/// Parse one `gen1` journal line. A malformed or torn line yields
/// `None` and its device is simply rebuilt — the journal is a cache of
/// proofs, never the source of truth.
fn parse_gen_line(line: &str) -> Option<(usize, GenEntry)> {
    let mut parts = line.split('\t');
    if parts.next()? != "gen1" {
        return None;
    }
    let device = parts.next()?.parse().ok()?;
    let execs = parts.next()?.parse().ok()?;
    let procs = parts.next()?.parse().ok()?;
    let frag_digest = u64::from_str_radix(parts.next()?, 16).ok()?;
    let mut files = Vec::new();
    for f in parts.next()?.split(',') {
        let (name, digest) = f.rsplit_once(':')?;
        files.push((name.to_string(), u64::from_str_radix(digest, 16).ok()?));
    }
    if parts.next().is_some() {
        return None;
    }
    Some((
        device,
        GenEntry {
            execs,
            procs,
            frag_digest,
            files,
        },
    ))
}

/// Build one planned device and commit it durably: image files and the
/// device's manifest fragment land via temp+fsync+rename, then a
/// `gen1` line (with content digests) is appended to `gen.fuj` under
/// the journal mutex and fsync'd. Returns `(executables, procedures)`.
fn build_one_device(
    out: &Path,
    frag_dir: &Path,
    dp: &DevicePlan,
    strip: bool,
    first_image: usize,
    journal: &std::sync::Mutex<std::fs::File>,
) -> Result<(u64, u64), String> {
    use std::io::Write as _;
    let images = build_device(dp, strip);
    let mut frag = String::new();
    let mut files = Vec::with_capacity(images.len());
    let mut execs = 0u64;
    let mut procs = 0u64;
    for (k, img) in images.iter().enumerate() {
        let file = image_file_name(first_image + k, img);
        write_atomic(&out.join(&file), &img.blob).map_err(|e| format!("{file}: {e}"))?;
        firmup::telemetry::incr("gen.images_written");
        frag.push_str(&manifest_line(&file, img));
        files.push(format!("{file}:{:016x}", image_digest(&file, &img.blob)));
        execs += img.truth.len() as u64;
        procs += img
            .truth
            .iter()
            .map(|t| t.symbols.len() as u64)
            .sum::<u64>();
    }
    let frag_path = frag_dir.join(format!("{:05}.tsv", dp.device));
    write_atomic(&frag_path, frag.as_bytes())
        .map_err(|e| format!("{}: {e}", frag_path.display()))?;
    let line = format!(
        "gen1\t{}\t{execs}\t{procs}\t{:016x}\t{}\n",
        dp.device,
        fnv1a_64(&[frag.as_bytes()]),
        files.join(",")
    );
    let mut jf = journal.lock().expect("gen journal lock");
    jf.write_all(line.as_bytes())
        .and_then(|()| jf.sync_data())
        .map_err(|e| format!("gen.fuj: {e}"))?;
    Ok((execs, procs))
}

fn gen_corpus(args: &[String]) -> Result<(), CliError> {
    use std::io::Write as _;
    firmup::telemetry::enable();
    // Pre-register the generation counters so every run (including a
    // fully reused --resume) reports them in --metrics-out JSON.
    for name in [
        "gen.devices_built",
        "gen.devices_reused",
        "gen.images_written",
        "io.retries",
    ] {
        let _ = firmup::telemetry::counter(name);
    }
    let out = PathBuf::from(
        flag_value(args, "--out")
            .ok_or_else(|| CliError::Msg("gen-corpus requires --out DIR".into()))?,
    );
    let preset = match flag_value(args, "--scale") {
        None => ScalePreset::Smoke,
        Some(name) => ScalePreset::parse(name).ok_or_else(|| {
            CliError::Msg(format!(
                "--scale: expected smoke|small|medium|paper, got `{name}`"
            ))
        })?,
    };
    let mut config = preset.config();
    if let Some(d) = usize_flag(args, "--devices")? {
        config.devices = d;
    }
    if let Some(v) = flag_value(args, "--seed") {
        config.seed = u64::from_str_radix(v.trim_start_matches("0x"), 16)
            .map_err(|e| CliError::Msg(format!("--seed: {e}")))?;
    }
    let threads = usize_flag(args, "--threads")?.unwrap_or(0);
    let resume = has_flag(args, "--resume");
    let metrics_out = flag_value(args, "--metrics-out").map(PathBuf::from);
    firmup::shutdown::install();
    std::fs::create_dir_all(&out).map_err(|e| format!("{}: {e}", out.display()))?;
    // One writer at a time, like `firmup index`: a concurrent generator
    // on the same DIR gets a structured lock-held error.
    let lock = acquire_lock(&out, &LockOptions::from_env())
        .map_err(|e| CliError::Msg(FirmUpError::from(e).to_string()))?;

    // Draw every random decision up front; from here on building a
    // device is pure, so order / parallelism / resume can't change the
    // output bytes.
    let plan = corpus_plan(&config);
    let mut offsets = Vec::with_capacity(plan.devices.len());
    let mut total_images = 0usize;
    for d in &plan.devices {
        offsets.push(total_images);
        total_images += d.firmwares.len();
    }

    let journal_path = out.join("gen.fuj");
    let frag_dir = out.join("manifest.d");
    std::fs::create_dir_all(&frag_dir).map_err(|e| format!("{}: {e}", frag_dir.display()))?;
    // The header pins what the journal describes; resuming under a
    // different seed or scale would silently interleave two corpora.
    let header = format!(
        "genhdr\t{:016x}\t{}\t{}\n",
        config.seed,
        config.devices,
        preset.name()
    );

    // Devices already durable (resume only). Verification is zero
    // trust: a device counts only if its journal line, every image
    // file, and its manifest fragment all digest-match.
    let mut committed: std::collections::HashMap<usize, (u64, u64)> =
        std::collections::HashMap::new();
    let journal_text = if resume {
        std::fs::read_to_string(&journal_path).unwrap_or_default()
    } else {
        String::new()
    };
    if !journal_text.is_empty() {
        let mut lines = journal_text.lines();
        if lines.next().map(|h| format!("{h}\n")) != Some(header.clone()) {
            return Err(CliError::Msg(format!(
                "{}: journal was written for a different seed/scale; \
                 rerun without --resume or use a fresh --out",
                journal_path.display()
            )));
        }
        for line in lines {
            let Some((d, entry)) = parse_gen_line(line) else {
                continue;
            };
            if d >= plan.devices.len() {
                continue;
            }
            let verified = entry.files.len() == plan.devices[d].firmwares.len()
                && entry.files.iter().all(|(name, digest)| {
                    std::fs::read(out.join(name)).is_ok_and(|b| image_digest(name, &b) == *digest)
                })
                && std::fs::read(frag_dir.join(format!("{d:05}.tsv")))
                    .is_ok_and(|b| fnv1a_64(&[&b]) == entry.frag_digest);
            if verified {
                committed.insert(d, (entry.execs, entry.procs));
            }
        }
        firmup::telemetry::add("gen.devices_reused", committed.len() as u64);
    }
    let jf = if journal_text.starts_with(&header) {
        std::fs::OpenOptions::new()
            .append(true)
            .open(&journal_path)
            .map_err(|e| CliError::Msg(format!("{}: {e}", journal_path.display())))?
    } else {
        // Fresh run (or unreadable/foreign journal without --resume):
        // start the journal over. Stale image files from the same plan
        // are overwritten in place.
        let mut f = std::fs::File::create(&journal_path)
            .map_err(|e| CliError::Msg(format!("{}: {e}", journal_path.display())))?;
        f.write_all(header.as_bytes())
            .and_then(|()| f.sync_data())
            .map_err(|e| CliError::Msg(format!("{}: {e}", journal_path.display())))?;
        f
    };
    let journal = std::sync::Mutex::new(jf);

    let todo: Vec<usize> = (0..plan.devices.len())
        .filter(|d| !committed.contains_key(d))
        .collect();
    let errors = std::sync::Mutex::new(Vec::<String>::new());
    let built: Vec<Option<(u64, u64)>> = {
        let _span = firmup::telemetry::span!("gen.build");
        firmup::core::executor::run_units(todo.len(), threads, 1, |j| {
            if firmup::shutdown::interrupted() {
                return None;
            }
            let d = todo[j];
            let r = build_one_device(
                &out,
                &frag_dir,
                &plan.devices[d],
                config.strip,
                offsets[d],
                &journal,
            );
            lock.heartbeat();
            crash_point(CP_BETWEEN_SEGMENTS);
            match r {
                Ok(tot) => {
                    firmup::telemetry::incr("gen.devices_built");
                    Some(tot)
                }
                Err(e) => {
                    errors.lock().expect("gen error list").push(e);
                    None
                }
            }
        })
    };
    if let Some(e) = errors
        .into_inner()
        .expect("gen error list")
        .into_iter()
        .next()
    {
        return Err(CliError::Msg(e));
    }

    let write_metrics = |metrics_out: &Option<PathBuf>| -> Result<(), CliError> {
        if let Some(path) = metrics_out {
            let snap = firmup::telemetry::snapshot();
            write_atomic(path, snap.render_json().render().as_bytes())
                .map_err(|e| CliError::Msg(format!("{}: {e}", path.display())))?;
            println!("metrics written to {}", path.display());
        }
        Ok(())
    };

    let durable = committed.len() + built.iter().flatten().count();
    if firmup::shutdown::interrupted() {
        println!(
            "interrupted: {durable}/{} device(s) durable in {}; rerun with --resume to finish",
            plan.devices.len(),
            out.display()
        );
        write_metrics(&metrics_out)?;
        return Err(CliError::Interrupted);
    }

    // Assemble MANIFEST.tsv from the per-device fragments, in plan
    // order — byte-identical whatever order the devices finished in.
    let mut manifest = String::from(MANIFEST_HEADER);
    for d in 0..plan.devices.len() {
        let frag_path = frag_dir.join(format!("{d:05}.tsv"));
        let frag = std::fs::read_to_string(&frag_path)
            .map_err(|e| CliError::Msg(format!("{}: {e}", frag_path.display())))?;
        manifest.push_str(&frag);
    }
    write_atomic(&out.join("MANIFEST.tsv"), manifest.as_bytes())
        .map_err(|e| CliError::Msg(format!("MANIFEST.tsv: {e}")))?;

    let mut execs = 0u64;
    let mut procs = 0u64;
    for &(e, p) in committed.values().chain(built.iter().flatten()) {
        execs += e;
        procs += p;
    }
    println!(
        "wrote {} images ({} executables, {} procedures) to {}",
        total_images,
        execs,
        procs,
        out.display()
    );
    write_metrics(&metrics_out)?;
    drop(lock);
    Ok(())
}

fn read(path: &Path) -> Result<Vec<u8>, String> {
    std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))
}

fn info(args: &[String]) -> Result<(), String> {
    let paths = positional(args);
    if paths.is_empty() {
        return Err("info requires a PATH".into());
    }
    for p in paths {
        let bytes = read(Path::new(p))?;
        if bytes.starts_with(firmup::firmware::image::MAGIC) {
            let u = unpack(&bytes).map_err(|e| e.to_string())?;
            println!("{p}: firmware image — {}", u.meta);
            for issue in &u.issues {
                println!("  issue: {issue:?}");
            }
            for part in &u.parts {
                match Elf::parse(&part.data) {
                    Ok(elf) => {
                        let arch = Arch::from_elf_machine(elf.machine)
                            .map_or_else(|| format!("machine {}", elf.machine), |a| a.to_string());
                        let lifted = lift_executable(&elf);
                        let procs = lifted.as_ref().map_or(0, |l| l.procedure_count());
                        println!(
                            "  {} — {arch}, {} bytes, {} procedure(s), {}",
                            part.name,
                            part.data.len(),
                            procs,
                            if elf.is_stripped() {
                                "stripped"
                            } else {
                                "with symbols"
                            }
                        );
                    }
                    Err(e) => println!("  {} — unparseable: {e}", part.name),
                }
            }
        } else {
            let elf = Elf::parse(&bytes).map_err(|e| e.to_string())?;
            let arch = Arch::from_elf_machine(elf.machine)
                .map_or_else(|| format!("machine {}", elf.machine), |a| a.to_string());
            println!("{p}: ELF32 {arch}, entry {:#x}", elf.entry);
            for w in &elf.warnings {
                println!("  warning: {w}");
            }
            for s in &elf.sections {
                println!(
                    "  section {:<10} {:#010x}..{:#010x}",
                    s.name,
                    s.addr,
                    s.end()
                );
            }
            let lifted = lift_executable(&elf).map_err(|e| e.to_string())?;
            println!("  {} procedure(s):", lifted.procedure_count());
            for proc_ in &lifted.program.procedures {
                println!(
                    "    {:#010x} {:<30} {} block(s)",
                    proc_.addr,
                    proc_.display_name(),
                    proc_.blocks.len()
                );
            }
        }
    }
    Ok(())
}

fn disasm(args: &[String]) -> Result<(), String> {
    let paths = positional(args);
    let path = paths.first().ok_or("disasm requires an ELF path")?;
    let filter = flag_value(args, "--proc");
    let elf = Elf::parse(&read(Path::new(path))?).map_err(|e| e.to_string())?;
    let lifted = lift_executable(&elf).map_err(|e| e.to_string())?;
    let space = AddrSpace::from_elf(&elf);
    let config = CanonConfig::default();
    for proc_ in &lifted.program.procedures {
        if let Some(f) = filter {
            if proc_.display_name() != f {
                continue;
            }
        }
        println!("=== {} @ {:#x} ===", proc_.display_name(), proc_.addr);
        for block in &proc_.blocks {
            println!("  block {:#x}:", block.addr);
            for a in &block.asm {
                println!("    {a}");
            }
            let ssa = firmup::ir::ssa::ssa_block(block);
            for strand in firmup::core::strand::decompose(&ssa) {
                let c = canonicalize(&strand, &space, &config);
                for line in c.text.lines() {
                    println!("      ; strand: {line}");
                }
            }
        }
    }
    Ok(())
}

/// Where scan output goes: human text on stdout, one JSON document on
/// stdout (informational lines on stderr), or nothing (the `profile`
/// subcommand, which only wants the trace).
#[derive(Clone, Copy, PartialEq)]
enum OutputMode {
    Text,
    Json,
    Quiet,
}

fn scan(args: &[String]) -> Result<(), CliError> {
    // Scans always profile themselves: telemetry stays disabled (and
    // near-free) for every other command.
    firmup::telemetry::enable();
    // Pre-register the fault-tolerance counters so a clean scan still
    // reports them (at zero) in --metrics-out JSON.
    for name in [
        "scan.targets_poisoned",
        "scan.budget_exceeded",
        "scan.units_done",
        "scan.steal_count",
        "unpack.parts_quarantined",
        "index.cache_hit",
        "index.reps_decoded",
        "index.bytes_mapped",
        "index.arena_bytes",
        "index.interner_rebuilt",
        "prefilter.candidates",
        "rep.clones",
        "io.retries",
    ] {
        let _ = firmup::telemetry::counter(name);
    }
    if has_flag(args, "--trace") {
        firmup::telemetry::set_trace(true);
    }
    let mode = match flag_value(args, "--format") {
        None | Some("text") => OutputMode::Text,
        Some("json") => OutputMode::Json,
        Some(other) => {
            return Err(CliError::Msg(format!(
                "--format: expected `text` or `json`, got `{other}`"
            )))
        }
    };
    let trace_out = flag_value(args, "--trace-out").map(PathBuf::from);
    if trace_out.is_some() {
        firmup::telemetry::set_span_trace(true);
    }
    firmup::shutdown::install();
    let metrics_out = flag_value(args, "--metrics-out").map(PathBuf::from);
    let (findings, interrupted) = {
        let _span = firmup::telemetry::span!("scan");
        scan_images(args, mode)?
    };
    firmup::telemetry::event(
        "scan.done",
        &[(
            "findings",
            firmup::telemetry::json::Json::Num(findings as f64),
        )],
    );
    firmup::telemetry::flush_trace();
    // In JSON mode stdout carries exactly one document: the findings.
    // Everything informational — profile included — goes to stderr.
    let info = |msg: String| {
        if mode == OutputMode::Json {
            eprintln!("{msg}");
        } else {
            println!("{msg}");
        }
    };
    let snap = firmup::telemetry::snapshot();
    if mode == OutputMode::Json {
        eprint!("{}", snap.render_text());
    } else {
        print!("{}", snap.render_text());
    }
    if let Some(path) = metrics_out {
        write_atomic(&path, snap.render_json().render().as_bytes())
            .map_err(|e| CliError::Msg(format!("{}: {e}", path.display())))?;
        info(format!("metrics written to {}", path.display()));
    }
    if let Some(path) = trace_out {
        let trace = firmup::telemetry::take_trace();
        let doc = firmup::telemetry::render_chrome(&trace);
        write_atomic(&path, doc.render().as_bytes())
            .map_err(|e| CliError::Msg(format!("{}: {e}", path.display())))?;
        info(format!(
            "trace written to {} ({} span(s), {} instant(s){})",
            path.display(),
            trace.spans.len(),
            trace.instants.len(),
            if trace.dropped > 0 {
                format!(", {} dropped", trace.dropped)
            } else {
                String::new()
            }
        ));
    }
    if interrupted {
        return Err(CliError::Interrupted);
    }
    Ok(())
}

/// `firmup profile` — run a quiet scan with span tracing on and fold
/// the resulting span tree into collapsed flamegraph stacks.
fn profile(args: &[String]) -> Result<(), CliError> {
    firmup::telemetry::enable();
    firmup::telemetry::set_span_trace(true);
    firmup::shutdown::install();
    let out = flag_value(args, "--out")
        .map_or_else(|| PathBuf::from("results/profile.folded"), PathBuf::from);
    let (findings, interrupted) = {
        let _span = firmup::telemetry::span!("scan");
        scan_images(args, OutputMode::Quiet)?
    };
    let trace = firmup::telemetry::take_trace();
    let folded = firmup::telemetry::render_folded(&trace);
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| CliError::Msg(format!("{}: {e}", dir.display())))?;
        }
    }
    write_atomic(&out, folded.as_bytes())
        .map_err(|e| CliError::Msg(format!("{}: {e}", out.display())))?;
    eprintln!(
        "profile: folded {} span(s) into {} ({findings} finding(s))",
        trace.spans.len(),
        out.display()
    );
    if interrupted {
        return Err(CliError::Interrupted);
    }
    Ok(())
}

/// Parse the `--game-ms`/`--target-ms`/`--scan-ms`/`--max-steps` flags
/// into a [`ScanBudget`].
fn scan_budget(args: &[String]) -> Result<ScanBudget, String> {
    let ms = |flag: &str| -> Result<Option<std::time::Duration>, String> {
        flag_value(args, flag)
            .map(|v| {
                v.parse::<u64>()
                    .map(std::time::Duration::from_millis)
                    .map_err(|e| format!("{flag}: {e}"))
            })
            .transpose()
    };
    Ok(ScanBudget {
        per_game: ms("--game-ms")?,
        per_target: ms("--target-ms")?,
        total: ms("--scan-ms")?,
        max_steps_total: flag_value(args, "--max-steps")
            .map(|v| v.parse::<u64>().map_err(|e| format!("--max-steps: {e}")))
            .transpose()?,
        deadline: None,
    })
}

/// Parse a `usize`-valued flag.
fn usize_flag(args: &[String], name: &str) -> Result<Option<usize>, String> {
    flag_value(args, name)
        .map(|v| v.parse::<usize>().map_err(|e| format!("{name}: {e}")))
        .transpose()
}

/// Unpack every image and lift + canonicalize each contained executable,
/// pooling the per-part work of *all* images over `threads` scoped
/// worker threads (0 = one per core) via [`firmup::pipeline`]. Every
/// per-image and per-part step is fault-isolated: a corrupt image or a
/// panicking lift is reported and skipped, never aborting the run (the
/// corpus-scale robustness requirement of §5.1). Returns the reps in
/// deterministic image/part order plus the count of images that failed
/// to unpack entirely.
fn lift_images(paths: &[&String], threads: usize) -> Result<(Vec<ExecutableRep>, usize), String> {
    let mut parts: Vec<firmup::pipeline::PartJob> = Vec::new();
    let mut skipped_images = 0usize;
    for p in paths {
        let unpacked = std::fs::read(Path::new(p.as_str()))
            .map_err(FirmUpError::from)
            .and_then(|bytes| firmup::pipeline::unpack_parts(p, &bytes));
        match unpacked {
            Ok(mut jobs) => parts.append(&mut jobs),
            Err(e) => {
                eprintln!("firmup: skipping image: {e}");
                firmup::telemetry::incr(&format!("scan.errors.{}", e.kind()));
                skipped_images += 1;
            }
        }
    }
    if skipped_images == paths.len() {
        return Err("no scannable image: every input failed to unpack".into());
    }
    let mut reps = Vec::with_capacity(parts.len());
    for r in firmup::pipeline::lift_parts(&parts, threads) {
        match r {
            Ok(rep) => reps.push(rep),
            Err(e) => eprintln!("firmup: skipping part: {e}"),
        }
    }
    Ok((reps, skipped_images))
}

fn index(args: &[String]) -> Result<(), CliError> {
    if has_flag(args, "--add") {
        return index_add(args);
    }
    firmup::telemetry::enable();
    // Pre-register the durability counters so every run (including one
    // that reuses everything) reports them in --metrics-out JSON.
    for name in [
        "index.segments_committed",
        "index.segments_reused",
        "index.resumed",
        "index.reps_decoded",
        "index.bytes_mapped",
        "io.retries",
    ] {
        let _ = firmup::telemetry::counter(name);
    }
    let paths = positional(args);
    if paths.is_empty() {
        return Err(CliError::Msg("index requires at least one IMAGE".into()));
    }
    let out = PathBuf::from(
        flag_value(args, "--out")
            .ok_or_else(|| CliError::Msg("index requires --out DIR".into()))?,
    );
    let threads = usize_flag(args, "--threads")?.unwrap_or(0);
    let resume = has_flag(args, "--resume");
    let metrics_out = flag_value(args, "--metrics-out").map(PathBuf::from);
    firmup::shutdown::install();
    std::fs::create_dir_all(&out).map_err(|e| format!("{}: {e}", out.display()))?;
    // One writer at a time: a second `firmup index` on the same DIR gets
    // a structured lock-held error instead of a torn index.
    let lock = acquire_lock(&out, &LockOptions::from_env())
        .map_err(|e| CliError::Msg(FirmUpError::from(e).to_string()))?;
    if resume {
        firmup::telemetry::incr("index.resumed");
    }
    let (mut ckpt, stats) =
        IndexCheckpoint::open(&out, resume).map_err(|e| CliError::Msg(e.to_string()))?;
    if stats.torn_tail {
        eprintln!("firmup: journal ended in a torn append (trimmed; that segment will be rebuilt)");
    }
    if stats.damaged > 0 {
        eprintln!(
            "firmup: {} damaged checkpoint segment(s) dropped; they will be re-lifted",
            stats.damaged
        );
    }
    // Test hook: slow the per-segment loop down so concurrency tests can
    // reliably observe a writer mid-build.
    let segment_delay = std::env::var("FIRMUP_TEST_SEGMENT_DELAY_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(std::time::Duration::from_millis);

    let mut reps: Vec<ExecutableRep> = Vec::new();
    let mut sealed: Vec<u64> = Vec::new();
    let mut skipped = 0usize;
    let mut segments_done = 0usize;
    let mut was_interrupted = false;
    for p in &paths {
        let bytes = match std::fs::read(Path::new(p.as_str())) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("firmup: skipping image {p}: {e}");
                firmup::telemetry::incr("scan.errors.io");
                skipped += 1;
                continue;
            }
        };
        let digest = image_digest(p, &bytes);
        if ckpt.committed(digest) {
            match ckpt.load_segment(digest) {
                Ok(seg) => {
                    firmup::telemetry::incr("index.segments_reused");
                    reps.extend(seg);
                    sealed.push(digest);
                    segments_done += 1;
                }
                Err(e) => return Err(CliError::Msg(e.to_string())),
            }
        } else {
            match firmup::pipeline::lift_image(p, &bytes, threads) {
                Ok(seg) => {
                    ckpt.commit(digest, &seg)
                        .map_err(|e| CliError::Msg(e.to_string()))?;
                    reps.extend(seg);
                    sealed.push(digest);
                    segments_done += 1;
                }
                Err(e) => {
                    eprintln!("firmup: skipping image: {e}");
                    firmup::telemetry::incr(&format!("scan.errors.{}", e.kind()));
                    skipped += 1;
                }
            }
        }
        lock.heartbeat();
        crash_point(CP_BETWEEN_SEGMENTS);
        if let Some(d) = segment_delay {
            std::thread::sleep(d);
        }
        if firmup::shutdown::interrupted() {
            was_interrupted = true;
            break;
        }
    }

    let write_metrics = |metrics_out: &Option<PathBuf>| -> Result<(), CliError> {
        if let Some(path) = metrics_out {
            let snap = firmup::telemetry::snapshot();
            write_atomic(path, snap.render_json().render().as_bytes())
                .map_err(|e| CliError::Msg(format!("{}: {e}", path.display())))?;
            println!("metrics written to {}", path.display());
        }
        Ok(())
    };

    if was_interrupted {
        println!(
            "interrupted: {segments_done} image segment(s) durable in {}; rerun with --resume to finish",
            out.display()
        );
        print!("{}", firmup::telemetry::snapshot().render_text());
        write_metrics(&metrics_out)?;
        return Err(CliError::Interrupted);
    }
    if skipped == paths.len() {
        return Err(CliError::Msg(
            "no indexable image: every input failed to unpack".into(),
        ));
    }
    let mut corpus = CorpusIndex::build(reps);
    // Seal the ingested image digests into the base so `index --add`
    // can dedup against it and `compact` can prove what it folded.
    corpus.set_seals(sealed);
    corpus
        .save(&out)
        .map_err(|e| CliError::Msg(e.to_string()))?;
    println!(
        "indexed {} executable(s) ({} procedure(s), {} distinct strand(s)) from {} image(s){} -> {}",
        corpus.len(),
        (0..corpus.len())
            .map(|i| corpus.get(i).procedures.len())
            .sum::<usize>(),
        corpus.postings.strand_count(),
        paths.len() - skipped,
        if skipped > 0 {
            format!(" ({skipped} unreadable image(s) skipped)")
        } else {
            String::new()
        },
        firmup::firmware::index::index_path(&out).display()
    );
    print!("{}", firmup::telemetry::snapshot().render_text());
    write_metrics(&metrics_out)?;
    drop(lock);
    Ok(())
}

fn index_add(args: &[String]) -> Result<(), CliError> {
    firmup::telemetry::enable();
    for name in [
        "index.segments_committed",
        "index.segments_reused",
        "index.manifest_published",
        "io.retries",
    ] {
        let _ = firmup::telemetry::counter(name);
    }
    let paths = positional(args);
    if paths.is_empty() {
        return Err(CliError::Msg(
            "index --add requires at least one IMAGE".into(),
        ));
    }
    let out = PathBuf::from(
        flag_value(args, "--out")
            .ok_or_else(|| CliError::Msg("index requires --out DIR".into()))?,
    );
    let threads = usize_flag(args, "--threads")?.unwrap_or(0);
    let metrics_out = flag_value(args, "--metrics-out").map(PathBuf::from);
    firmup::shutdown::install();
    let images: Vec<PathBuf> = paths.iter().map(|p| PathBuf::from(p.as_str())).collect();
    let report = firmup::ingest::add_images(&out, &images, threads)
        .map_err(|e| CliError::Msg(e.to_string()))?;
    let write_metrics = || -> Result<(), CliError> {
        if let Some(path) = &metrics_out {
            let snap = firmup::telemetry::snapshot();
            write_atomic(path, snap.render_json().render().as_bytes())
                .map_err(|e| CliError::Msg(format!("{}: {e}", path.display())))?;
            println!("metrics written to {}", path.display());
        }
        Ok(())
    };
    if report.interrupted {
        println!(
            "interrupted: {} new segment(s) durable in {}; rerun `firmup index --add` to publish them",
            report.added + report.adopted,
            out.display()
        );
        print!("{}", firmup::telemetry::snapshot().render_text());
        write_metrics()?;
        return Err(CliError::Interrupted);
    }
    if report.skipped == paths.len() {
        return Err(CliError::Msg(
            "no indexable image: every input failed to unpack".into(),
        ));
    }
    let mut notes = String::new();
    if report.adopted > 0 {
        notes.push_str(&format!(
            " ({} segment(s) adopted from an interrupted run)",
            report.adopted
        ));
    }
    if report.already_live > 0 {
        notes.push_str(&format!(
            " ({} image(s) already indexed, skipped)",
            report.already_live
        ));
    }
    if report.skipped > 0 {
        notes.push_str(&format!(
            " ({} unreadable image(s) skipped)",
            report.skipped
        ));
    }
    println!(
        "added {} image(s) ({} executable(s)) -> {} live segment(s) at epoch {} in {}{notes}",
        report.added + report.adopted,
        report.executables,
        report.live_segments,
        report.epoch,
        out.display(),
    );
    print!("{}", firmup::telemetry::snapshot().render_text());
    write_metrics()?;
    Ok(())
}

fn compact_cmd(args: &[String]) -> Result<(), String> {
    firmup::telemetry::enable();
    let _ = firmup::telemetry::counter("index.segments_folded");
    let pos = positional(args);
    let [dir] = pos.as_slice() else {
        return Err("compact requires exactly one DIR".into());
    };
    let metrics_out = flag_value(args, "--metrics-out").map(PathBuf::from);
    let report = firmup::ingest::compact(Path::new(dir.as_str())).map_err(|e| e.to_string())?;
    if report.epoch == 0 {
        println!(
            "nothing to compact: no live-segment manifest in {dir} ({} executable(s) in the base)",
            report.executables
        );
    } else {
        println!(
            "compacted {} live segment(s) into {} — {} executable(s), manifest now empty at epoch {}",
            report.folded,
            firmup::firmware::index::index_path(Path::new(dir.as_str())).display(),
            report.executables,
            report.epoch
        );
    }
    if let Some(path) = &metrics_out {
        let snap = firmup::telemetry::snapshot();
        write_atomic(path, snap.render_json().render().as_bytes())
            .map_err(|e| format!("{}: {e}", path.display()))?;
        println!("metrics written to {}", path.display());
    }
    print!("{}", firmup::telemetry::snapshot().render_text());
    Ok(())
}

fn fsck_cmd(args: &[String]) -> Result<(), String> {
    firmup::telemetry::enable();
    let _ = firmup::telemetry::counter("fsck.records_repaired");
    let pos = positional(args);
    let (dir, images) = pos.split_first().ok_or("fsck requires a DIR")?;
    let opts = firmup::fsck::FsckOptions {
        repair: has_flag(args, "--repair"),
        images: images.iter().map(|p| PathBuf::from(p.as_str())).collect(),
        threads: usize_flag(args, "--threads")?.unwrap_or(0),
    };
    let report = firmup::fsck::run(Path::new(dir.as_str()), &opts).map_err(|e| e.to_string())?;
    print!("{report}");
    // Exit taxonomy: clean and repaired-to-clean both exit 0 (the
    // report distinguishes them); unrepairable damage exits 1.
    match report.outcome() {
        firmup::fsck::FsckOutcome::Clean | firmup::fsck::FsckOutcome::Repaired => Ok(()),
        firmup::fsck::FsckOutcome::Unrepairable if opts.repair => Err(
            "index not clean after repair (pass the source IMAGE... to rebuild lost segments)"
                .into(),
        ),
        firmup::fsck::FsckOutcome::Unrepairable => {
            Err("index not clean (rerun with --repair and the source images to rebuild)".into())
        }
    }
}

fn scan_images(args: &[String], mode: OutputMode) -> Result<(usize, bool), String> {
    let paths = positional(args);
    let index_dir = flag_value(args, "--index").map(PathBuf::from);
    if paths.is_empty() && index_dir.is_none() {
        return Err("scan requires at least one IMAGE (or --index DIR)".into());
    }
    // Anchor the whole-scan allowance *before* acquiring the corpus:
    // `--scan-ms` is the caller's deadline for the command, so index
    // load (or cold lift) counts against it — a corrupt or slow index
    // can no longer blow past the deadline before the clock even starts.
    let budget = scan_budget(args)?.anchored(std::time::Instant::now());
    let opts = firmup::pipeline::ScanOptions {
        cve: flag_value(args, "--cve").map(str::to_string),
        top_k: usize_flag(args, "--top-k")?.unwrap_or(0),
        threads: usize_flag(args, "--threads")?.unwrap_or(1),
        explain: has_flag(args, "--explain"),
    };
    let threads = opts.threads;
    // Informational lines: stdout normally, stderr when stdout is the
    // JSON findings document or suppressed (`firmup profile`).
    let info = |msg: String| match mode {
        OutputMode::Text => println!("{msg}"),
        OutputMode::Json | OutputMode::Quiet => eprintln!("{msg}"),
    };

    // Acquire the corpus: warm path loads the persisted index and skips
    // unpack/lift/canonicalize entirely; cold path lifts the images and
    // builds the same structures in memory. Either way the scan below is
    // identical.
    let corpus = if let Some(dir) = &index_dir {
        // Test hook: make the index load observably slow, so tests can
        // pin that load time is charged against --scan-ms.
        if let Some(ms) = std::env::var("FIRMUP_TEST_INDEX_LOAD_DELAY_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        let corpus = CorpusIndex::open(dir).map_err(|e| e.to_string())?;
        info(format!(
            "loaded {} executable(s) from index {}",
            corpus.len(),
            dir.display()
        ));
        corpus
    } else {
        let (reps, skipped_images) = lift_images(&paths, threads)?;
        info(format!(
            "indexed {} executable(s) from {} image(s){}",
            reps.len(),
            paths.len() - skipped_images,
            if skipped_images > 0 {
                format!(" ({skipped_images} unreadable image(s) skipped)")
            } else {
                String::new()
            }
        ));
        CorpusIndex::build(reps)
    };

    // The scan core is shared with `firmup serve`: same query build,
    // unit decomposition, work-stealing pass, and deterministic merge —
    // which is what keeps a served response byte-identical to this
    // CLI's JSON output for the same corpus snapshot.
    let cache = firmup::pipeline::QueryCache::default();
    let output = firmup::pipeline::run_scan(
        &corpus,
        &opts,
        &budget,
        &cache,
        &firmup::shutdown::interrupted,
    )
    .map_err(|e| {
        // A lazy decode failure names the index file, like load errors.
        let e = match &index_dir {
            Some(dir) => e.in_ctx(firmup::core::error::FaultCtx::image(
                firmup::firmware::index::index_path(dir)
                    .display()
                    .to_string(),
            )),
            None => e,
        };
        e.to_string()
    })?;
    for d in &output.diagnostics {
        eprintln!("{d}");
    }
    for f in &output.findings {
        match mode {
            OutputMode::Text => {
                println!(
                    "{}: {} ({} {}) suspected at {:#x} in {} (Sim={}, {} game step(s))",
                    f.cve.cve,
                    f.cve.procedure,
                    f.cve.package,
                    f.version,
                    f.addr,
                    f.target,
                    f.sim,
                    f.steps
                );
                if let Some(ex) = &f.explain {
                    print!("{}", ex.render_text());
                }
            }
            OutputMode::Json | OutputMode::Quiet => {}
        }
    }
    let interrupted = firmup::shutdown::interrupted();
    if output.saw_scan_deadline {
        info("scan budget (--scan-ms) exhausted; remaining targets skipped".to_string());
    }
    if output.saw_step_budget {
        info("step budget (--max-steps) exhausted; remaining targets skipped".to_string());
    }
    if interrupted {
        info("interrupted; findings so far are complete for the targets scanned".to_string());
    }
    if mode == OutputMode::Json {
        println!("{}", output.render_json(interrupted).render());
    }
    let findings = output.findings.len();
    info(format!("{findings} suspected occurrence(s)"));
    if output.poisoned > 0 || output.over_budget > 0 {
        info(format!(
            "degraded: {} poisoned target(s), {} over-budget target(s)",
            output.poisoned, output.over_budget
        ));
    }
    Ok((findings, interrupted))
}

fn chaos(args: &[String]) -> Result<(), String> {
    let seed = flag_value(args, "--seed")
        .map(|v| {
            u64::from_str_radix(v.trim_start_matches("0x"), 16).map_err(|e| format!("--seed: {e}"))
        })
        .transpose()?
        .unwrap_or(0xc4a0_5000);
    let devices = flag_value(args, "--devices")
        .map(|v| v.parse::<usize>().map_err(|e| format!("--devices: {e}")))
        .transpose()?
        .unwrap_or(2);
    if has_flag(args, "--serve") {
        let firmup_bin = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
        let report = firmup::chaos::run_serve_chaos(&firmup::chaos::ServeChaosConfig {
            seed,
            devices,
            firmup_bin,
        })?;
        print!("{report}");
        return if report.passed() {
            Ok(())
        } else {
            Err("serve-stage degradation violation (see drill above)".into())
        };
    }
    if has_flag(args, "--crash-matrix") {
        let firmup_bin = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
        let report = firmup::chaos::run_crash_matrix(&firmup::chaos::CrashMatrixConfig {
            seed,
            devices,
            firmup_bin,
        })?;
        print!("{report}");
        return if report.passed() {
            Ok(())
        } else {
            Err("crash-consistency violation (see matrix above)".into())
        };
    }
    let variants = flag_value(args, "--variants")
        .map(|v| v.parse::<u64>().map_err(|e| format!("--variants: {e}")))
        .transpose()?
        .unwrap_or(4);
    let report = firmup::chaos::run(&firmup::chaos::ChaosConfig {
        seed,
        devices,
        variants,
    });
    print!("{report}");
    if report.passed() {
        Ok(())
    } else {
        Err(format!(
            "{} panic(s) contained by stage guards",
            report.panics()
        ))
    }
}

/// `firmup serve`: parse flags into a [`firmup::serve::ServeConfig`]
/// and run the daemon; the returned code becomes the process exit code.
fn serve_cmd(args: &[String]) -> Result<u8, String> {
    let index_dir = PathBuf::from(
        flag_value(args, "--index").ok_or_else(|| "serve requires --index DIR".to_string())?,
    );
    let max_request_ms = flag_value(args, "--max-request-ms")
        .map(|v| {
            v.parse::<u64>()
                .map_err(|e| format!("--max-request-ms: {e}"))
        })
        .transpose()?
        .unwrap_or(60_000);
    let drain_ms = flag_value(args, "--drain-ms")
        .map(|v| v.parse::<u64>().map_err(|e| format!("--drain-ms: {e}")))
        .transpose()?
        .unwrap_or(5_000);
    let cfg = firmup::serve::ServeConfig {
        index_dir,
        listen: flag_value(args, "--listen")
            .unwrap_or("127.0.0.1:7878")
            .to_string(),
        workers: usize_flag(args, "--workers")?.unwrap_or(4),
        queue_cap: usize_flag(args, "--queue-cap")?.unwrap_or(64),
        threads: usize_flag(args, "--threads")?.unwrap_or(1),
        max_request_ms: (max_request_ms > 0).then_some(max_request_ms),
        drain_ms,
        port_file: flag_value(args, "--port-file").map(PathBuf::from),
        metrics_out: flag_value(args, "--metrics-out").map(PathBuf::from),
        trace_out: flag_value(args, "--trace-out").map(PathBuf::from),
    };
    firmup::serve::run(&cfg)
}
