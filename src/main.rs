//! `firmup` — command-line front end for the FirmUp pipeline.
//!
//! ```text
//! firmup gen-corpus --out DIR [--devices N] [--seed HEX]
//! firmup info PATH                      # firmware image or ELF
//! firmup disasm ELF [--proc NAME]       # disassembly + canonical strands
//! firmup index IMAGE... --out DIR       # persist a strand-hash corpus index
//! firmup index ... --resume             # continue a crashed/interrupted build
//! firmup fsck DIR [--repair] [IMAGE...] # verify (and rebuild) a saved index
//! firmup scan IMAGE... [--cve ID]       # hunt CVE queries in images
//! firmup scan --index DIR [--cve ID]    # warm scan from a saved index
//! firmup profile IMAGE... [--out FILE]  # scan + collapsed-stack profile
//! ```
//!
//! See the README's subcommand reference table for the full flag list.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use firmup::core::canon::{canonicalize, AddrSpace, CanonConfig};
use firmup::core::error::FirmUpError;
use firmup::core::lift::lift_executable;
use firmup::core::persist::{CorpusIndex, IndexCheckpoint};
use firmup::core::search::{
    merge_outcomes, prefilter_candidates, scan_units, BudgetReason, Explain, ScanBudget, ScanUnit,
    SearchConfig, TargetOutcome,
};
use firmup::core::sim::{index_elf, ExecutableRep};
use firmup::firmware::corpus::{generate, try_build_query, CorpusConfig};
use firmup::firmware::durable::{
    acquire_lock, crash_point, write_atomic, LockOptions, CP_BETWEEN_SEGMENTS,
};
use firmup::firmware::image::unpack;
use firmup::firmware::index::image_digest;
use firmup::firmware::packages::all_cves;
use firmup::isa::Arch;
use firmup::obj::Elf;

/// Top-level command outcome: a printable failure, or a clean SIGINT
/// cut-short (which exits with [`firmup::shutdown::INTERRUPT_EXIT_CODE`]
/// so scripts can tell the two apart).
enum CliError {
    Msg(String),
    Interrupted,
}

impl From<String> for CliError {
    fn from(msg: String) -> CliError {
        CliError::Msg(msg)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result: Result<(), CliError> = match args.first().map(String::as_str) {
        Some("gen-corpus") => gen_corpus(&args[1..]).map_err(CliError::Msg),
        Some("info") => info(&args[1..]).map_err(CliError::Msg),
        Some("disasm") => disasm(&args[1..]).map_err(CliError::Msg),
        Some("index") => index(&args[1..]),
        Some("fsck") => fsck_cmd(&args[1..]).map_err(CliError::Msg),
        Some("scan") => scan(&args[1..]),
        Some("profile") => profile(&args[1..]),
        Some("chaos") => chaos(&args[1..]).map_err(CliError::Msg),
        Some("--help" | "-h") | None => {
            eprint!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(CliError::Msg(format!("unknown command `{other}`\n{USAGE}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Interrupted) => {
            eprintln!(
                "firmup: interrupted — committed work is durable; rerun with --resume to continue"
            );
            ExitCode::from(firmup::shutdown::INTERRUPT_EXIT_CODE)
        }
        Err(CliError::Msg(e)) => {
            eprintln!("firmup: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "firmup — static CVE detection in stripped firmware (ASPLOS'18 reproduction)

USAGE:
    firmup gen-corpus --out DIR [--devices N] [--seed HEX]
        Generate a synthetic firmware corpus (images + ground-truth manifest).
    firmup info PATH
        Describe a firmware image (parts, vendors) or an ELF (sections, procedures).
    firmup disasm ELF [--proc NAME]
        Disassemble an executable and print lifted IR + canonical strands.
    firmup index IMAGE... --out DIR [--threads N] [--resume]
                 [--metrics-out FILE.json]
        Unpack, lift, and canonicalize every executable in the images and
        persist the result — procedure metadata, canonical strand hashes,
        the trained global context, and an inverted strand->procedure
        postings table — as DIR/corpus.fui (a versioned, checksummed
        binary index). Per-part work fans out over --threads (0 = all
        cores, the default); a corrupt part is skipped, never fatal.
        The build is crash safe: each image is committed as a durable
        checkpoint segment (DIR/segments/ + DIR/journal.fuj) behind an
        advisory lock, every file lands via temp+fsync+rename, and ^C
        exits cleanly (code 130) after the current segment. --resume
        verifies the journal and re-lifts only what was never committed.
    firmup fsck DIR [--repair] [IMAGE...] [--threads N]
        Verify a saved index: sweep atomic-write debris, trim a torn
        journal tail, CRC-check every checkpoint segment (quarantining
        damage), and decode every corpus.fui record. Prints a per-object
        verdict table; exits nonzero unless clean. With --repair (and
        the source IMAGE... for anything lost) rebuilds only the damaged
        pieces and rewrites corpus.fui from verified segments.
    firmup scan IMAGE... [--index DIR] [--cve CVE-ID] [--threads N]
                [--top-k K] [--format text|json] [--explain] [--trace]
                [--trace-out FILE.json] [--metrics-out FILE.json]
                [--game-ms N] [--target-ms N] [--scan-ms N] [--max-steps N]
        Hunt the built-in CVE queries inside firmware images. With
        --index DIR the targets come from a saved index instead of
        IMAGE... arguments, skipping unpack/lift/canonicalize entirely;
        --top-k K additionally prefilters each query to the K most
        strand-overlapping executables before playing the game (0 = play
        everything, the default). --threads N schedules fine-grained
        (query x candidate-shard) work units over a work-stealing
        executor (0 = all cores; default 1); findings are byte-identical
        for every N — results merge on (similarity, target id, address),
        never on arrival order. --format json emits the findings as one
        machine-readable JSON document on stdout (all diagnostics and
        the profile move to stderr); text (the default) prints one line
        per finding. Prints a stage-by-stage profile; --metrics-out
        additionally writes the full metrics snapshot (span timings,
        game.steps histogram, counters) as JSON, atomically. --trace (or
        FIRMUP_TRACE=1) streams structured JSON-lines events to stderr.
        The scan is fault tolerant: unreadable/corrupt images are
        reported and skipped, a damaged index is a structured error, a
        panicking target poisons only itself, the --*-ms / --max-steps
        budgets degrade over-budget targets gracefully instead of
        hanging, and ^C stops at the next target boundary (exit 130)
        after flushing findings and metrics. --explain attaches a
        provenance record to every finding (prefilter rank/score, strand
        overlap counts, game rounds, deadline margin) in both text and
        JSON output; explain records obey the same determinism invariant
        as the findings themselves. --trace-out FILE.json records every
        span with stable trace/span ids and writes a Chrome trace-event
        file (open it in Perfetto or about://tracing) with one lane per
        worker thread and instant markers for work steals.
    firmup profile IMAGE... [--index DIR] [--cve CVE-ID] [--threads N]
                [--top-k K] [--out FILE]
        Run a quiet scan with span tracing on and fold the span tree
        into collapsed flamegraph stacks (\"path;to;span self_ns\" lines,
        ready for flamegraph.pl / inferno / speedscope). Writes to
        results/profile.folded unless --out overrides it.
    firmup chaos [--seed HEX] [--devices N] [--variants N] [--crash-matrix]
        Fault-injection matrix: corrupt a seeded corpus with every
        operator (bit flips, truncation, torn sector-aligned renames,
        stale lock stamps, CRC smash, bogus/overlapping part headers,
        mangled section tables, oversized lengths) and push each damaged
        blob through unpack -> lift -> search. Exits nonzero if any stage
        panics. --crash-matrix instead kills a child `firmup index` at
        every deterministic crash point and asserts each one resumes to
        a byte-identical index with identical scan findings.
";

/// Flags that consume the following argument as their value. Everything
/// else starting with `--` is a boolean flag (e.g. `--trace`,
/// `--resume`, `--repair`, `--crash-matrix`).
const VALUE_FLAGS: &[&str] = &[
    "--out",
    "--devices",
    "--seed",
    "--proc",
    "--cve",
    "--metrics-out",
    "--trace-out",
    "--game-ms",
    "--target-ms",
    "--scan-ms",
    "--max-steps",
    "--variants",
    "--index",
    "--threads",
    "--top-k",
    "--format",
];

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn positional(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < args.len() {
        let a = &args[i];
        if a.starts_with("--") {
            // Only flags in the table consume a value; boolean flags
            // (`--trace`) must not eat the following positional.
            i += if VALUE_FLAGS.contains(&a.as_str()) {
                2
            } else {
                1
            };
            continue;
        }
        out.push(a);
        i += 1;
    }
    out
}

fn gen_corpus(args: &[String]) -> Result<(), String> {
    let out = PathBuf::from(flag_value(args, "--out").ok_or("gen-corpus requires --out DIR")?);
    let devices = flag_value(args, "--devices")
        .map(|v| v.parse::<usize>().map_err(|e| format!("--devices: {e}")))
        .transpose()?
        .unwrap_or(18);
    let seed = flag_value(args, "--seed")
        .map(|v| {
            u64::from_str_radix(v.trim_start_matches("0x"), 16).map_err(|e| format!("--seed: {e}"))
        })
        .transpose()?
        .unwrap_or(0xf12a_0b5e);
    std::fs::create_dir_all(&out).map_err(|e| format!("{}: {e}", out.display()))?;
    let corpus = generate(&CorpusConfig {
        devices,
        seed,
        ..CorpusConfig::default()
    });
    let mut manifest = String::from("file\tvendor\tdevice\tfw_version\tlatest\tarch\tvulnerable\n");
    for (i, img) in corpus.images.iter().enumerate() {
        let file = format!(
            "{:03}_{}_{}_{}.fwim",
            i, img.meta.vendor, img.meta.device, img.meta.version
        );
        std::fs::write(out.join(&file), &img.blob).map_err(|e| format!("{file}: {e}"))?;
        let vulns: Vec<String> = img
            .truth
            .iter()
            .flat_map(|t| {
                t.vulnerable
                    .iter()
                    .map(move |(n, _)| format!("{}:{}@{}", t.package, t.version, n))
            })
            .collect();
        manifest.push_str(&format!(
            "{file}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            img.meta.vendor,
            img.meta.device,
            img.meta.version,
            img.is_latest,
            img.arch,
            vulns.join(",")
        ));
    }
    std::fs::write(out.join("MANIFEST.tsv"), manifest).map_err(|e| e.to_string())?;
    println!(
        "wrote {} images ({} executables, {} procedures) to {}",
        corpus.images.len(),
        corpus.executable_count(),
        corpus.procedure_count(),
        out.display()
    );
    Ok(())
}

fn read(path: &Path) -> Result<Vec<u8>, String> {
    std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))
}

fn info(args: &[String]) -> Result<(), String> {
    let paths = positional(args);
    if paths.is_empty() {
        return Err("info requires a PATH".into());
    }
    for p in paths {
        let bytes = read(Path::new(p))?;
        if bytes.starts_with(firmup::firmware::image::MAGIC) {
            let u = unpack(&bytes).map_err(|e| e.to_string())?;
            println!("{p}: firmware image — {}", u.meta);
            for issue in &u.issues {
                println!("  issue: {issue:?}");
            }
            for part in &u.parts {
                match Elf::parse(&part.data) {
                    Ok(elf) => {
                        let arch = Arch::from_elf_machine(elf.machine)
                            .map_or_else(|| format!("machine {}", elf.machine), |a| a.to_string());
                        let lifted = lift_executable(&elf);
                        let procs = lifted.as_ref().map_or(0, |l| l.procedure_count());
                        println!(
                            "  {} — {arch}, {} bytes, {} procedure(s), {}",
                            part.name,
                            part.data.len(),
                            procs,
                            if elf.is_stripped() {
                                "stripped"
                            } else {
                                "with symbols"
                            }
                        );
                    }
                    Err(e) => println!("  {} — unparseable: {e}", part.name),
                }
            }
        } else {
            let elf = Elf::parse(&bytes).map_err(|e| e.to_string())?;
            let arch = Arch::from_elf_machine(elf.machine)
                .map_or_else(|| format!("machine {}", elf.machine), |a| a.to_string());
            println!("{p}: ELF32 {arch}, entry {:#x}", elf.entry);
            for w in &elf.warnings {
                println!("  warning: {w}");
            }
            for s in &elf.sections {
                println!(
                    "  section {:<10} {:#010x}..{:#010x}",
                    s.name,
                    s.addr,
                    s.end()
                );
            }
            let lifted = lift_executable(&elf).map_err(|e| e.to_string())?;
            println!("  {} procedure(s):", lifted.procedure_count());
            for proc_ in &lifted.program.procedures {
                println!(
                    "    {:#010x} {:<30} {} block(s)",
                    proc_.addr,
                    proc_.display_name(),
                    proc_.blocks.len()
                );
            }
        }
    }
    Ok(())
}

fn disasm(args: &[String]) -> Result<(), String> {
    let paths = positional(args);
    let path = paths.first().ok_or("disasm requires an ELF path")?;
    let filter = flag_value(args, "--proc");
    let elf = Elf::parse(&read(Path::new(path))?).map_err(|e| e.to_string())?;
    let lifted = lift_executable(&elf).map_err(|e| e.to_string())?;
    let space = AddrSpace::from_elf(&elf);
    let config = CanonConfig::default();
    for proc_ in &lifted.program.procedures {
        if let Some(f) = filter {
            if proc_.display_name() != f {
                continue;
            }
        }
        println!("=== {} @ {:#x} ===", proc_.display_name(), proc_.addr);
        for block in &proc_.blocks {
            println!("  block {:#x}:", block.addr);
            for a in &block.asm {
                println!("    {a}");
            }
            let ssa = firmup::ir::ssa::ssa_block(block);
            for strand in firmup::core::strand::decompose(&ssa) {
                let c = canonicalize(&strand, &space, &config);
                for line in c.text.lines() {
                    println!("      ; strand: {line}");
                }
            }
        }
    }
    Ok(())
}

/// Where scan output goes: human text on stdout, one JSON document on
/// stdout (informational lines on stderr), or nothing (the `profile`
/// subcommand, which only wants the trace).
#[derive(Clone, Copy, PartialEq)]
enum OutputMode {
    Text,
    Json,
    Quiet,
}

fn scan(args: &[String]) -> Result<(), CliError> {
    // Scans always profile themselves: telemetry stays disabled (and
    // near-free) for every other command.
    firmup::telemetry::enable();
    // Pre-register the fault-tolerance counters so a clean scan still
    // reports them (at zero) in --metrics-out JSON.
    for name in [
        "scan.targets_poisoned",
        "scan.budget_exceeded",
        "scan.units_done",
        "scan.steal_count",
        "unpack.parts_quarantined",
        "index.cache_hit",
        "prefilter.candidates",
        "rep.clones",
        "io.retries",
    ] {
        let _ = firmup::telemetry::counter(name);
    }
    if has_flag(args, "--trace") {
        firmup::telemetry::set_trace(true);
    }
    let mode = match flag_value(args, "--format") {
        None | Some("text") => OutputMode::Text,
        Some("json") => OutputMode::Json,
        Some(other) => {
            return Err(CliError::Msg(format!(
                "--format: expected `text` or `json`, got `{other}`"
            )))
        }
    };
    let trace_out = flag_value(args, "--trace-out").map(PathBuf::from);
    if trace_out.is_some() {
        firmup::telemetry::set_span_trace(true);
    }
    firmup::shutdown::install();
    let metrics_out = flag_value(args, "--metrics-out").map(PathBuf::from);
    let (findings, interrupted) = {
        let _span = firmup::telemetry::span!("scan");
        scan_images(args, mode)?
    };
    firmup::telemetry::event(
        "scan.done",
        &[(
            "findings",
            firmup::telemetry::json::Json::Num(findings as f64),
        )],
    );
    firmup::telemetry::flush_trace();
    // In JSON mode stdout carries exactly one document: the findings.
    // Everything informational — profile included — goes to stderr.
    let info = |msg: String| {
        if mode == OutputMode::Json {
            eprintln!("{msg}");
        } else {
            println!("{msg}");
        }
    };
    let snap = firmup::telemetry::snapshot();
    if mode == OutputMode::Json {
        eprint!("{}", snap.render_text());
    } else {
        print!("{}", snap.render_text());
    }
    if let Some(path) = metrics_out {
        write_atomic(&path, snap.render_json().render().as_bytes())
            .map_err(|e| CliError::Msg(format!("{}: {e}", path.display())))?;
        info(format!("metrics written to {}", path.display()));
    }
    if let Some(path) = trace_out {
        let trace = firmup::telemetry::take_trace();
        let doc = firmup::telemetry::render_chrome(&trace);
        write_atomic(&path, doc.render().as_bytes())
            .map_err(|e| CliError::Msg(format!("{}: {e}", path.display())))?;
        info(format!(
            "trace written to {} ({} span(s), {} instant(s){})",
            path.display(),
            trace.spans.len(),
            trace.instants.len(),
            if trace.dropped > 0 {
                format!(", {} dropped", trace.dropped)
            } else {
                String::new()
            }
        ));
    }
    if interrupted {
        return Err(CliError::Interrupted);
    }
    Ok(())
}

/// `firmup profile` — run a quiet scan with span tracing on and fold
/// the resulting span tree into collapsed flamegraph stacks.
fn profile(args: &[String]) -> Result<(), CliError> {
    firmup::telemetry::enable();
    firmup::telemetry::set_span_trace(true);
    firmup::shutdown::install();
    let out = flag_value(args, "--out")
        .map_or_else(|| PathBuf::from("results/profile.folded"), PathBuf::from);
    let (findings, interrupted) = {
        let _span = firmup::telemetry::span!("scan");
        scan_images(args, OutputMode::Quiet)?
    };
    let trace = firmup::telemetry::take_trace();
    let folded = firmup::telemetry::render_folded(&trace);
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| CliError::Msg(format!("{}: {e}", dir.display())))?;
        }
    }
    write_atomic(&out, folded.as_bytes())
        .map_err(|e| CliError::Msg(format!("{}: {e}", out.display())))?;
    eprintln!(
        "profile: folded {} span(s) into {} ({findings} finding(s))",
        trace.spans.len(),
        out.display()
    );
    if interrupted {
        return Err(CliError::Interrupted);
    }
    Ok(())
}

/// Parse the `--game-ms`/`--target-ms`/`--scan-ms`/`--max-steps` flags
/// into a [`ScanBudget`].
fn scan_budget(args: &[String]) -> Result<ScanBudget, String> {
    let ms = |flag: &str| -> Result<Option<std::time::Duration>, String> {
        flag_value(args, flag)
            .map(|v| {
                v.parse::<u64>()
                    .map(std::time::Duration::from_millis)
                    .map_err(|e| format!("{flag}: {e}"))
            })
            .transpose()
    };
    Ok(ScanBudget {
        per_game: ms("--game-ms")?,
        per_target: ms("--target-ms")?,
        total: ms("--scan-ms")?,
        max_steps_total: flag_value(args, "--max-steps")
            .map(|v| v.parse::<u64>().map_err(|e| format!("--max-steps: {e}")))
            .transpose()?,
    })
}

/// Parse a `usize`-valued flag.
fn usize_flag(args: &[String], name: &str) -> Result<Option<usize>, String> {
    flag_value(args, name)
        .map(|v| v.parse::<usize>().map_err(|e| format!("{name}: {e}")))
        .transpose()
}

/// Unpack every image and lift + canonicalize each contained executable,
/// pooling the per-part work of *all* images over `threads` scoped
/// worker threads (0 = one per core) via [`firmup::pipeline`]. Every
/// per-image and per-part step is fault-isolated: a corrupt image or a
/// panicking lift is reported and skipped, never aborting the run (the
/// corpus-scale robustness requirement of §5.1). Returns the reps in
/// deterministic image/part order plus the count of images that failed
/// to unpack entirely.
fn lift_images(paths: &[&String], threads: usize) -> Result<(Vec<ExecutableRep>, usize), String> {
    let mut parts: Vec<firmup::pipeline::PartJob> = Vec::new();
    let mut skipped_images = 0usize;
    for p in paths {
        let unpacked = std::fs::read(Path::new(p.as_str()))
            .map_err(FirmUpError::from)
            .and_then(|bytes| firmup::pipeline::unpack_parts(p, &bytes));
        match unpacked {
            Ok(mut jobs) => parts.append(&mut jobs),
            Err(e) => {
                eprintln!("firmup: skipping image: {e}");
                firmup::telemetry::incr(&format!("scan.errors.{}", e.kind()));
                skipped_images += 1;
            }
        }
    }
    if skipped_images == paths.len() {
        return Err("no scannable image: every input failed to unpack".into());
    }
    let mut reps = Vec::with_capacity(parts.len());
    for r in firmup::pipeline::lift_parts(&parts, threads) {
        match r {
            Ok(rep) => reps.push(rep),
            Err(e) => eprintln!("firmup: skipping part: {e}"),
        }
    }
    Ok((reps, skipped_images))
}

fn index(args: &[String]) -> Result<(), CliError> {
    firmup::telemetry::enable();
    // Pre-register the durability counters so every run (including one
    // that reuses everything) reports them in --metrics-out JSON.
    for name in [
        "index.segments_committed",
        "index.segments_reused",
        "index.resumed",
        "io.retries",
    ] {
        let _ = firmup::telemetry::counter(name);
    }
    let paths = positional(args);
    if paths.is_empty() {
        return Err(CliError::Msg("index requires at least one IMAGE".into()));
    }
    let out = PathBuf::from(
        flag_value(args, "--out")
            .ok_or_else(|| CliError::Msg("index requires --out DIR".into()))?,
    );
    let threads = usize_flag(args, "--threads")?.unwrap_or(0);
    let resume = has_flag(args, "--resume");
    let metrics_out = flag_value(args, "--metrics-out").map(PathBuf::from);
    firmup::shutdown::install();
    std::fs::create_dir_all(&out).map_err(|e| format!("{}: {e}", out.display()))?;
    // One writer at a time: a second `firmup index` on the same DIR gets
    // a structured lock-held error instead of a torn index.
    let lock = acquire_lock(&out, &LockOptions::from_env())
        .map_err(|e| CliError::Msg(FirmUpError::from(e).to_string()))?;
    if resume {
        firmup::telemetry::incr("index.resumed");
    }
    let (mut ckpt, stats) =
        IndexCheckpoint::open(&out, resume).map_err(|e| CliError::Msg(e.to_string()))?;
    if stats.torn_tail {
        eprintln!("firmup: journal ended in a torn append (trimmed; that segment will be rebuilt)");
    }
    if stats.damaged > 0 {
        eprintln!(
            "firmup: {} damaged checkpoint segment(s) dropped; they will be re-lifted",
            stats.damaged
        );
    }
    // Test hook: slow the per-segment loop down so concurrency tests can
    // reliably observe a writer mid-build.
    let segment_delay = std::env::var("FIRMUP_TEST_SEGMENT_DELAY_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(std::time::Duration::from_millis);

    let mut reps: Vec<ExecutableRep> = Vec::new();
    let mut skipped = 0usize;
    let mut segments_done = 0usize;
    let mut was_interrupted = false;
    for p in &paths {
        let bytes = match std::fs::read(Path::new(p.as_str())) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("firmup: skipping image {p}: {e}");
                firmup::telemetry::incr("scan.errors.io");
                skipped += 1;
                continue;
            }
        };
        let digest = image_digest(p, &bytes);
        if ckpt.committed(digest) {
            match ckpt.load_segment(digest) {
                Ok(seg) => {
                    firmup::telemetry::incr("index.segments_reused");
                    reps.extend(seg);
                    segments_done += 1;
                }
                Err(e) => return Err(CliError::Msg(e.to_string())),
            }
        } else {
            match firmup::pipeline::lift_image(p, &bytes, threads) {
                Ok(seg) => {
                    ckpt.commit(digest, &seg)
                        .map_err(|e| CliError::Msg(e.to_string()))?;
                    reps.extend(seg);
                    segments_done += 1;
                }
                Err(e) => {
                    eprintln!("firmup: skipping image: {e}");
                    firmup::telemetry::incr(&format!("scan.errors.{}", e.kind()));
                    skipped += 1;
                }
            }
        }
        lock.heartbeat();
        crash_point(CP_BETWEEN_SEGMENTS);
        if let Some(d) = segment_delay {
            std::thread::sleep(d);
        }
        if firmup::shutdown::interrupted() {
            was_interrupted = true;
            break;
        }
    }

    let write_metrics = |metrics_out: &Option<PathBuf>| -> Result<(), CliError> {
        if let Some(path) = metrics_out {
            let snap = firmup::telemetry::snapshot();
            write_atomic(path, snap.render_json().render().as_bytes())
                .map_err(|e| CliError::Msg(format!("{}: {e}", path.display())))?;
            println!("metrics written to {}", path.display());
        }
        Ok(())
    };

    if was_interrupted {
        println!(
            "interrupted: {segments_done} image segment(s) durable in {}; rerun with --resume to finish",
            out.display()
        );
        print!("{}", firmup::telemetry::snapshot().render_text());
        write_metrics(&metrics_out)?;
        return Err(CliError::Interrupted);
    }
    if skipped == paths.len() {
        return Err(CliError::Msg(
            "no indexable image: every input failed to unpack".into(),
        ));
    }
    let corpus = CorpusIndex::build(reps);
    corpus
        .save(&out)
        .map_err(|e| CliError::Msg(e.to_string()))?;
    println!(
        "indexed {} executable(s) ({} procedure(s), {} distinct strand(s)) from {} image(s){} -> {}",
        corpus.executables.len(),
        corpus
            .executables
            .iter()
            .map(|e| e.procedures.len())
            .sum::<usize>(),
        corpus.postings.strand_count(),
        paths.len() - skipped,
        if skipped > 0 {
            format!(" ({skipped} unreadable image(s) skipped)")
        } else {
            String::new()
        },
        firmup::firmware::index::index_path(&out).display()
    );
    print!("{}", firmup::telemetry::snapshot().render_text());
    write_metrics(&metrics_out)?;
    drop(lock);
    Ok(())
}

fn fsck_cmd(args: &[String]) -> Result<(), String> {
    firmup::telemetry::enable();
    let _ = firmup::telemetry::counter("fsck.records_repaired");
    let pos = positional(args);
    let (dir, images) = pos.split_first().ok_or("fsck requires a DIR")?;
    let opts = firmup::fsck::FsckOptions {
        repair: has_flag(args, "--repair"),
        images: images.iter().map(|p| PathBuf::from(p.as_str())).collect(),
        threads: usize_flag(args, "--threads")?.unwrap_or(0),
    };
    let report = firmup::fsck::run(Path::new(dir.as_str()), &opts).map_err(|e| e.to_string())?;
    print!("{report}");
    if report.clean() {
        Ok(())
    } else if opts.repair {
        Err(
            "index not clean after repair (pass the source IMAGE... to rebuild lost segments)"
                .into(),
        )
    } else {
        Err("index not clean (rerun with --repair and the source images to rebuild)".into())
    }
}

/// One scan job: a built CVE query and the candidate targets it plays
/// against. The query rep lives behind an `Arc` shared with the cache —
/// an [`ExecutableRep`] is never cloned on the scan path.
struct ScanJob {
    cve: firmup::firmware::packages::CveSpec,
    query: std::sync::Arc<(ExecutableRep, usize, String)>,
    candidates: Vec<usize>,
    /// Full prefilter ranking `(corpus index, overlap score)` kept for
    /// `--explain` provenance (None when explain is off).
    prefilter: Option<Vec<(usize, f64)>>,
}

fn scan_images(args: &[String], mode: OutputMode) -> Result<(usize, bool), String> {
    let paths = positional(args);
    let index_dir = flag_value(args, "--index").map(PathBuf::from);
    if paths.is_empty() && index_dir.is_none() {
        return Err("scan requires at least one IMAGE (or --index DIR)".into());
    }
    let cve_filter = flag_value(args, "--cve");
    let budget = scan_budget(args)?;
    let canon = CanonConfig::default();
    let threads = usize_flag(args, "--threads")?.unwrap_or(1);
    let top_k = usize_flag(args, "--top-k")?.unwrap_or(0);
    let explain = has_flag(args, "--explain");
    // Informational lines: stdout normally, stderr when stdout is the
    // JSON findings document or suppressed (`firmup profile`).
    let info = |msg: String| match mode {
        OutputMode::Text => println!("{msg}"),
        OutputMode::Json | OutputMode::Quiet => eprintln!("{msg}"),
    };

    // Acquire the corpus: warm path loads the persisted index and skips
    // unpack/lift/canonicalize entirely; cold path lifts the images and
    // builds the same structures in memory. Either way the scan below is
    // identical.
    let corpus = if let Some(dir) = &index_dir {
        let corpus = CorpusIndex::load(dir).map_err(|e| e.to_string())?;
        info(format!(
            "loaded {} executable(s) from index {}",
            corpus.executables.len(),
            dir.display()
        ));
        corpus
    } else {
        let (reps, skipped_images) = lift_images(&paths, threads)?;
        info(format!(
            "indexed {} executable(s) from {} image(s){}",
            reps.len(),
            paths.len() - skipped_images,
            if skipped_images > 0 {
                format!(" ({skipped_images} unreadable image(s) skipped)")
            } else {
                String::new()
            }
        ));
        CorpusIndex::build(reps)
    };

    // Group targets by architecture: each (CVE, arch) pair is one job.
    let mut arch_groups: Vec<(Arch, Vec<usize>)> = Vec::new();
    for (i, exe) in corpus.executables.iter().enumerate() {
        match arch_groups.iter_mut().find(|(a, _)| *a == exe.arch) {
            Some((_, members)) => members.push(i),
            None => arch_groups.push((exe.arch, vec![i])),
        }
    }

    // Phase 1 — build the job list serially: compile one query per
    // (package, arch) and select its candidates (whole arch group, or
    // top-k by weighted strand overlap from the postings table).
    type QueryEntry = Option<std::sync::Arc<(ExecutableRep, usize, String)>>;
    let mut query_cache: HashMap<(String, Arch), QueryEntry> = HashMap::new();
    let mut jobs: Vec<ScanJob> = Vec::new();
    {
        let _span = firmup::telemetry::span!("queries");
        for cve in all_cves() {
            if let Some(filter) = cve_filter {
                if cve.cve != filter {
                    continue;
                }
            }
            for (arch, members) in &arch_groups {
                let key = (cve.package.to_string(), *arch);
                let entry = query_cache.entry(key).or_insert_with(|| {
                    let (elf, version) = match try_build_query(cve.package, *arch) {
                        Ok(q) => q,
                        Err(e) => {
                            eprintln!("firmup: query for {}: {e}", cve.cve);
                            return None;
                        }
                    };
                    index_elf(&elf, "query", &canon).ok().and_then(|rep| {
                        rep.find_named(cve.procedure)
                            .map(|qv| std::sync::Arc::new((rep, qv, version)))
                    })
                });
                let Some(query) = entry else {
                    continue;
                };
                // The full overlap ranking serves two masters: --top-k
                // candidate selection and --explain provenance (rank /
                // score / pool). Computed once, unconditionally ranked
                // (k = 0) so explain records are identical with and
                // without --top-k trimming.
                let ranked: Option<Vec<(usize, f64)>> = (top_k > 0 || explain).then(|| {
                    prefilter_candidates(
                        &query.0.procedures[query.1],
                        &corpus.postings,
                        Some(&corpus.context),
                        0,
                    )
                });
                let candidates: Vec<usize> = if top_k > 0 {
                    ranked
                        .as_deref()
                        .unwrap_or_default()
                        .iter()
                        .map(|&(i, _)| i)
                        .filter(|&i| corpus.executables[i].arch == *arch)
                        .take(top_k)
                        .collect()
                } else {
                    members.clone()
                };
                if candidates.is_empty() {
                    continue;
                }
                jobs.push(ScanJob {
                    cve,
                    query: std::sync::Arc::clone(query),
                    candidates,
                    prefilter: if explain { ranked } else { None },
                });
            }
        }
    }

    // Phase 2 — decompose every job's candidate list along the index's
    // shard boundaries into fine-grained (query × candidate-shard) work
    // units, then execute them all in one work-stealing pass sharing a
    // single scan-wide budget. `^C` cancels cooperatively at the next
    // unit boundary. The shard count is a fixed constant — never derived
    // from `--threads` — so the unit decomposition, and with it the span
    // tree reconstructed from `--trace-out`, is identical at every
    // thread count; 32 shards keeps stealing granular for typical core
    // counts (`shards` clamps to the corpus size).
    const SCAN_SHARDS: usize = 32;
    let shards = corpus.shards(SCAN_SHARDS);
    let mut units: Vec<ScanUnit> = Vec::new();
    for (j, job) in jobs.iter().enumerate() {
        for shard in &shards {
            let targets: Vec<usize> = job
                .candidates
                .iter()
                .copied()
                .filter(|i| shard.range().contains(i))
                .collect();
            if !targets.is_empty() {
                units.push(ScanUnit { job: j, targets });
            }
        }
    }
    let job_queries: Vec<(&ExecutableRep, usize)> =
        jobs.iter().map(|j| (&j.query.0, j.query.1)).collect();
    let config = SearchConfig {
        context: Some(corpus.context.clone()),
        threads,
        ..SearchConfig::default()
    };
    let per_unit = scan_units(
        &job_queries,
        &units,
        &corpus.executables,
        &config,
        &budget,
        &firmup::shutdown::interrupted,
    );

    // Phase 3 — regroup outcomes per job and merge deterministically:
    // findings rank on (sim, target id, address), never arrival order,
    // so `--threads N` prints byte-identical findings for every N.
    let mut per_job: Vec<Vec<Vec<TargetOutcome>>> = jobs.iter().map(|_| Vec::new()).collect();
    for (unit, outcomes) in units.iter().zip(per_unit) {
        per_job[unit.job].push(outcomes);
    }
    let mut findings = 0usize;
    let mut poisoned = 0usize;
    let mut over_budget = 0usize;
    let mut saw_scan_deadline = false;
    let mut saw_step_budget = false;
    let mut json_findings: Vec<firmup::telemetry::json::Json> = Vec::new();
    // Resolve a finding's target id back to its corpus slot, for
    // --explain provenance (strand counts, prefilter rank).
    let target_index: HashMap<&str, usize> = corpus
        .executables
        .iter()
        .enumerate()
        .map(|(i, e)| (e.id.as_str(), i))
        .collect();
    for (job, job_outcomes) in jobs.iter().zip(per_job) {
        let cve = &job.cve;
        let version = &job.query.2;
        for outcome in merge_outcomes(job_outcomes) {
            let id = outcome.target_id().to_string();
            match &outcome {
                TargetOutcome::Poisoned { panic, .. } => {
                    eprintln!(
                        "firmup: target {id} poisoned while hunting {}: {panic}",
                        cve.cve
                    );
                    poisoned += 1;
                    continue;
                }
                TargetOutcome::BudgetExceeded { reason, .. } => {
                    eprintln!(
                        "firmup: target {id} over budget ({reason}) hunting {}",
                        cve.cve
                    );
                    over_budget += 1;
                    match reason {
                        BudgetReason::ScanDeadline => saw_scan_deadline = true,
                        BudgetReason::StepBudget => saw_step_budget = true,
                        _ => {}
                    }
                }
                TargetOutcome::Completed(_) => {}
            }
            let Some(r) = outcome.result() else { continue };
            if let Some(m) = &r.matched {
                let explain_rec = if explain {
                    target_index.get(id.as_str()).map(|&ti| {
                        let mut ex = Explain::for_match(
                            &job.query.0,
                            job.query.1,
                            &corpus.executables[ti],
                            m,
                            r,
                            &config,
                        );
                        if let Some(pf) = &job.prefilter {
                            if let Some(pos) = pf.iter().position(|&(i, _)| i == ti) {
                                ex = ex.with_prefilter(pos + 1, pf[pos].1, pf.len());
                            }
                        }
                        ex
                    })
                } else {
                    None
                };
                match mode {
                    OutputMode::Json => {
                        use firmup::telemetry::json::Json;
                        let mut obj = vec![
                            ("cve".into(), Json::Str(cve.cve.to_string())),
                            ("procedure".into(), Json::Str(cve.procedure.to_string())),
                            ("package".into(), Json::Str(cve.package.to_string())),
                            ("version".into(), Json::Str(version.clone())),
                            ("target".into(), Json::Str(id.clone())),
                            ("addr".into(), Json::Num(f64::from(m.addr))),
                            ("sim".into(), Json::Num(m.sim as f64)),
                            ("steps".into(), Json::Num(r.steps as f64)),
                        ];
                        if let Some(ex) = &explain_rec {
                            obj.push(("explain".into(), ex.to_json()));
                        }
                        json_findings.push(Json::Obj(obj));
                    }
                    OutputMode::Text => {
                        println!(
                            "{}: {} ({} {version}) suspected at {:#x} in {id} (Sim={}, {} game step(s))",
                            cve.cve, cve.procedure, cve.package, m.addr, m.sim, r.steps
                        );
                        if let Some(ex) = &explain_rec {
                            print!("{}", ex.render_text());
                        }
                    }
                    OutputMode::Quiet => {}
                }
                firmup::telemetry::event(
                    "finding",
                    &[
                        (
                            "cve",
                            firmup::telemetry::json::Json::Str(cve.cve.to_string()),
                        ),
                        ("target", firmup::telemetry::json::Json::Str(id.clone())),
                        (
                            "addr",
                            firmup::telemetry::json::Json::Num(f64::from(m.addr)),
                        ),
                        ("sim", firmup::telemetry::json::Json::Num(m.sim as f64)),
                        ("steps", firmup::telemetry::json::Json::Num(r.steps as f64)),
                    ],
                );
                findings += 1;
            }
        }
    }
    let interrupted = firmup::shutdown::interrupted();
    if saw_scan_deadline {
        info("scan budget (--scan-ms) exhausted; remaining targets skipped".to_string());
    }
    if saw_step_budget {
        info("step budget (--max-steps) exhausted; remaining targets skipped".to_string());
    }
    if interrupted {
        info("interrupted; findings so far are complete for the targets scanned".to_string());
    }
    if mode == OutputMode::Json {
        use firmup::telemetry::json::Json;
        let doc = Json::Obj(vec![
            ("findings".into(), Json::Arr(json_findings)),
            ("total".into(), Json::Num(findings as f64)),
            ("poisoned".into(), Json::Num(poisoned as f64)),
            ("over_budget".into(), Json::Num(over_budget as f64)),
            ("interrupted".into(), Json::Bool(interrupted)),
        ]);
        println!("{}", doc.render());
    }
    info(format!("{findings} suspected occurrence(s)"));
    if poisoned > 0 || over_budget > 0 {
        info(format!(
            "degraded: {poisoned} poisoned target(s), {over_budget} over-budget target(s)"
        ));
    }
    Ok((findings, interrupted))
}

fn chaos(args: &[String]) -> Result<(), String> {
    let seed = flag_value(args, "--seed")
        .map(|v| {
            u64::from_str_radix(v.trim_start_matches("0x"), 16).map_err(|e| format!("--seed: {e}"))
        })
        .transpose()?
        .unwrap_or(0xc4a0_5000);
    let devices = flag_value(args, "--devices")
        .map(|v| v.parse::<usize>().map_err(|e| format!("--devices: {e}")))
        .transpose()?
        .unwrap_or(2);
    if has_flag(args, "--crash-matrix") {
        let firmup_bin = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
        let report = firmup::chaos::run_crash_matrix(&firmup::chaos::CrashMatrixConfig {
            seed,
            devices,
            firmup_bin,
        })?;
        print!("{report}");
        return if report.passed() {
            Ok(())
        } else {
            Err("crash-consistency violation (see matrix above)".into())
        };
    }
    let variants = flag_value(args, "--variants")
        .map(|v| v.parse::<u64>().map_err(|e| format!("--variants: {e}")))
        .transpose()?
        .unwrap_or(4);
    let report = firmup::chaos::run(&firmup::chaos::ChaosConfig {
        seed,
        devices,
        variants,
    });
    print!("{report}");
    if report.passed() {
        Ok(())
    } else {
        Err(format!(
            "{} panic(s) contained by stage guards",
            report.panics()
        ))
    }
}
