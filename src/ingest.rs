//! Incremental corpus ingestion — the engine behind `firmup index
//! --add` and `firmup compact`.
//!
//! A prepared corpus grows continuously: new firmware drops arrive
//! after `corpus.fui` was built, and rebuilding the whole index per
//! image does not scale. This module implements LSM-style growth on
//! top of the durable checkpoint machinery:
//!
//! * [`add_images`] lifts each new image into its own CRC'd segment
//!   under `segments/` (committed via `write_atomic` + a journal
//!   append, exactly like a full build's checkpoints), then publishes
//!   the new live-segment set atomically by rewriting the
//!   `segments.fum` manifest. Committed segments are never rewritten.
//!   [`firmup_core::persist::CorpusIndex::open`] unions the base file
//!   with every live segment, so scans see the additions immediately
//!   (and `firmup serve` picks them up on SIGHUP).
//! * [`compact`] folds every live segment into `corpus.fui` and
//!   atomically rewrites it, then publishes an empty manifest. The
//!   base file's `seals` record carries the digest of every folded
//!   image, which closes the crash window between the two writes: a
//!   reader that sees the new base with the old manifest skips the
//!   now-sealed segments instead of counting them twice, and rerunning
//!   `compact` completes the interrupted publish idempotently.
//!
//! Both operations hold the directory's advisory writer lock with a
//! distinct scope (`add` / `compact`), so concurrent writers fail fast
//! with a structured error naming the rival operation.
//!
//! The hard invariant (enforced by `tests/segments.rs` and the chaos
//! crash matrices): any sequence of `--add`, `compact`, and
//! crash+retry yields byte-identical scan findings to a from-scratch
//! `firmup index` over the same image set.

use std::path::{Path, PathBuf};

use firmup_core::error::{FaultCtx, FirmUpError};
use firmup_core::persist::{CorpusIndex, IndexCheckpoint};
use firmup_firmware::durable::{acquire_lock, crash_point, LockOptions, CP_BETWEEN_SEGMENTS};
use firmup_firmware::index::{
    image_digest, manifest_path, read_manifest, write_manifest, IndexError, JournalEntry, Manifest,
};

/// What one [`add_images`] run did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AddReport {
    /// Images newly lifted and committed as segments this run.
    pub added: usize,
    /// Images whose segment a previous (crashed or interrupted) run
    /// committed but never published; adopted into the manifest
    /// without re-lifting.
    pub adopted: usize,
    /// Images already folded into the corpus (sealed in the base or
    /// named by the live manifest); skipped as duplicates.
    pub already_live: usize,
    /// Unreadable or unliftable images skipped with a diagnostic.
    pub skipped: usize,
    /// Executables contributed by the newly lifted images.
    pub executables: usize,
    /// Manifest epoch after publish (the pre-run epoch if interrupted
    /// before publishing).
    pub epoch: u64,
    /// Live segments named by the manifest after publish.
    pub live_segments: usize,
    /// Whether SIGINT stopped the run before the manifest publish —
    /// committed segments are durable; rerun to publish them.
    pub interrupted: bool,
}

/// What one [`compact`] run did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// Live segments folded into `corpus.fui` this run (0 when the
    /// run only completed a previously interrupted publish).
    pub folded: usize,
    /// Executables in the compacted corpus.
    pub executables: usize,
    /// Manifest epoch after publish (0 when there was no manifest and
    /// nothing to do).
    pub epoch: u64,
}

fn io_ctx(path: &Path) -> FaultCtx {
    FaultCtx::image(path.display().to_string())
}

/// Open the directory's union view, bootstrapping an empty base
/// `corpus.fui` first when the directory has never been indexed (so
/// `--add` works on a fresh directory).
fn open_or_bootstrap(dir: &Path) -> Result<CorpusIndex, FirmUpError> {
    match CorpusIndex::open(dir) {
        Ok(ix) => Ok(ix),
        Err(FirmUpError::Index {
            source: IndexError::Missing { .. },
            ..
        }) => {
            CorpusIndex::build(Vec::new()).save(dir)?;
            CorpusIndex::open(dir)
        }
        Err(e) => Err(e),
    }
}

/// Append `images` to the corpus at `dir` as per-image segments,
/// without rewriting any committed state: each new image is lifted,
/// written as a CRC'd segment, journaled, and finally published by an
/// atomic manifest rewrite (old live entries + new ones, epoch + 1).
///
/// Duplicate images (already sealed into the base or already live) are
/// skipped; segments committed by a crashed previous run are adopted
/// without re-lifting. A SIGINT stops before the publish — everything
/// committed so far is durable and a rerun adopts it.
///
/// # Errors
///
/// [`FirmUpError::Lock`] when another writer holds the directory;
/// [`FirmUpError::Index`]/[`FirmUpError::Io`] for damaged or
/// unwritable on-disk state. Per-image lift failures are *skipped*
/// (reported on stderr and counted), matching `firmup index`.
pub fn add_images(
    dir: &Path,
    images: &[PathBuf],
    threads: usize,
) -> Result<AddReport, FirmUpError> {
    let _span = firmup_telemetry::span!("index.add");
    std::fs::create_dir_all(dir).map_err(|e| FirmUpError::from(e).in_ctx(io_ctx(dir)))?;
    let lock = acquire_lock(dir, &LockOptions::scoped("add"))?;
    let opened = open_or_bootstrap(dir)?;
    let old_manifest =
        read_manifest(dir).map_err(|e| FirmUpError::from(e).in_ctx(io_ctx(&manifest_path(dir))))?;
    let old_epoch = old_manifest.as_ref().map_or(0, |m| m.epoch);
    // The union's seal list ends with the live segment digests (in
    // manifest order); everything before them was sealed into the base.
    // Keep exactly the live entries — sealed ones are dropped from the
    // manifest we publish, finishing any interrupted compact.
    let live_from = opened.seals().len() - opened.segment_count();
    let live_digests = &opened.seals()[live_from..];
    let mut entries: Vec<JournalEntry> = old_manifest.map_or_else(Vec::new, |m| {
        m.entries
            .into_iter()
            .filter(|e| live_digests.contains(&e.digest))
            .collect()
    });
    // Never wipe: resume-mode open replays the journal and verifies
    // every committed segment instead of clearing them.
    let (mut ckpt, _stats) = IndexCheckpoint::open(dir, true)?;
    let mut report = AddReport {
        epoch: old_epoch,
        live_segments: entries.len(),
        ..AddReport::default()
    };
    for img in images {
        let tag = img.display().to_string();
        let bytes = match std::fs::read(img) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("firmup: skipping image {tag}: {e}");
                firmup_telemetry::incr("scan.errors.io");
                report.skipped += 1;
                continue;
            }
        };
        let digest = image_digest(&tag, &bytes);
        if opened.seals().contains(&digest) || entries.iter().any(|e| e.digest == digest) {
            report.already_live += 1;
        } else if let Some(entry) = ckpt.entry(digest).cloned() {
            firmup_telemetry::incr("index.segments_reused");
            report.adopted += 1;
            entries.push(entry);
        } else {
            match crate::pipeline::lift_image(&tag, &bytes, threads) {
                Ok(reps) => {
                    ckpt.commit(digest, &reps)?;
                    report.executables += reps.len();
                    report.added += 1;
                    entries.push(
                        ckpt.entry(digest)
                            .expect("segment committed a moment ago")
                            .clone(),
                    );
                }
                Err(e) => {
                    eprintln!("firmup: skipping image: {e}");
                    firmup_telemetry::incr(&format!("scan.errors.{}", e.kind()));
                    report.skipped += 1;
                }
            }
        }
        lock.heartbeat();
        crash_point(CP_BETWEEN_SEGMENTS);
        if crate::shutdown::interrupted() {
            report.interrupted = true;
            return Ok(report);
        }
    }
    let manifest = Manifest {
        epoch: old_epoch + 1,
        entries,
    };
    write_manifest(dir, &manifest)
        .map_err(|e| FirmUpError::from(e).in_ctx(io_ctx(&manifest_path(dir))))?;
    firmup_telemetry::incr("index.manifest_published");
    report.epoch = manifest.epoch;
    report.live_segments = manifest.entries.len();
    drop(lock);
    Ok(report)
}

/// Fold every live segment into `corpus.fui` and publish an empty
/// manifest. Two atomic writes, in a crash-safe order:
///
/// 1. rewrite `corpus.fui` with the folded executables and a `seals`
///    record extended by the folded digests;
/// 2. rewrite `segments.fum` with zero entries (epoch + 1).
///
/// A crash between the two leaves a manifest whose every entry is
/// sealed — readers skip them (no double count) and rerunning
/// `compact` finishes the publish. Segment files are never deleted
/// here; they remain verifiable checkpoints (`fsck` reconciles them).
///
/// # Errors
///
/// [`FirmUpError::Lock`] when another writer holds the directory;
/// [`FirmUpError::Index`]/[`FirmUpError::Io`] for damaged or
/// unwritable on-disk state (a missing `corpus.fui` included — run
/// `firmup index` first).
pub fn compact(dir: &Path) -> Result<CompactReport, FirmUpError> {
    let _span = firmup_telemetry::span!("index.compact");
    let lock = acquire_lock(dir, &LockOptions::scoped("compact"))?;
    let old_manifest =
        read_manifest(dir).map_err(|e| FirmUpError::from(e).in_ctx(io_ctx(&manifest_path(dir))))?;
    let Some(old_manifest) = old_manifest else {
        // No manifest: validate the base exists, then report a no-op.
        let ix = CorpusIndex::open(dir)?;
        return Ok(CompactReport {
            folded: 0,
            executables: ix.len(),
            epoch: 0,
        });
    };
    // The eager union *is* the compacted corpus: executables in
    // ingestion order, merged context/postings identical to a
    // from-scratch build, seals extended by the folded digests.
    let index = CorpusIndex::load(dir)?;
    let folded = index.segment_count();
    firmup_telemetry::add("index.segments_folded", folded as u64);
    index.save(dir)?;
    write_manifest(
        dir,
        &Manifest {
            epoch: old_manifest.epoch + 1,
            entries: Vec::new(),
        },
    )
    .map_err(|e| FirmUpError::from(e).in_ctx(io_ctx(&manifest_path(dir))))?;
    firmup_telemetry::incr("index.manifest_published");
    drop(lock);
    Ok(CompactReport {
        folded,
        executables: index.len(),
        epoch: old_manifest.epoch + 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmup_core::error::FirmUpError;

    fn temp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("firmup-ingest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn add_on_fresh_directory_bootstraps_an_empty_base() {
        let dir = temp("bootstrap");
        let report = add_images(&dir, &[], 1).unwrap();
        assert_eq!(report.added, 0);
        assert_eq!(report.epoch, 1);
        let ix = CorpusIndex::open(&dir).unwrap();
        assert!(ix.is_empty());
        assert_eq!(ix.segment_epoch(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_without_manifest_is_a_noop_but_requires_a_base() {
        let dir = temp("noop");
        // No base at all: structured error, not a panic.
        std::fs::create_dir_all(&dir).unwrap();
        let err = compact(&dir).unwrap_err();
        assert!(matches!(err, FirmUpError::Index { .. }), "{err:?}");
        // With a base and no manifest: report a no-op.
        CorpusIndex::build(Vec::new()).save(&dir).unwrap();
        let report = compact(&dir).unwrap();
        assert_eq!(report, CompactReport::default());
        assert!(!manifest_path(&dir).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_add_and_compact_fail_fast_naming_the_rival() {
        let dir = temp("rival");
        CorpusIndex::build(Vec::new()).save(&dir).unwrap();
        let held = acquire_lock(&dir, &LockOptions::scoped("add")).unwrap();
        let err = compact(&dir).unwrap_err();
        assert!(matches!(err, FirmUpError::Lock { .. }), "{err:?}");
        assert!(err.to_string().contains("firmup add"), "{err}");
        drop(held);
        let held = acquire_lock(&dir, &LockOptions::scoped("compact")).unwrap();
        let err = add_images(&dir, &[], 1).unwrap_err();
        assert!(matches!(err, FirmUpError::Lock { .. }), "{err:?}");
        assert!(err.to_string().contains("firmup compact"), "{err}");
        drop(held);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_locks_from_dead_holders_are_stolen_by_both_scopes() {
        let dir = temp("stale");
        CorpusIndex::build(Vec::new()).save(&dir).unwrap();
        // A pid far above any real pid_max: provably dead. `--add`
        // steals a dead `compact` holder's lock and vice versa.
        let lock = dir.join("index.lock");
        std::fs::write(&lock, "pid 4199999999\nscope compact\n").unwrap();
        let report = add_images(&dir, &[], 1).unwrap();
        assert_eq!(report.epoch, 1, "add did not steal the stale lock");
        std::fs::write(&lock, "pid 4199999999\nscope add\n").unwrap();
        compact(&dir).expect("compact did not steal the stale lock");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unreadable_images_are_skipped_not_fatal() {
        let dir = temp("skip");
        let report = add_images(&dir, &[PathBuf::from("/definitely/not/there.fwim")], 1).unwrap();
        assert_eq!(report.skipped, 1);
        assert_eq!(report.added, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
