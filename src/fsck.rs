//! `firmup fsck` — offline integrity verification and repair of an
//! index directory.
//!
//! An index directory holds four kinds of durable state: the
//! checkpoint journal (`journal.fuj`), the per-image segments under
//! `segments/`, the live-segment manifest (`segments.fum`) published
//! by `index --add`, and the final `corpus.fui`. fsck verifies all of
//! them — every record CRC is re-computed, every journal entry's
//! segment is read back, every manifest entry's segment is verified
//! against its recorded CRC and executable count — and reports a
//! per-object verdict table. Damaged segments are quarantined (moved
//! into `quarantine/`) so a later `--repair` run, given the source
//! images, re-lifts *only* the images whose checkpoints were lost and
//! rebuilds `corpus.fui` from the surviving plus repaired segments.
//!
//! Multi-segment layouts add three failure classes, all detected and
//! all repairable: a *torn* manifest (a crash mid-rewrite left a
//! salvageable prefix), a manifest entry whose segment is missing,
//! damaged, or truncated (`--repair` truncates the manifest to its
//! longest verifiable prefix), and a *double-committed* entry whose
//! image digest is already sealed into `corpus.fui` — the normal
//! residue of a compact interrupted between its two atomic writes;
//! readers skip such entries, and `--repair` drops them.
//!
//! fsck takes the directory's writer lock (scope `fsck`): it must
//! never race a live `firmup index`, `index --add`, or `compact`.

use std::fmt;
use std::path::{Path, PathBuf};

use firmup_core::error::{FaultCtx, FirmUpError};
use firmup_core::persist::{segment_from_bytes, CorpusIndex, IndexCheckpoint};
use firmup_firmware::crc::crc32;
use firmup_firmware::durable::{acquire_lock, is_tmp_debris, write_atomic, LockOptions};
use firmup_firmware::index::{
    image_digest, index_path, journal_path, manifest_path, parse_journal, render_journal_entry,
    scan_container, scan_manifest, segments_dir, write_manifest, JournalEntry, Manifest,
    RecordStatus,
};

/// Subdirectory damaged segments are moved into.
pub const QUARANTINE_DIR: &str = "quarantine";

/// What to check and whether to fix it.
#[derive(Debug, Clone, Default)]
pub struct FsckOptions {
    /// Rebuild what verification condemned (requires the source images
    /// for any lost segments).
    pub repair: bool,
    /// Source images, for re-lifting damaged/missing segments.
    pub images: Vec<PathBuf>,
    /// Lift parallelism for repairs (0 = all cores).
    pub threads: usize,
}

/// Verdict for one checked object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Verified intact.
    Ok,
    /// Damaged (and quarantined where applicable).
    Damaged,
    /// Referenced but absent.
    Missing,
    /// Present but unreferenced (warning, not damage).
    Orphan,
    /// Was damaged or missing; rebuilt by `--repair`.
    Repaired,
}

impl Verdict {
    fn label(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Damaged => "DAMAGED",
            Verdict::Missing => "MISSING",
            Verdict::Orphan => "orphan",
            Verdict::Repaired => "repaired",
        }
    }
}

/// One row of the verdict table.
#[derive(Debug, Clone)]
pub struct FsckRow {
    /// What was checked (`journal`, `segment <file>`, `corpus.fui`, or
    /// `corpus.fui record <name>`).
    pub what: String,
    /// The verdict.
    pub verdict: Verdict,
    /// Diagnosis detail (empty when ok).
    pub detail: String,
}

/// Full fsck outcome: the verdict table plus summary counts.
#[derive(Debug, Default)]
pub struct FsckReport {
    /// Per-object verdicts, in check order.
    pub rows: Vec<FsckRow>,
    /// Stray `write_atomic` temp files swept.
    pub tmp_swept: usize,
    /// Whether the journal ended in a torn append (trimmed).
    pub torn_tail: bool,
    /// Segments quarantined this run.
    pub quarantined: usize,
    /// Segments rebuilt by `--repair`.
    pub repaired: usize,
}

impl FsckReport {
    fn push(&mut self, what: impl Into<String>, verdict: Verdict, detail: impl Into<String>) {
        self.rows.push(FsckRow {
            what: what.into(),
            verdict,
            detail: detail.into(),
        });
    }

    /// Damaged/missing rows not superseded by a later `Repaired` row
    /// for the same object (the verdict table is a history: a repair
    /// resolves the diagnosis that preceded it). Rebuilding a container
    /// also resolves its sub-objects (`corpus.fui` covers every
    /// `corpus.fui record <name>` row).
    fn unresolved(&self) -> usize {
        let covers = |repaired: &str, what: &str| {
            what == repaired
                || what
                    .strip_prefix(repaired)
                    .is_some_and(|r| r.starts_with(' '))
        };
        self.rows
            .iter()
            .enumerate()
            .filter(|(i, r)| {
                matches!(r.verdict, Verdict::Damaged | Verdict::Missing)
                    && !self.rows[i + 1..].iter().any(|later| {
                        later.verdict == Verdict::Repaired && covers(&later.what, &r.what)
                    })
            })
            .count()
    }

    /// Whether every object is intact (or was repaired): orphans and a
    /// trimmed torn tail are warnings, anything damaged or missing is
    /// not clean.
    pub fn clean(&self) -> bool {
        self.unresolved() == 0
    }

    /// The exit-code taxonomy: [`FsckOutcome::Clean`] (nothing was
    /// wrong), [`FsckOutcome::Repaired`] (damage was found and fully
    /// repaired — the report shows what), or
    /// [`FsckOutcome::Unrepairable`] (damage remains). The first two
    /// exit 0; the last exits 1.
    pub fn outcome(&self) -> FsckOutcome {
        if !self.clean() {
            FsckOutcome::Unrepairable
        } else if self.rows.iter().any(|r| r.verdict == Verdict::Repaired) {
            FsckOutcome::Repaired
        } else {
            FsckOutcome::Clean
        }
    }
}

/// Three-way exit taxonomy of an fsck run — see [`FsckReport::outcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsckOutcome {
    /// Every object verified intact; nothing was touched.
    Clean,
    /// Damage was found and every piece of it was repaired.
    Repaired,
    /// Damage remains after verification (and repair, if requested).
    Unrepairable,
}

impl fmt::Display for FsckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self.rows.iter().map(|r| r.what.len()).max().unwrap_or(4);
        writeln!(f, "{:<width$}  verdict   detail", "object")?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<width$}  {:<8}  {}",
                r.what,
                r.verdict.label(),
                r.detail
            )?;
        }
        let damaged = self.unresolved();
        writeln!(
            f,
            "fsck: {} object(s) checked, {} damaged/missing, {} quarantined, {} repaired{}{}",
            self.rows.len(),
            damaged,
            self.quarantined,
            self.repaired,
            if self.torn_tail {
                ", torn journal tail trimmed"
            } else {
                ""
            },
            if self.tmp_swept > 0 {
                format!(", {} stray tmp file(s) swept", self.tmp_swept)
            } else {
                String::new()
            }
        )?;
        writeln!(
            f,
            "fsck: {}",
            match self.outcome() {
                FsckOutcome::Clean => "clean",
                FsckOutcome::Repaired => "repaired (clean after repair)",
                FsckOutcome::Unrepairable => "NOT clean",
            }
        )
    }
}

fn sweep_tmp(dir: &Path, report: &mut FsckReport) {
    let Ok(listing) = std::fs::read_dir(dir) else {
        return;
    };
    for item in listing.flatten() {
        let name = item.file_name();
        if name.to_str().is_some_and(is_tmp_debris) && std::fs::remove_file(item.path()).is_ok() {
            report.tmp_swept += 1;
        }
    }
}

fn quarantine(dir: &Path, path: &Path, report: &mut FsckReport) {
    let qdir = dir.join(QUARANTINE_DIR);
    let _ = std::fs::create_dir_all(&qdir);
    if let Some(name) = path.file_name() {
        if std::fs::rename(path, qdir.join(name)).is_ok() {
            report.quarantined += 1;
        }
    }
}

/// Verify (and with [`FsckOptions::repair`], rebuild) the index
/// directory `dir`.
///
/// # Errors
///
/// [`FirmUpError::Lock`] when a live writer holds the directory,
/// [`FirmUpError::Io`] on unreadable metadata. Damage to the *index
/// contents* is not an error — it lands in the report.
pub fn run(dir: &Path, opts: &FsckOptions) -> Result<FsckReport, FirmUpError> {
    let _lock = acquire_lock(dir, &LockOptions::scoped("fsck"))?;
    let mut report = FsckReport::default();
    let seg_dir = segments_dir(dir);
    sweep_tmp(dir, &mut report);
    sweep_tmp(&seg_dir, &mut report);

    // Journal: parse, trim a torn tail, verify each entry's segment.
    let journal = journal_path(dir);
    let journal_bytes = match std::fs::read(&journal) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => {
            return Err(FirmUpError::from(e).in_ctx(FaultCtx::image(journal.display().to_string())))
        }
    };
    let (entries, torn) = parse_journal(&journal_bytes);
    report.torn_tail = torn;
    let mut valid: Vec<JournalEntry> = Vec::new();
    let mut journal_dirty = torn;
    for entry in entries {
        let seg_path = seg_dir.join(&entry.segment);
        let what = format!("segment {}", entry.segment);
        match std::fs::read(&seg_path) {
            Err(_) => {
                report.push(what, Verdict::Missing, "segment file absent");
                journal_dirty = true;
            }
            Ok(blob) if crc32(&blob) != entry.crc => {
                report.push(what, Verdict::Damaged, "CRC-32 mismatch vs journal");
                quarantine(dir, &seg_path, &mut report);
                journal_dirty = true;
            }
            Ok(blob) => match segment_from_bytes(&blob) {
                Ok(reps) if reps.len() as u32 == entry.executables => {
                    report.push(what, Verdict::Ok, format!("{} executable(s)", reps.len()));
                    valid.push(entry);
                }
                Ok(reps) => {
                    report.push(
                        what,
                        Verdict::Damaged,
                        format!(
                            "journal declares {} executable(s), segment holds {}",
                            entry.executables,
                            reps.len()
                        ),
                    );
                    quarantine(dir, &seg_path, &mut report);
                    journal_dirty = true;
                }
                Err(e) => {
                    report.push(what, Verdict::Damaged, e.to_string());
                    quarantine(dir, &seg_path, &mut report);
                    journal_dirty = true;
                }
            },
        }
    }

    // Live-segment manifest: parse tolerantly, then verify every entry
    // against its segment file. The base file's seals record identifies
    // double-committed entries (a compact crashed between rewriting
    // corpus.fui and clearing the manifest): readers already skip them,
    // so they are dropped, not condemned-with-prejudice. Anything else
    // bad truncates the manifest to its longest verifiable prefix on
    // repair.
    let base_seals: Vec<u64> = std::fs::read(index_path(dir))
        .ok()
        .and_then(|b| CorpusIndex::from_bytes(&b).ok())
        .map(|ix| ix.seals().to_vec())
        .unwrap_or_default();
    let manifest_file = manifest_path(dir);
    let manifest_bytes = match std::fs::read(&manifest_file) {
        Ok(b) => Some(b),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => {
            return Err(
                FirmUpError::from(e).in_ctx(FaultCtx::image(manifest_file.display().to_string()))
            )
        }
    };
    let mut manifest_keep: Vec<JournalEntry> = Vec::new();
    let mut manifest_names: Vec<String> = Vec::new();
    let mut manifest_dirty = false;
    let mut manifest_epoch = 0u64;
    if let Some(bytes) = &manifest_bytes {
        let mscan = scan_manifest(bytes);
        manifest_epoch = mscan.epoch.unwrap_or(0);
        if mscan.torn {
            report.push(
                "segments.fum",
                Verdict::Damaged,
                format!(
                    "torn manifest ({} entr{} salvageable)",
                    mscan.entries.len(),
                    if mscan.entries.len() == 1 { "y" } else { "ies" }
                ),
            );
            manifest_dirty = true;
        }
        let mut prefix_intact = true;
        for entry in mscan.entries {
            let what = format!("segments.fum entry {}", entry.segment);
            manifest_names.push(entry.segment.clone());
            if base_seals.contains(&entry.digest) {
                report.push(
                    what,
                    Verdict::Orphan,
                    "double-committed: image already sealed into corpus.fui (readers skip it)",
                );
                manifest_dirty = true; // dropped on repair, but harmless
                continue;
            }
            if !prefix_intact {
                report.push(
                    what,
                    Verdict::Damaged,
                    "beyond a damaged entry (dropped with the prefix on repair)",
                );
                continue;
            }
            let seg_path = seg_dir.join(&entry.segment);
            match std::fs::read(&seg_path) {
                Err(_) => {
                    report.push(what, Verdict::Missing, "live segment file absent");
                    manifest_dirty = true;
                    prefix_intact = false;
                }
                Ok(blob) if crc32(&blob) != entry.crc => {
                    report.push(what, Verdict::Damaged, "CRC-32 mismatch vs manifest");
                    manifest_dirty = true;
                    prefix_intact = false;
                }
                Ok(blob) => match segment_from_bytes(&blob) {
                    Ok(reps) if reps.len() as u32 == entry.executables => {
                        report.push(what, Verdict::Ok, format!("{} executable(s)", reps.len()));
                        manifest_keep.push(entry);
                    }
                    Ok(reps) => {
                        report.push(
                            what,
                            Verdict::Damaged,
                            format!(
                                "manifest declares {} executable(s), segment holds {}",
                                entry.executables,
                                reps.len()
                            ),
                        );
                        manifest_dirty = true;
                        prefix_intact = false;
                    }
                    Err(e) => {
                        report.push(what, Verdict::Damaged, e.to_string());
                        manifest_dirty = true;
                        prefix_intact = false;
                    }
                },
            }
        }
    }

    // Orphan segments: present on disk, referenced by neither the
    // journal nor the live-segment manifest.
    if let Ok(listing) = std::fs::read_dir(&seg_dir) {
        for item in listing.flatten() {
            let name = item.file_name().to_string_lossy().into_owned();
            if !valid.iter().any(|e| e.segment == name) && !manifest_names.contains(&name) {
                report.push(
                    format!("segment {name}"),
                    Verdict::Orphan,
                    "referenced by neither the journal nor the manifest",
                );
            }
        }
    }

    // Repair lost segments from source images, if provided.
    if opts.repair {
        let (mut ckpt, _) = IndexCheckpoint::open(dir, true)?;
        for img in &opts.images {
            let tag = img.display().to_string();
            let bytes = match std::fs::read(img) {
                Ok(b) => b,
                Err(e) => {
                    report.push(format!("image {tag}"), Verdict::Missing, e.to_string());
                    continue;
                }
            };
            let digest = image_digest(&tag, &bytes);
            if ckpt.committed(digest) {
                continue;
            }
            match crate::pipeline::lift_image(&tag, &bytes, opts.threads) {
                Ok(reps) => {
                    let n = reps.len();
                    ckpt.commit(digest, &reps)?;
                    firmup_telemetry::add("fsck.records_repaired", n as u64);
                    report.repaired += 1;
                    report.push(
                        format!(
                            "segment {}",
                            firmup_firmware::index::segment_file_name(digest)
                        ),
                        Verdict::Repaired,
                        format!("re-lifted {n} executable(s) from {tag}"),
                    );
                }
                Err(e) => {
                    report.push(format!("image {tag}"), Verdict::Damaged, e.to_string());
                }
            }
        }
        // Re-read the journal: the checkpoint open above already
        // dropped condemned entries and the repairs appended new ones.
        let bytes = std::fs::read(&journal).unwrap_or_default();
        valid = parse_journal(&bytes).0;
        journal_dirty = false;
        // Rewrite a damaged manifest to its verified prefix (sealed
        // duplicates dropped, epoch bumped so reloads notice).
        if manifest_dirty {
            write_manifest(
                dir,
                &Manifest {
                    epoch: manifest_epoch + 1,
                    entries: manifest_keep.clone(),
                },
            )
            .map_err(|e| {
                FirmUpError::from(e).in_ctx(FaultCtx::image(manifest_file.display().to_string()))
            })?;
            report.repaired += 1;
            report.push(
                "segments.fum",
                Verdict::Repaired,
                format!(
                    "rewritten to {} verified live entr{} at epoch {}",
                    manifest_keep.len(),
                    if manifest_keep.len() == 1 { "y" } else { "ies" },
                    manifest_epoch + 1
                ),
            );
        }
    } else if journal_dirty && !journal_bytes.is_empty() {
        // Rewrite the journal to only the verified entries so the next
        // resume does not re-diagnose the same damage.
        let mut fresh = String::new();
        for e in &valid {
            fresh.push_str(&render_journal_entry(e));
        }
        write_atomic(&journal, fresh.as_bytes()).map_err(|e| {
            FirmUpError::from(e).in_ctx(FaultCtx::image(journal.display().to_string()))
        })?;
    }
    let _ = journal_dirty;

    // corpus.fui: per-record verdicts, then a full typed decode.
    let fui = index_path(dir);
    let mut fui_ok = false;
    match std::fs::read(&fui) {
        Err(_) => report.push("corpus.fui", Verdict::Missing, "index file absent"),
        Ok(blob) if blob.is_empty() => {
            report.push("corpus.fui", Verdict::Damaged, "zero-length file")
        }
        Ok(blob) => match scan_container(&blob) {
            Err(e) => report.push("corpus.fui", Verdict::Damaged, e.to_string()),
            Ok(checks) => {
                let mut damaged = 0usize;
                for c in &checks {
                    let verdict = match c.status {
                        RecordStatus::Ok => Verdict::Ok,
                        _ => {
                            damaged += 1;
                            Verdict::Damaged
                        }
                    };
                    let detail = match c.status {
                        RecordStatus::Ok => format!("{} byte(s)", c.len),
                        RecordStatus::ChecksumMismatch => "CRC-32 mismatch".to_string(),
                        RecordStatus::TruncatedPayload => "payload truncated".to_string(),
                    };
                    report.push(format!("corpus.fui record {}", c.name), verdict, detail);
                }
                if damaged == 0 {
                    match CorpusIndex::from_bytes(&blob) {
                        Ok(_) => fui_ok = true,
                        Err(e) => report.push("corpus.fui", Verdict::Damaged, e.to_string()),
                    }
                }
            }
        },
    }

    // Rebuild corpus.fui from the (surviving + repaired) segments.
    if opts.repair && !fui_ok {
        let (ckpt, _) = IndexCheckpoint::open(dir, true)?;
        let mut reps = Vec::new();
        let mut complete = true;
        for e in &valid {
            match ckpt.load_segment(e.digest) {
                Ok(mut segment_reps) => reps.append(&mut segment_reps),
                Err(_) => complete = false,
            }
        }
        if complete {
            let mut rebuilt = CorpusIndex::build(reps);
            // The rebuild folds *every* verified segment, so seal their
            // digests and clear the manifest — otherwise readers would
            // union the still-live entries in twice.
            rebuilt.set_seals(valid.iter().map(|e| e.digest).collect());
            rebuilt.save(dir)?;
            report.push("corpus.fui", Verdict::Repaired, "rebuilt from segments");
            if manifest_bytes.is_some() {
                write_manifest(
                    dir,
                    &Manifest {
                        epoch: manifest_epoch + 1,
                        entries: Vec::new(),
                    },
                )
                .map_err(|e| {
                    FirmUpError::from(e)
                        .in_ctx(FaultCtx::image(manifest_file.display().to_string()))
                })?;
                report.push(
                    "segments.fum",
                    Verdict::Repaired,
                    "cleared: every live segment folded into the rebuilt corpus.fui",
                );
            }
        } else {
            report.push(
                "corpus.fui",
                Verdict::Damaged,
                "cannot rebuild: segments still missing (pass the source images)",
            );
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmup_core::sim::{ExecutableRep, ProcedureRep};
    use firmup_isa::Arch;

    fn rep(id: &str) -> ExecutableRep {
        ExecutableRep {
            id: id.into(),
            arch: Arch::Mips32,
            procedures: vec![ProcedureRep {
                addr: 0x1000,
                name: Some("f".into()),
                strands: vec![1, 4, 9],
                block_count: 1,
                size: 16,
                interned: None,
            }],
        }
    }

    fn setup(tag: &str) -> (PathBuf, IndexCheckpoint) {
        let dir = std::env::temp_dir().join(format!("firmup-fsck-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut ckpt, _) = IndexCheckpoint::open(&dir, false).unwrap();
        ckpt.commit(0xa1, &[rep("a")]).unwrap();
        ckpt.commit(0xb2, &[rep("b")]).unwrap();
        CorpusIndex::build(vec![rep("a"), rep("b")])
            .save(&dir)
            .unwrap();
        (dir, ckpt)
    }

    #[test]
    fn pristine_directory_is_clean() {
        let (dir, _ckpt) = setup("clean");
        let report = run(&dir, &FsckOptions::default()).unwrap();
        assert!(report.clean(), "{report}");
        assert_eq!(report.quarantined, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_segment_is_condemned_and_quarantined() {
        let (dir, _ckpt) = setup("damage");
        let seg = segments_dir(&dir).join(firmup_firmware::index::segment_file_name(0xa1));
        let mut blob = std::fs::read(&seg).unwrap();
        blob[12] ^= 0xff;
        std::fs::write(&seg, &blob).unwrap();
        let report = run(&dir, &FsckOptions::default()).unwrap();
        assert!(!report.clean(), "{report}");
        assert_eq!(report.quarantined, 1);
        assert!(dir
            .join(QUARANTINE_DIR)
            .join(firmup_firmware::index::segment_file_name(0xa1))
            .is_file());
        // The journal was rewritten: a second fsck reports the segment
        // gone from the manifest (clean now — the damage is recorded).
        let report = run(&dir, &FsckOptions::default()).unwrap();
        assert!(
            !report.rows.iter().any(|r| r.verdict == Verdict::Damaged),
            "{report}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_corpus_record_gets_a_per_record_verdict() {
        let (dir, _ckpt) = setup("record");
        let fui = index_path(&dir);
        let mut blob = std::fs::read(&fui).unwrap();
        let n = blob.len();
        blob[n - 2] ^= 0x20; // inside the last record's payload
        std::fs::write(&fui, &blob).unwrap();
        let report = run(&dir, &FsckOptions::default()).unwrap();
        assert!(!report.clean());
        let damaged: Vec<&FsckRow> = report
            .rows
            .iter()
            .filter(|r| r.verdict == Verdict::Damaged)
            .collect();
        assert_eq!(damaged.len(), 1, "{report}");
        assert!(damaged[0].what.starts_with("corpus.fui record"), "{report}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v2_intern_and_postings2_records_are_individually_checked() {
        let (dir, _ckpt) = setup("v2rec");
        let report = run(&dir, &FsckOptions::default()).unwrap();
        for name in ["corpus.fui record intern", "corpus.fui record postings2"] {
            assert!(
                report
                    .rows
                    .iter()
                    .any(|r| r.what == name && r.verdict == Verdict::Ok),
                "missing per-record verdict for {name}: {report}"
            );
        }
        // Valid-CRC typed damage: rebuild the container around a
        // zero-delta intern payload. Every record CRC verifies clean,
        // so only the full typed decode can condemn the file — the row
        // must land on corpus.fui itself with the codec's diagnosis.
        let fui = index_path(&dir);
        let blob = std::fs::read(&fui).unwrap();
        let mut records = firmup_firmware::index::read_container(&blob).unwrap();
        let mut payload = Vec::new();
        for v in [2u64, 5, 0] {
            firmup_firmware::index::push_varint(&mut payload, v);
        }
        records
            .iter_mut()
            .find(|r| r.name == "intern")
            .expect("v2 index carries an intern record")
            .payload = payload;
        let damaged = firmup_firmware::index::write_container_v2(&records);
        std::fs::write(&fui, &damaged).unwrap();
        let report = run(&dir, &FsckOptions::default()).unwrap();
        assert!(!report.clean(), "{report}");
        assert!(
            report.rows.iter().any(|r| r.what == "corpus.fui"
                && r.verdict == Verdict::Damaged
                && r.detail.contains("strictly increasing")),
            "typed decode did not diagnose the codec damage: {report}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn repair_rebuilds_corpus_from_surviving_segments() {
        let (dir, _ckpt) = setup("rebuild");
        // Smash corpus.fui entirely; segments are intact, so repair
        // rebuilds without any source images.
        std::fs::write(index_path(&dir), b"garbage").unwrap();
        let report = run(
            &dir,
            &FsckOptions {
                repair: true,
                ..FsckOptions::default()
            },
        )
        .unwrap();
        assert!(report.clean(), "{report}");
        let back = CorpusIndex::load(&dir).unwrap();
        assert_eq!(back.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A multi-segment layout: base corpus of `a` (sealed), live
    /// segments `b` (0xb2) and `c` (0xc3) journaled and published by a
    /// manifest at epoch 5.
    fn setup_multiseg(tag: &str) -> (PathBuf, Vec<JournalEntry>) {
        let dir =
            std::env::temp_dir().join(format!("firmup-fsck-seg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut ckpt, _) = IndexCheckpoint::open(&dir, false).unwrap();
        ckpt.commit(0xb2, &[rep("b")]).unwrap();
        ckpt.commit(0xc3, &[rep("c")]).unwrap();
        let mut base = CorpusIndex::build(vec![rep("a")]);
        base.set_seals(vec![0xa1]);
        base.save(&dir).unwrap();
        let entries = vec![
            ckpt.entry(0xb2).unwrap().clone(),
            ckpt.entry(0xc3).unwrap().clone(),
        ];
        write_manifest(
            &dir,
            &Manifest {
                epoch: 5,
                entries: entries.clone(),
            },
        )
        .unwrap();
        (dir, entries)
    }

    #[test]
    fn intact_multi_segment_layout_is_clean() {
        let (dir, _) = setup_multiseg("clean");
        let report = run(&dir, &FsckOptions::default()).unwrap();
        assert_eq!(report.outcome(), FsckOutcome::Clean, "{report}");
        assert!(report
            .rows
            .iter()
            .any(|r| r.what.starts_with("segments.fum entry") && r.verdict == Verdict::Ok));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_manifest_is_detected_and_repaired_to_its_prefix() {
        let (dir, _) = setup_multiseg("torn");
        let mpath = manifest_path(&dir);
        let bytes = std::fs::read(&mpath).unwrap();
        std::fs::write(&mpath, &bytes[..bytes.len() - 3]).unwrap();
        let report = run(&dir, &FsckOptions::default()).unwrap();
        assert_eq!(report.outcome(), FsckOutcome::Unrepairable, "{report}");
        assert!(
            report
                .rows
                .iter()
                .any(|r| r.what == "segments.fum" && r.detail.contains("torn")),
            "{report}"
        );
        let report = run(
            &dir,
            &FsckOptions {
                repair: true,
                ..FsckOptions::default()
            },
        )
        .unwrap();
        assert_eq!(report.outcome(), FsckOutcome::Repaired, "{report}");
        // Both live entries survived the tear; the repaired manifest
        // republishes them at a bumped epoch and reads see all three.
        let ix = CorpusIndex::load(&dir).unwrap();
        assert_eq!(ix.len(), 3, "{report}");
        assert_eq!(ix.segment_epoch(), 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn double_committed_manifest_entry_is_a_warning_and_dropped_on_repair() {
        let (dir, _) = setup_multiseg("dup");
        // Simulate a compact that crashed after rewriting corpus.fui
        // but before clearing the manifest: the new base has folded b
        // in (and sealed 0xb2), yet the manifest still lists it live.
        let mut base = CorpusIndex::build(vec![rep("a"), rep("b")]);
        base.set_seals(vec![0xa1, 0xb2]);
        base.save(&dir).unwrap();
        let report = run(&dir, &FsckOptions::default()).unwrap();
        // Readers skip the sealed entry, so this is a warning (orphan),
        // not damage — fsck without --repair stays clean.
        assert_eq!(report.outcome(), FsckOutcome::Clean, "{report}");
        assert!(
            report
                .rows
                .iter()
                .any(|r| r.verdict == Verdict::Orphan && r.detail.contains("double-committed")),
            "{report}"
        );
        let report = run(
            &dir,
            &FsckOptions {
                repair: true,
                ..FsckOptions::default()
            },
        )
        .unwrap();
        assert_eq!(report.outcome(), FsckOutcome::Repaired, "{report}");
        let m = firmup_firmware::index::read_manifest(&dir)
            .unwrap()
            .unwrap();
        assert_eq!(m.entries.len(), 1, "only 0xc3 stays live");
        assert_eq!(m.entries[0].digest, 0xc3);
        assert_eq!(CorpusIndex::load(&dir).unwrap().len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_live_segment_truncates_manifest_to_verifiable_prefix() {
        let (dir, entries) = setup_multiseg("prefix");
        // Splice a never-committed segment between the two live ones:
        // [b, ghost, c] — the verifiable prefix is just [b].
        let ghost = JournalEntry {
            digest: 0xdd,
            crc: 0,
            executables: 1,
            segment: firmup_firmware::index::segment_file_name(0xdd),
        };
        write_manifest(
            &dir,
            &Manifest {
                epoch: 5,
                entries: vec![entries[0].clone(), ghost, entries[1].clone()],
            },
        )
        .unwrap();
        let report = run(&dir, &FsckOptions::default()).unwrap();
        assert_eq!(report.outcome(), FsckOutcome::Unrepairable, "{report}");
        let report = run(
            &dir,
            &FsckOptions {
                repair: true,
                ..FsckOptions::default()
            },
        )
        .unwrap();
        assert_eq!(report.outcome(), FsckOutcome::Repaired, "{report}");
        let m = firmup_firmware::index::read_manifest(&dir)
            .unwrap()
            .unwrap();
        assert_eq!(m.entries.len(), 1, "{report}");
        assert_eq!(m.entries[0].digest, 0xb2);
        // Base (a) + surviving prefix (b): c is journaled but no longer
        // published, exactly the consistent-prefix contract.
        assert_eq!(CorpusIndex::load(&dir).unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_contents_are_reported_not_panicked() {
        let dir = std::env::temp_dir().join(format!("firmup-fsck-void-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let report = run(&dir, &FsckOptions::default()).unwrap();
        assert!(!report.clean(), "an empty dir has no corpus.fui: {report}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
