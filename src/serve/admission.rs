//! Bounded admission queue with explicit load shedding.
//!
//! The daemon's robustness hinges on never queueing unboundedly: a
//! burst beyond `cap` pending requests is *shed* — the caller gets a
//! structured `429 overloaded` response immediately — instead of piling
//! up latency until every client times out. [`AdmissionQueue::try_push`]
//! never blocks; [`AdmissionQueue::pop`] blocks workers until work or
//! [`AdmissionQueue::close`], after which the queue drains (accepted
//! items are still handed out) and then reports exhaustion — the
//! graceful-drain half of SIGTERM handling.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A bounded MPMC queue: non-blocking bounded push, blocking pop,
/// drain-then-exhaust close semantics.
pub struct AdmissionQueue<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
    cap: usize,
}

struct State<T> {
    queue: VecDeque<T>,
    closed: bool,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `cap` pending items (`cap = 0` sheds
    /// everything — useful for drills and tests of the shed path).
    pub fn new(cap: usize) -> AdmissionQueue<T> {
        AdmissionQueue {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            cap,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Pending items right now (racy by nature; for metrics/readiness).
    pub fn depth(&self) -> usize {
        self.state.lock().expect("admission lock").queue.len()
    }

    /// Admit `item`, returning the post-push depth — or shed it (handing
    /// the item back) when the queue is full or closed. Never blocks.
    pub fn try_push(&self, item: T) -> Result<usize, T> {
        let mut s = self.state.lock().expect("admission lock");
        if s.closed || s.queue.len() >= self.cap {
            return Err(item);
        }
        s.queue.push_back(item);
        let depth = s.queue.len();
        drop(s);
        self.cv.notify_one();
        Ok(depth)
    }

    /// Take the next item, blocking while the queue is open and empty.
    /// After [`close`](AdmissionQueue::close), remaining items are still
    /// handed out (the drain guarantee: every accepted request gets an
    /// answer); only then does `pop` return `None`.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().expect("admission lock");
        loop {
            if let Some(item) = s.queue.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.cv.wait(s).expect("admission wait");
        }
    }

    /// Stop admitting; wake every blocked popper so workers can drain
    /// what was accepted and then exit.
    pub fn close(&self) {
        self.state.lock().expect("admission lock").closed = true;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fills_sheds_then_drains() {
        let q = AdmissionQueue::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        // Full: the third item is shed, handed back intact.
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.depth(), 2);
        // Draining makes room again.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(4), Ok(2));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn zero_capacity_sheds_everything() {
        let q = AdmissionQueue::new(0);
        assert_eq!(q.try_push("x"), Err("x"));
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn close_drains_accepted_items_then_reports_exhaustion() {
        let q = AdmissionQueue::new(8);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        q.close();
        // Post-close pushes shed; accepted items still drain in order.
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "exhaustion is sticky");
    }

    #[test]
    fn blocked_poppers_wake_on_push_and_on_close() {
        let q = Arc::new(AdmissionQueue::new(4));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || (q2.pop(), q2.pop()));
        // Give the popper time to block, then feed it and close.
        std::thread::sleep(Duration::from_millis(50));
        assert!(q.try_push(7).is_ok());
        std::thread::sleep(Duration::from_millis(50));
        q.close();
        let (first, second) = popper.join().expect("popper");
        assert_eq!(first, Some(7));
        assert_eq!(second, None);
    }
}
