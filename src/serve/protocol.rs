//! Minimal std-only wire protocol for `firmup serve`.
//!
//! Two dialects on one port, distinguished by the first byte:
//!
//! - **HTTP/1.1** (`GET /healthz`, `GET /readyz`, `GET /metrics`,
//!   `POST /scan`): request line + headers + `Content-Length` body;
//!   every response closes the connection.
//! - **newline JSON**: a bare JSON object on one line (first byte `{`)
//!   is treated as a `POST /scan` body; the response is the findings
//!   document on one line. The body bytes are identical to the HTTP
//!   dialect's — and to the CLI's `--format json` stdout.
//!
//! Parsing is defensive: the request line, header count, and body size
//! are all capped, and any malformation is a structured
//! [`ProtocolError`] the server answers with a 400 — never a panic or a
//! hang.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use firmup_telemetry::json::Json;

/// Hard cap on accepted header count (defensive bound).
const MAX_HEADERS: usize = 64;
/// Hard cap on a single header/request line length.
const MAX_LINE: usize = 8 * 1024;

/// A request the server failed to parse, with the HTTP status the
/// response should carry.
#[derive(Debug)]
pub struct ProtocolError {
    /// Response status (400 malformed, 413 too large, ...).
    pub status: u16,
    /// Human-readable reason, echoed in the error body.
    pub message: String,
}

impl ProtocolError {
    fn bad(message: impl Into<String>) -> ProtocolError {
        ProtocolError {
            status: 400,
            message: message.into(),
        }
    }
}

/// One parsed incoming request (either dialect).
#[derive(Debug)]
pub struct Request {
    /// HTTP method (`POST` for the newline-JSON dialect).
    pub method: String,
    /// Request path (`/scan` for the newline-JSON dialect).
    pub path: String,
    /// Header pairs in arrival order (empty for newline JSON).
    pub headers: Vec<(String, String)>,
    /// Request body bytes.
    pub body: Vec<u8>,
    /// Whether this came in as a bare JSON line (response must be a
    /// bare JSON line too, no status line or headers).
    pub raw_json: bool,
}

/// Case-insensitive header lookup.
pub fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

/// Read one line capped at [`MAX_LINE`] bytes, stripping `\r\n`/`\n`.
fn read_line<R: BufRead>(r: &mut R) -> Result<String, ProtocolError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE {
                    return Err(ProtocolError {
                        status: 431,
                        message: "request line too long".into(),
                    });
                }
            }
            Err(e) => return Err(ProtocolError::bad(format!("read: {e}"))),
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| ProtocolError::bad("request line is not UTF-8"))
}

/// Parse one request off the stream, auto-detecting the dialect.
///
/// # Errors
///
/// A [`ProtocolError`] (status + reason) for anything malformed, an
/// empty connection, or a body over `max_body` bytes.
pub fn read_request<R: BufRead>(r: &mut R, max_body: usize) -> Result<Request, ProtocolError> {
    let first = read_line(r)?;
    let trimmed = first.trim();
    if trimmed.is_empty() {
        return Err(ProtocolError::bad("empty request"));
    }
    if trimmed.starts_with('{') {
        // Newline-JSON dialect: the line *is* the scan request body.
        return Ok(Request {
            method: "POST".into(),
            path: "/scan".into(),
            headers: Vec::new(),
            body: trimmed.as_bytes().to_vec(),
            raw_json: true,
        });
    }
    let mut parts = trimmed.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/1.") => {
            (m.to_string(), p.to_string(), v)
        }
        _ => {
            return Err(ProtocolError::bad(format!(
                "malformed request line: {trimmed}"
            )))
        }
    };
    let _ = version;
    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?;
        if line.trim().is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ProtocolError {
                status: 431,
                message: "too many headers".into(),
            });
        }
        let (k, v) = line
            .split_once(':')
            .ok_or_else(|| ProtocolError::bad(format!("malformed header: {line}")))?;
        headers.push((k.trim().to_string(), v.trim().to_string()));
    }
    let len: usize = header(&headers, "content-length")
        .map(|v| {
            v.parse()
                .map_err(|_| ProtocolError::bad(format!("bad content-length: {v}")))
        })
        .transpose()?
        .unwrap_or(0);
    if len > max_body {
        return Err(ProtocolError {
            status: 413,
            message: format!("body of {len} bytes exceeds the {max_body}-byte cap"),
        });
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)
        .map_err(|e| ProtocolError::bad(format!("short body: {e}")))?;
    Ok(Request {
        method,
        path,
        headers,
        body,
        raw_json: false,
    })
}

/// One parsed scan request: every field optional, all defaults matching
/// the CLI's (`--top-k 0`, every CVE, no explain, no deadline).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScanRequest {
    /// Restrict to one CVE id.
    pub cve: Option<String>,
    /// Prefilter each query to the K most strand-overlapping targets.
    pub top_k: Option<usize>,
    /// Attach explain provenance to each finding.
    pub explain: bool,
    /// Client deadline in milliseconds, counted from request *arrival*
    /// (queue wait included). The server caps it at `--max-request-ms`.
    pub deadline_ms: Option<u64>,
}

/// Parse a `/scan` body (empty = all defaults) plus the
/// `x-firmup-deadline-ms` header (body field wins when both are set).
///
/// # Errors
///
/// A message naming the malformed field; the server answers 400.
pub fn parse_scan_request(req: &Request) -> Result<ScanRequest, String> {
    let mut out = ScanRequest::default();
    if let Some(v) = header(&req.headers, "x-firmup-deadline-ms") {
        out.deadline_ms = Some(
            v.parse::<u64>()
                .map_err(|_| format!("x-firmup-deadline-ms: not a number: {v}"))?,
        );
    }
    let body = std::str::from_utf8(&req.body).map_err(|_| "body is not UTF-8".to_string())?;
    if body.trim().is_empty() {
        return Ok(out);
    }
    let doc = Json::parse(body).map_err(|e| format!("body is not valid JSON: {e}"))?;
    let obj = doc
        .as_obj()
        .ok_or_else(|| "body must be a JSON object".to_string())?;
    for (key, value) in obj {
        match key.as_str() {
            "cve" => {
                out.cve = Some(
                    value
                        .as_str()
                        .ok_or_else(|| "cve: expected a string".to_string())?
                        .to_string(),
                );
            }
            "top_k" => {
                out.top_k = Some(
                    value
                        .as_u64()
                        .ok_or_else(|| "top_k: expected a number".to_string())?
                        as usize,
                );
            }
            "explain" => {
                out.explain = match value {
                    Json::Bool(b) => *b,
                    _ => return Err("explain: expected a boolean".to_string()),
                };
            }
            "deadline_ms" => {
                out.deadline_ms = Some(
                    value
                        .as_u64()
                        .ok_or_else(|| "deadline_ms: expected a number".to_string())?,
                );
            }
            other => return Err(format!("unknown field: {other}")),
        }
    }
    Ok(out)
}

/// Reason phrase for the handful of statuses the daemon emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// Write one response in the request's dialect: a full HTTP/1.1
/// response for HTTP requests, or the bare body line for the
/// newline-JSON dialect (where the body itself carries any error as a
/// JSON object). Always flushes; the connection closes after.
///
/// # Errors
///
/// Propagates I/O failures (a vanished client is the caller's to log,
/// never to panic over).
pub fn write_response<W: Write>(
    w: &mut W,
    raw_json: bool,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> io::Result<()> {
    if raw_json {
        w.write_all(body)?;
        if body.last() != Some(&b'\n') {
            w.write_all(b"\n")?;
        }
        return w.flush();
    }
    write!(w, "HTTP/1.1 {status} {}\r\n", reason(status))?;
    write!(w, "Content-Type: {content_type}\r\n")?;
    write!(w, "Content-Length: {}\r\n", body.len())?;
    for (k, v) in extra_headers {
        write!(w, "{k}: {v}\r\n")?;
    }
    w.write_all(b"Connection: close\r\n\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// A JSON error body `{"error": ..., "detail": ...}` shared by both
/// dialects (the newline dialect has no status line, so the `error`
/// field is how those clients learn what happened).
pub fn error_body(error: &str, detail: &str) -> Vec<u8> {
    Json::Obj(vec![
        ("error".into(), Json::Str(error.to_string())),
        ("detail".into(), Json::Str(detail.to_string())),
    ])
    .render()
    .into_bytes()
}

/// One parsed response from [`http_request`].
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

/// Minimal std-only HTTP/1.1 client for tests, chaos drills, and CI
/// smoke scripts: one request, one response, connection closed.
/// `timeout` bounds connect, read, and write individually, so a wedged
/// server surfaces as a timeout error rather than a hang.
///
/// # Errors
///
/// Any socket failure, timeout, or malformed response.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    timeout: Duration,
) -> io::Result<HttpResponse> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut w = io::BufWriter::new(&stream);
    write!(w, "{method} {path} HTTP/1.1\r\nHost: firmup\r\n")?;
    let body = body.unwrap_or_default();
    write!(w, "Content-Length: {}\r\n\r\n", body.len())?;
    w.write_all(body)?;
    w.flush()?;
    drop(w);
    let mut r = BufReader::new(&stream);
    let mut status_line = String::new();
    r.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed status line: {status_line:?}"),
            )
        })?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        r.read_line(&mut line)?;
        if line.trim().is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(':') {
            headers.push((k.trim().to_string(), v.trim().to_string()));
        }
    }
    let mut body = Vec::new();
    match header(&headers, "content-length").and_then(|v| v.parse::<usize>().ok()) {
        Some(len) => {
            body.resize(len, 0);
            r.read_exact(&mut body)?;
        }
        None => {
            r.read_to_end(&mut body)?;
        }
    }
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, ProtocolError> {
        read_request(&mut BufReader::new(bytes), 1024)
    }

    #[test]
    fn parses_http_post_with_body() {
        let req = parse(
            b"POST /scan HTTP/1.1\r\nContent-Length: 2\r\nX-Firmup-Deadline-Ms: 500\r\n\r\n{}",
        )
        .expect("parse");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/scan");
        assert_eq!(req.body, b"{}");
        assert!(!req.raw_json);
        let scan = parse_scan_request(&req).expect("scan request");
        assert_eq!(scan.deadline_ms, Some(500));
        assert_eq!(scan.cve, None);
    }

    #[test]
    fn parses_newline_json_dialect() {
        let req = parse(b"{\"cve\": \"CVE-2011-0762\", \"deadline_ms\": 9, \"explain\": true}\n")
            .expect("parse");
        assert!(req.raw_json);
        assert_eq!(req.path, "/scan");
        let scan = parse_scan_request(&req).expect("scan request");
        assert_eq!(scan.cve.as_deref(), Some("CVE-2011-0762"));
        assert_eq!(scan.deadline_ms, Some(9));
        assert!(scan.explain);
    }

    #[test]
    fn malformed_requests_are_structured_errors() {
        // Garbage request line.
        assert_eq!(parse(b"nonsense\r\n\r\n").unwrap_err().status, 400);
        // Empty connection.
        assert_eq!(parse(b"").unwrap_err().status, 400);
        // Oversized body.
        assert_eq!(
            parse(b"POST /scan HTTP/1.1\r\nContent-Length: 99999\r\n\r\n")
                .unwrap_err()
                .status,
            413
        );
        // Body shorter than Content-Length claims.
        assert_eq!(
            parse(b"POST /scan HTTP/1.1\r\nContent-Length: 10\r\n\r\nab")
                .unwrap_err()
                .status,
            400
        );
        // Invalid JSON body is a parse error at the scan-request layer.
        let req =
            parse(b"POST /scan HTTP/1.1\r\nContent-Length: 9\r\n\r\n{not json").expect("http ok");
        assert!(parse_scan_request(&req).is_err());
        // Unknown fields are rejected (typo safety).
        let req = parse(b"{\"cvee\": \"x\"}\n").expect("parse");
        assert!(parse_scan_request(&req).is_err());
    }

    #[test]
    fn response_writer_emits_both_dialects() {
        let mut http = Vec::new();
        write_response(
            &mut http,
            false,
            429,
            "application/json",
            &[("Retry-After", "1".to_string())],
            b"{\"error\":\"overloaded\"}",
        )
        .expect("write");
        let text = String::from_utf8(http).expect("utf8");
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.contains("Content-Length: 22\r\n"), "{text}");
        assert!(text.ends_with("{\"error\":\"overloaded\"}"), "{text}");

        let mut raw = Vec::new();
        write_response(
            &mut raw,
            true,
            200,
            "application/json",
            &[],
            b"{\"total\": 0}",
        )
        .expect("write");
        assert_eq!(raw, b"{\"total\": 0}\n");
    }
}
