//! Snapshot lifecycle for the daemon: the `Arc`-held corpus index and
//! its SIGHUP hot-reload path, plus the graceful-drain clock.
//!
//! Reload safety leans on the PR-4 durability layer: `firmup index`
//! always lands `corpus.fui` via temp + fsync + atomic rename (behind
//! an advisory writer lock), so a reader opening the file sees either
//! the old bytes or the new bytes, never a torn mix. The daemon
//! therefore reloads locklessly: [`SnapshotStore::reload`] loads the
//! file into a *new* [`CorpusIndex`], and only on success swaps the
//! `Arc` — in-flight requests keep scanning their own clone of the old
//! `Arc` undisturbed, and a failed reload (corrupt or half-written
//! index) keeps serving the old snapshot while surfacing the error
//! through `/readyz`.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use firmup_core::persist::CorpusIndex;

/// The daemon's resident corpus index: swap-on-reload behind an `Arc`,
/// with the last reload failure retained for readiness reporting.
pub struct SnapshotStore {
    dir: PathBuf,
    current: Mutex<Arc<CorpusIndex>>,
    epoch: AtomicU64,
    reload_error: Mutex<Option<String>>,
}

impl SnapshotStore {
    /// Load the initial snapshot from `dir` (epoch 1).
    ///
    /// # Errors
    ///
    /// The index's structured load error; the daemon refuses to start
    /// without a valid snapshot (readiness would be a lie).
    pub fn open(dir: &Path) -> Result<SnapshotStore, String> {
        let corpus = CorpusIndex::load(dir).map_err(|e| e.to_string())?;
        Ok(SnapshotStore {
            dir: dir.to_path_buf(),
            current: Mutex::new(Arc::new(corpus)),
            epoch: AtomicU64::new(1),
            reload_error: Mutex::new(None),
        })
    }

    /// The current snapshot. Each request clones the `Arc` once and
    /// scans that clone for its whole lifetime — a concurrent reload
    /// can never swap an index out from under a running scan.
    pub fn snapshot(&self) -> Arc<CorpusIndex> {
        Arc::clone(&self.current.lock().expect("snapshot lock"))
    }

    /// How many successful loads have happened (starts at 1).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// The failure message from the most recent reload attempt, if it
    /// failed (cleared by the next success). Surfaces in `/readyz`.
    pub fn reload_error(&self) -> Option<String> {
        self.reload_error.lock().expect("reload error lock").clone()
    }

    /// The segment view of the current snapshot: the live-segment
    /// manifest epoch it was loaded against and how many live segments
    /// were unioned into the base (both 0 for a plain single-file
    /// index). Surfaces in `/readyz` so operators can confirm a SIGHUP
    /// picked up an `index --add` publish.
    pub fn segment_view(&self) -> (u64, usize) {
        let snap = self.snapshot();
        (snap.segment_epoch(), snap.segment_count())
    }

    /// Reload the index from disk (the SIGHUP path). On success the new
    /// snapshot is swapped in and the epoch bumps; on failure the old
    /// snapshot stays current and the error is retained for `/readyz` —
    /// the daemon degrades, it never crashes or serves a torn index.
    ///
    /// # Errors
    ///
    /// The load failure, also retained in [`reload_error`].
    ///
    /// [`reload_error`]: SnapshotStore::reload_error
    pub fn reload(&self) -> Result<(), String> {
        match CorpusIndex::load(&self.dir) {
            Ok(corpus) => {
                *self.current.lock().expect("snapshot lock") = Arc::new(corpus);
                self.epoch.fetch_add(1, Ordering::SeqCst);
                *self.reload_error.lock().expect("reload error lock") = None;
                Ok(())
            }
            Err(e) => {
                let msg = e.to_string();
                *self.reload_error.lock().expect("reload error lock") = Some(msg.clone());
                Err(msg)
            }
        }
    }
}

/// The graceful-drain clock: started when a terminating signal arrives;
/// once `limit` elapses, in-flight scans are budget-cancelled so the
/// daemon's exit latency is bounded even under pathological requests.
pub struct DrainState {
    started: Mutex<Option<Instant>>,
    limit: Duration,
}

impl DrainState {
    /// A drain allowing in-flight work `limit` to finish naturally.
    pub fn new(limit: Duration) -> DrainState {
        DrainState {
            started: Mutex::new(None),
            limit,
        }
    }

    /// Mark the drain as started (idempotent; the first call anchors
    /// the clock).
    pub fn begin(&self) {
        let mut s = self.started.lock().expect("drain lock");
        if s.is_none() {
            *s = Some(Instant::now());
        }
    }

    /// Whether a drain has begun.
    pub fn draining(&self) -> bool {
        self.started.lock().expect("drain lock").is_some()
    }

    /// Whether the drain allowance is spent — the stop signal handed to
    /// in-flight scans (they cancel cooperatively at unit boundaries).
    pub fn expired(&self) -> bool {
        self.started
            .lock()
            .expect("drain lock")
            .is_some_and(|t| t.elapsed() >= self.limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmup_firmware::corpus::{generate, CorpusConfig};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("firmup-lifecycle-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn build_index(dir: &Path, seed: u64) -> usize {
        let corpus = generate(&CorpusConfig {
            seed,
            ..CorpusConfig::tiny()
        });
        let mut reps = Vec::new();
        for (i, img) in corpus.images.iter().enumerate() {
            reps.extend(
                crate::pipeline::lift_image(&format!("img{i}"), &img.blob, 1).expect("lift"),
            );
        }
        let n = reps.len();
        CorpusIndex::build(reps).save(dir).expect("save index");
        n
    }

    #[test]
    fn reload_failure_retains_old_snapshot_and_surfaces_error() {
        let dir = temp_dir("reload");
        let n = build_index(&dir, 0x51ee_d001);
        let store = SnapshotStore::open(&dir).expect("open");
        assert_eq!(store.epoch(), 1);
        assert_eq!(store.snapshot().len(), n);
        assert_eq!(store.reload_error(), None);

        // Corrupt the on-disk index: reload fails, old snapshot serves on.
        let fui = firmup_firmware::index::index_path(&dir);
        let pristine = std::fs::read(&fui).expect("read index");
        std::fs::write(&fui, b"FUIXgarbage").expect("corrupt");
        let held = store.snapshot();
        assert!(store.reload().is_err());
        assert_eq!(store.epoch(), 1, "failed reload must not bump the epoch");
        assert!(store.reload_error().is_some());
        assert_eq!(store.snapshot().len(), n);
        // The Arc a request already holds is untouched by any of this.
        assert_eq!(held.len(), n);

        // Restore and reload: epoch bumps, error clears.
        std::fs::write(&fui, &pristine).expect("restore");
        store.reload().expect("reload restored index");
        assert_eq!(store.epoch(), 2);
        assert_eq!(store.reload_error(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reload_picks_up_newly_published_segments() {
        let dir = temp_dir("segments");
        let n = build_index(&dir, 0x5e6_3a11);
        let store = SnapshotStore::open(&dir).expect("open");
        assert_eq!(store.segment_view(), (0, 0), "single-file index");

        // Publish one extra image as a live segment, the `index --add`
        // way, and confirm only a reload (the SIGHUP path) sees it.
        let extra = generate(&CorpusConfig {
            seed: 0x0123_abcd,
            ..CorpusConfig::tiny()
        });
        let img_path = dir.join("extra.fwim");
        std::fs::write(&img_path, &extra.images[0].blob).expect("write image");
        let report = crate::ingest::add_images(&dir, &[img_path], 1).expect("add");
        assert_eq!(report.added, 1);
        assert_eq!(store.snapshot().len(), n, "no reload yet");

        store.reload().expect("reload");
        assert_eq!(store.segment_view(), (1, 1), "one live segment at epoch 1");
        assert!(store.snapshot().len() > n);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_clock_starts_once_and_expires() {
        let d = DrainState::new(Duration::from_millis(30));
        assert!(!d.draining());
        assert!(!d.expired());
        d.begin();
        assert!(d.draining());
        assert!(!d.expired());
        std::thread::sleep(Duration::from_millis(40));
        assert!(d.expired());
        // begin() is idempotent: the clock does not restart.
        d.begin();
        assert!(d.expired());
    }
}
