//! `firmup serve` — a long-lived scan daemon over a resident corpus
//! index.
//!
//! FirmUp's workload is prepare-once/scan-many: one shared
//! [`CorpusIndex`](firmup_core::persist::CorpusIndex) queried by many
//! concurrent requests. The daemon
//! composes the existing robustness pieces into a serving loop:
//!
//! - **Admission control & load shedding** — a bounded
//!   [`admission::AdmissionQueue`]; when it is full the connection gets
//!   a structured `429 overloaded` response with a retry-after hint,
//!   never a hang or a panic ([`admission`]).
//! - **Per-request budgets** — a client `deadline_ms` (body field or
//!   `x-firmup-deadline-ms` header), capped by `--max-request-ms`, is
//!   anchored at request *arrival* and flows into
//!   [`ScanBudget::deadline`] — queue wait counts against the caller's
//!   deadline, and exhaustion returns partial results with
//!   `over_budget` markers exactly like the CLI.
//! - **Panic isolation** — each connection (and each scan) runs under
//!   `isolate()`: a poisoned request answers 500 and the daemon serves
//!   on.
//! - **Graceful drain** — SIGTERM/SIGINT stop the accept loop, workers
//!   answer everything already admitted (budget-cancelled after
//!   `--drain-ms`), metrics flush, and the process exits 0 (TERM) or
//!   130 (INT).
//! - **Hot reload** — SIGHUP swaps in a freshly loaded snapshot behind
//!   an `Arc`; in-flight requests finish on the old snapshot, and a
//!   failed reload keeps the old snapshot while surfacing the error via
//!   `/readyz` ([`lifecycle`]).
//!
//! **Determinism extends to serving**: a scan request is answered by
//! the same [`crate::pipeline::run_scan`] the CLI uses, so the response
//! body is byte-identical to `firmup scan --index DIR --format json`
//! stdout for the same snapshot — regardless of concurrent load,
//! worker threads, or whether the request was queued.
//!
//! Endpoints: `POST /scan` (JSON body, or a bare JSON line — see
//! [`protocol`]), `GET /healthz`, `GET /readyz`, `GET /metrics`
//! (Prometheus text exposition).

pub mod admission;
pub mod lifecycle;
pub mod protocol;

use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use firmup_core::error::{isolate, FaultCtx};
use firmup_core::search::ScanBudget;
use firmup_firmware::durable::write_atomic;
use firmup_telemetry::json::Json;
use firmup_telemetry::TraceCtx;

use crate::pipeline::{QueryCache, ScanOptions};
use admission::AdmissionQueue;
use lifecycle::{DrainState, SnapshotStore};
use protocol::{read_request, write_response, ProtocolError, Request};

/// Per-connection socket I/O timeout: a wedged or vanished client can
/// hold a worker for at most this long.
const IO_TIMEOUT: Duration = Duration::from_secs(10);
/// Read timeout used on the shed path, which runs on the accept loop —
/// kept short so a slow client cannot stall admission for long.
const SHED_READ_TIMEOUT: Duration = Duration::from_millis(1000);
/// Hard cap on request body size.
const MAX_BODY: usize = 64 * 1024;
/// Poll interval for the nonblocking accept loop (also how quickly a
/// SIGHUP/SIGTERM is noticed when no connections arrive).
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Daemon configuration (all defaults applied by the CLI layer).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Directory holding the persisted corpus index.
    pub index_dir: PathBuf,
    /// Listen address, e.g. `127.0.0.1:7878` (`:0` picks a free port;
    /// pair with `port_file` to discover it).
    pub listen: String,
    /// Request worker threads.
    pub workers: usize,
    /// Bounded admission queue capacity; a request arriving beyond it
    /// is shed with a 429.
    pub queue_cap: usize,
    /// Scan threads per request (0 = all cores). Responses are
    /// byte-identical for every value.
    pub threads: usize,
    /// Server-side cap on a request's deadline in milliseconds
    /// (`None` = uncapped).
    pub max_request_ms: Option<u64>,
    /// How long a drain lets in-flight work finish before
    /// budget-cancelling it.
    pub drain_ms: u64,
    /// Write the bound address here (atomically) once listening.
    pub port_file: Option<PathBuf>,
    /// Write the final metrics snapshot here (atomically) on exit.
    pub metrics_out: Option<PathBuf>,
    /// Record spans and write a Chrome trace-event file here on exit.
    pub trace_out: Option<PathBuf>,
}

/// One admitted connection, queued for a worker.
struct Job {
    stream: TcpStream,
    /// Accept time: queue wait is measured — and the client deadline
    /// anchored — here, so time spent queued counts against both.
    arrival: Instant,
    /// Request id: monotonic admission order; keys the per-request
    /// trace root so concurrent requests trace disjointly.
    id: u64,
}

/// Run the daemon until a terminating signal, then drain and flush.
/// Returns the process exit code (0 for SIGTERM/clean, 130 for SIGINT).
///
/// # Errors
///
/// Startup failures only (bad index, unbindable address, unwritable
/// port file); once serving, faults degrade instead of erroring out.
pub fn run(cfg: &ServeConfig) -> Result<u8, String> {
    firmup_telemetry::enable();
    firmup_telemetry::preregister(
        &[
            "serve.requests",
            "serve.admitted",
            "serve.shed",
            "serve.scans",
            "serve.poisoned",
            "serve.budget_exceeded",
            "serve.bad_requests",
            "serve.reloads",
            "serve.reload_failures",
        ],
        &["serve.queue_depth"],
        &["serve.request_us", "serve.queue_wait_us"],
    );
    if cfg.trace_out.is_some() {
        firmup_telemetry::set_span_trace(true);
    }
    crate::shutdown::install_serve();
    // N in-flight scans × M threads each must not oversubscribe the
    // machine: cap the executor's total workers at the core count.
    // (Determinism is unaffected — results never depend on the width
    // actually granted.)
    firmup_core::executor::set_worker_cap(firmup_core::executor::resolve_threads(0));
    let store = SnapshotStore::open(&cfg.index_dir)?;
    let listener = TcpListener::bind(&cfg.listen).map_err(|e| format!("{}: {e}", cfg.listen))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    if let Some(pf) = &cfg.port_file {
        write_atomic(pf, addr.to_string().as_bytes())
            .map_err(|e| format!("{}: {e}", pf.display()))?;
    }
    eprintln!(
        "serve: listening on {addr} ({} executable(s) from {}, epoch {})",
        store.snapshot().len(),
        cfg.index_dir.display(),
        store.epoch()
    );
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("set_nonblocking: {e}"))?;

    let queue: AdmissionQueue<Job> = AdmissionQueue::new(cfg.queue_cap);
    let drain = DrainState::new(Duration::from_millis(cfg.drain_ms));
    let cache = QueryCache::default();
    let answered = AtomicU64::new(0);

    std::thread::scope(|scope| {
        let (queue, store, drain, cache, answered) = (&queue, &store, &drain, &cache, &answered);
        for w in 0..cfg.workers.max(1) {
            scope.spawn(move || {
                firmup_telemetry::set_worker(Some(w as u32));
                while let Some(job) = queue.pop() {
                    firmup_telemetry::set_gauge("serve.queue_depth", queue.depth() as i64);
                    let id = job.id;
                    // Outer isolation: a panic anywhere in connection
                    // handling (protocol layer included) poisons only
                    // this connection, never the worker or the daemon.
                    let handled = isolate(FaultCtx::image(format!("conn-{id}")), || {
                        handle_job(job, cfg, store, drain, cache, queue);
                        Ok(())
                    });
                    if let Err(e) = handled {
                        firmup_telemetry::incr("serve.poisoned");
                        eprintln!("serve: connection {id} poisoned: {e}");
                    }
                    answered.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // Accept loop (on the calling thread): admission, shedding, and
        // signal polling. Never blocks for long — the listener is
        // nonblocking and the shed path's reads are short-capped.
        let mut next_id = 0u64;
        let mut hup_seen = crate::shutdown::hup_generation();
        loop {
            if crate::shutdown::interrupted() {
                break;
            }
            let hup = crate::shutdown::hup_generation();
            if hup != hup_seen {
                hup_seen = hup;
                firmup_telemetry::incr("serve.reloads");
                match store.reload() {
                    Ok(()) => eprintln!(
                        "serve: index reloaded (epoch {}, {} executable(s))",
                        store.epoch(),
                        store.snapshot().len()
                    ),
                    Err(e) => {
                        firmup_telemetry::incr("serve.reload_failures");
                        eprintln!("serve: reload failed, keeping old snapshot: {e}");
                    }
                }
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    next_id += 1;
                    firmup_telemetry::incr("serve.requests");
                    // Accepted sockets do not inherit the listener's
                    // nonblocking mode on every platform — normalize,
                    // and bound all per-connection I/O.
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
                    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
                    let job = Job {
                        stream,
                        arrival: Instant::now(),
                        id: next_id,
                    };
                    match queue.try_push(job) {
                        Ok(depth) => {
                            firmup_telemetry::incr("serve.admitted");
                            firmup_telemetry::set_gauge("serve.queue_depth", depth as i64);
                        }
                        Err(job) => {
                            firmup_telemetry::incr("serve.shed");
                            shed(job);
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) => {
                    eprintln!("serve: accept: {e}");
                    std::thread::sleep(ACCEPT_POLL);
                }
            }
        }

        // Drain: stop admitting, let workers answer everything already
        // accepted; after the drain allowance, in-flight scans see
        // `stop` and cancel cooperatively at unit boundaries.
        drain.begin();
        queue.close();
        eprintln!(
            "serve: draining ({} queued, {} answered so far)",
            queue.depth(),
            answered.load(Ordering::Relaxed)
        );
    });

    // All workers joined: every admitted request has been answered.
    firmup_telemetry::flush_trace();
    let snap = firmup_telemetry::snapshot();
    eprint!("{}", snap.render_text());
    if let Some(path) = &cfg.metrics_out {
        write_atomic(path, snap.render_json().render().as_bytes())
            .map_err(|e| format!("{}: {e}", path.display()))?;
        eprintln!("serve: metrics written to {}", path.display());
    }
    if let Some(path) = &cfg.trace_out {
        let trace = firmup_telemetry::take_trace();
        let doc = firmup_telemetry::render_chrome(&trace);
        write_atomic(path, doc.render().as_bytes())
            .map_err(|e| format!("{}: {e}", path.display()))?;
        eprintln!(
            "serve: trace written to {} ({} span(s))",
            path.display(),
            trace.spans.len()
        );
    }
    let code = match crate::shutdown::term_signal() {
        Some(2) => crate::shutdown::INTERRUPT_EXIT_CODE,
        _ => 0,
    };
    eprintln!(
        "serve: drained {} request(s); exit {code}",
        answered.load(Ordering::Relaxed)
    );
    Ok(code)
}

/// Answer a shed connection with a structured 429. Runs on the accept
/// loop, so the request read is short-capped; any I/O failure is the
/// client's problem (logged, never fatal).
fn shed(job: Job) {
    let _ = job.stream.set_read_timeout(Some(SHED_READ_TIMEOUT));
    // Read the request first so the response survives the close (an
    // unread request in the socket buffer can turn close into RST) and
    // so newline-JSON clients get a shed line in their own dialect.
    let mut reader = BufReader::new(&job.stream);
    let raw_json = read_request(&mut reader, MAX_BODY)
        .map(|r| r.raw_json)
        .unwrap_or(false);
    let body = Json::Obj(vec![
        ("error".into(), Json::Str("overloaded".into())),
        ("retry_after_ms".into(), Json::Num(1000.0)),
    ])
    .render()
    .into_bytes();
    let mut w = &job.stream;
    if let Err(e) = write_response(
        &mut w,
        raw_json,
        429,
        "application/json",
        &[("Retry-After", "1".to_string())],
        &body,
    ) {
        eprintln!("serve: shed response for request {}: {e}", job.id);
    }
}

/// Read, dispatch, and answer one admitted connection (on a worker).
fn handle_job(
    job: Job,
    cfg: &ServeConfig,
    store: &SnapshotStore,
    drain: &DrainState,
    cache: &QueryCache,
    queue: &AdmissionQueue<Job>,
) {
    let started = Instant::now();
    firmup_telemetry::observe(
        "serve.queue_wait_us",
        job.arrival.elapsed().as_micros() as u64,
    );
    let mut reader = BufReader::new(&job.stream);
    let req = match read_request(&mut reader, MAX_BODY) {
        Ok(req) => req,
        Err(ProtocolError { status, message }) => {
            firmup_telemetry::incr("serve.bad_requests");
            respond(
                &job,
                false,
                status,
                "application/json",
                &[],
                &protocol::error_body("bad_request", &message),
            );
            firmup_telemetry::observe("serve.request_us", started.elapsed().as_micros() as u64);
            return;
        }
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => respond(&job, false, 200, "text/plain", &[], b"ok\n"),
        ("GET", "/readyz") => readyz(&job, cfg, store, queue.depth()),
        ("GET", "/metrics") => {
            let text = firmup_telemetry::render_prometheus(&firmup_telemetry::snapshot());
            respond(
                &job,
                false,
                200,
                "text/plain; version=0.0.4",
                &[],
                text.as_bytes(),
            );
        }
        ("POST", "/scan") => scan(&job, &req, cfg, store, drain, cache),
        (_, "/scan" | "/healthz" | "/readyz" | "/metrics") => {
            firmup_telemetry::incr("serve.bad_requests");
            respond(
                &job,
                req.raw_json,
                405,
                "application/json",
                &[],
                &protocol::error_body("method_not_allowed", &req.method),
            );
        }
        (_, path) => {
            firmup_telemetry::incr("serve.bad_requests");
            respond(
                &job,
                req.raw_json,
                404,
                "application/json",
                &[],
                &protocol::error_body("not_found", path),
            );
        }
    }
    firmup_telemetry::observe("serve.request_us", started.elapsed().as_micros() as u64);
}

/// Readiness: a loaded snapshot, no lingering reload failure, and a
/// queue below the shed threshold. The body reports the inputs so
/// operators (and the chaos drill) can see *why* the daemon is not
/// ready.
fn readyz(job: &Job, cfg: &ServeConfig, store: &SnapshotStore, depth: usize) {
    let reload_error = store.reload_error();
    // Depth is sampled racily; readiness is advisory by nature.
    let ready = reload_error.is_none() && depth < cfg.queue_cap;
    let (segment_epoch, segments) = store.segment_view();
    let body = Json::Obj(vec![
        ("ready".into(), Json::Bool(ready)),
        ("epoch".into(), Json::Num(store.epoch() as f64)),
        (
            "executables".into(),
            Json::Num(store.snapshot().len() as f64),
        ),
        ("segment_epoch".into(), Json::Num(segment_epoch as f64)),
        ("segments".into(), Json::Num(segments as f64)),
        ("queue_depth".into(), Json::Num(depth as f64)),
        ("queue_capacity".into(), Json::Num(cfg.queue_cap as f64)),
        (
            "reload_error".into(),
            match reload_error {
                Some(e) => Json::Str(e),
                None => Json::Null,
            },
        ),
    ])
    .render()
    .into_bytes();
    let status = if ready { 200 } else { 503 };
    respond(job, false, status, "application/json", &[], &body);
}

/// Execute one scan request end to end: budget derivation, snapshot
/// pin, isolated scan, canonical findings document.
fn scan(
    job: &Job,
    req: &Request,
    cfg: &ServeConfig,
    store: &SnapshotStore,
    drain: &DrainState,
    cache: &QueryCache,
) {
    firmup_telemetry::incr("serve.scans");
    let scan_req = match protocol::parse_scan_request(req) {
        Ok(r) => r,
        Err(msg) => {
            firmup_telemetry::incr("serve.bad_requests");
            respond(
                job,
                req.raw_json,
                400,
                "application/json",
                &[],
                &protocol::error_body("bad_request", &msg),
            );
            return;
        }
    };
    // Per-request trace root keyed by request id: spans from concurrent
    // requests reconstruct into disjoint trees (see `--trace-out`).
    let _request_span = TraceCtx::root_keyed("request", job.id)
        .with_attr("id", job.id)
        .enter();
    // Pin the snapshot for the whole request: a SIGHUP reload swaps the
    // store's Arc but never this one.
    let snapshot = store.snapshot();
    // Test hook: hold the request here (snapshot already pinned) so
    // tests can deterministically overlap reloads and queue pressure
    // with an in-flight scan.
    if let Some(ms) = std::env::var("FIRMUP_TEST_HANDLE_DELAY_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        std::thread::sleep(Duration::from_millis(ms));
    }
    // Client deadline capped by the server, anchored at *arrival*:
    // queue wait already counts against it.
    let effective_ms = match (scan_req.deadline_ms, cfg.max_request_ms) {
        (Some(c), Some(m)) => Some(c.min(m)),
        (c, m) => c.or(m),
    };
    let budget = ScanBudget {
        deadline: effective_ms.map(|ms| job.arrival + Duration::from_millis(ms)),
        ..ScanBudget::default()
    };
    let opts = ScanOptions {
        cve: scan_req.cve.clone(),
        top_k: scan_req.top_k.unwrap_or(0),
        threads: cfg.threads,
        explain: scan_req.explain,
    };
    let id = job.id;
    let scanned = isolate(FaultCtx::image(format!("request-{id}")), || {
        crate::pipeline::run_scan(&snapshot, &opts, &budget, cache, &|| drain.expired())
    });
    match scanned {
        Ok(output) => {
            for d in &output.diagnostics {
                eprintln!("{d}");
            }
            if output.over_budget > 0 {
                firmup_telemetry::incr("serve.budget_exceeded");
            }
            // The canonical findings document — byte-identical to the
            // CLI's `--format json` stdout for the same snapshot.
            let cancelled = drain.expired();
            let mut body = output.render_json(cancelled).render().into_bytes();
            body.push(b'\n');
            respond(job, req.raw_json, 200, "application/json", &[], &body);
        }
        Err(e) => {
            firmup_telemetry::incr("serve.poisoned");
            eprintln!("serve: request {id} poisoned: {e}");
            respond(
                job,
                req.raw_json,
                500,
                "application/json",
                &[],
                &protocol::error_body("poisoned", &e.to_string()),
            );
        }
    }
}

/// Write a response, logging (never panicking on) client-side I/O
/// failures — a vanished client must not take a worker down.
fn respond(
    job: &Job,
    raw_json: bool,
    status: u16,
    content_type: &str,
    extra: &[(&str, String)],
    body: &[u8],
) {
    let mut w = &job.stream;
    if let Err(e) = write_response(&mut w, raw_json, status, content_type, extra, body) {
        eprintln!("serve: response for request {}: {e}", job.id);
    }
}

// Re-exported for integration tests and the chaos serve stage.
#[doc(hidden)]
pub use protocol::{http_request, HttpResponse};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_deadline_combines_client_and_cap() {
        let combine = |c: Option<u64>, m: Option<u64>| match (c, m) {
            (Some(c), Some(m)) => Some(c.min(m)),
            (c, m) => c.or(m),
        };
        assert_eq!(combine(None, None), None);
        assert_eq!(combine(Some(5), None), Some(5));
        assert_eq!(combine(None, Some(9)), Some(9));
        assert_eq!(combine(Some(5), Some(9)), Some(5));
        assert_eq!(combine(Some(9), Some(5)), Some(5));
    }

    #[test]
    fn serve_config_is_cloneable_and_debuggable() {
        let cfg = ServeConfig {
            index_dir: PathBuf::from("/tmp/x"),
            listen: "127.0.0.1:0".into(),
            workers: 2,
            queue_cap: 4,
            threads: 1,
            max_request_ms: Some(100),
            drain_ms: 500,
            port_file: None,
            metrics_out: None,
            trace_out: None,
        };
        let copy = cfg.clone();
        assert_eq!(format!("{cfg:?}"), format!("{copy:?}"));
    }
}
