//! The chaos harness: drive every corruption operator through every
//! pipeline stage and prove nothing panics.
//!
//! `firmup chaos` (and the `tests/chaos.rs` suite) generate a small
//! seeded corpus, damage each image with every [`CorruptOp`], then push
//! the damaged blob through unpack → ELF parse → lift/index → search,
//! each stage guarded by [`firmup_core::error::isolate`]. Each trial
//! additionally damages a pristine persisted corpus index
//! ([`firmup_core::persist::CorpusIndex`]) with the same operator and
//! pushes it through the index loader, which must answer with a
//! structured [`firmup_firmware::index::IndexError`]. Every trial must
//! end in a structured error, a degraded-but-completed scan, or a clean
//! completion; a contained panic is recorded and fails the run — the
//! guard exists so the harness can *report* the bug instead of dying
//! from it.

use std::fmt;

use firmup_core::canon::CanonConfig;
use firmup_core::error::{isolate, FaultCtx, FirmUpError};
use firmup_core::persist::CorpusIndex;
use firmup_core::search::{search_corpus_robust, ScanBudget, SearchConfig};
use firmup_core::sim::{index_elf, ExecutableRep};
use firmup_firmware::corpus::{generate, CorpusConfig};
use firmup_firmware::faultinject::{corrupt, CorruptOp};
use firmup_firmware::image::unpack;
use firmup_obj::Elf;

/// Chaos run parameters.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Master seed: drives both corpus generation and every corruption.
    pub seed: u64,
    /// Devices in the generated victim corpus.
    pub devices: usize,
    /// Corruption variants per (image, operator) pair.
    pub variants: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xc4a0_5000,
            devices: 2,
            variants: 4,
        }
    }
}

/// Tally for one corruption operator across all its trials.
#[derive(Debug, Clone)]
pub struct OpReport {
    /// The operator.
    pub op: CorruptOp,
    /// Corrupted blobs pushed through the pipeline.
    pub trials: u64,
    /// Trials rejected at unpack with a structured error.
    pub unpack_errors: u64,
    /// Parts rejected at ELF parse / lift with a structured error.
    pub stage_errors: u64,
    /// Trials that unpacked but yielded nothing searchable (degraded).
    pub degraded: u64,
    /// Trials that ran a search to completion.
    pub searched: u64,
    /// Search targets degraded by the chaos budget.
    pub budget_exceeded: u64,
    /// Damaged index blobs rejected by the loader with a structured
    /// [`firmup_firmware::index::IndexError`].
    pub index_errors: u64,
    /// Damaged index blobs the loader still accepted (damage landed in
    /// slack the format tolerates — e.g. a no-op truncation).
    pub index_ok: u64,
    /// Panics contained by a stage guard — any nonzero value is a bug.
    pub panics: u64,
}

impl OpReport {
    fn new(op: CorruptOp) -> OpReport {
        OpReport {
            op,
            trials: 0,
            unpack_errors: 0,
            stage_errors: 0,
            degraded: 0,
            searched: 0,
            budget_exceeded: 0,
            index_errors: 0,
            index_ok: 0,
            panics: 0,
        }
    }
}

/// One targeted FUIX record-corruption trial. Unlike the blind
/// [`CorruptOp`] stage, these rebuild the container around a damaged
/// payload so every table offset and CRC-32 is *valid* — the damage is
/// visible only to the typed codec (`intern` / `postings2` varint-delta
/// decoders), which must answer with a structured error on both the
/// eager and the lazy read path.
#[derive(Debug, Clone)]
pub struct RecordTrial {
    /// Record attacked (`intern` or `postings2`).
    pub record: &'static str,
    /// Mutation applied (`truncated`, `bitflip`, `zero-delta`, ...).
    pub mutation: &'static str,
    /// Whether the mutation is guaranteed malformed (a bitflip may land
    /// on bytes that still decode; crafted bad deltas may not).
    pub must_reject: bool,
    /// Eager loader answered with a structured error.
    pub eager_rejected: bool,
    /// Eager loader accepted the blob.
    pub eager_ok: bool,
    /// Lazy loader (driven to full decode) answered with a structured
    /// error.
    pub lazy_rejected: bool,
    /// Lazy loader accepted the blob.
    pub lazy_ok: bool,
    /// Panics contained by the stage guard — any nonzero value is a bug.
    pub panics: u64,
}

impl RecordTrial {
    /// The invariant: no panic, no eager/lazy divergence, and a
    /// guaranteed-malformed payload rejected on both paths.
    pub fn passed(&self) -> bool {
        self.panics == 0
            && !(self.eager_rejected && self.lazy_ok)
            && (!self.must_reject || (self.eager_rejected && self.lazy_rejected))
    }
}

/// The full chaos matrix result.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Seed the run used (replays the exact damage).
    pub seed: u64,
    /// One tally per operator, in [`CorruptOp::all`] order.
    pub per_op: Vec<OpReport>,
    /// Targeted typed-codec trials against the `intern` / `postings2`
    /// records (valid container CRCs, malformed payloads).
    pub record_trials: Vec<RecordTrial>,
}

impl ChaosReport {
    /// Total trials across operators.
    pub fn trials(&self) -> u64 {
        self.per_op.iter().map(|r| r.trials).sum()
    }

    /// Total contained panics — must be zero for a passing run.
    pub fn panics(&self) -> u64 {
        self.per_op.iter().map(|r| r.panics).sum::<u64>()
            + self.record_trials.iter().map(|t| t.panics).sum::<u64>()
    }

    /// Whether every trial ended in a structured error or a completed
    /// (possibly degraded) scan.
    pub fn passed(&self) -> bool {
        self.panics() == 0 && self.record_trials.iter().all(RecordTrial::passed)
    }
}

impl fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chaos matrix (seed {:#x}, {} trial(s)):",
            self.seed,
            self.trials()
        )?;
        writeln!(
            f,
            "  {:<22} {:>7} {:>8} {:>7} {:>9} {:>9} {:>7} {:>7} {:>7} {:>7}",
            "operator",
            "trials",
            "unpack-e",
            "stage-e",
            "degraded",
            "searched",
            "budget",
            "idx-err",
            "idx-ok",
            "PANICS"
        )?;
        for r in &self.per_op {
            writeln!(
                f,
                "  {:<22} {:>7} {:>8} {:>7} {:>9} {:>9} {:>7} {:>7} {:>7} {:>7}",
                r.op.name(),
                r.trials,
                r.unpack_errors,
                r.stage_errors,
                r.degraded,
                r.searched,
                r.budget_exceeded,
                r.index_errors,
                r.index_ok,
                r.panics
            )?;
        }
        if !self.record_trials.is_empty() {
            writeln!(f, "typed-record corruption (valid CRCs):")?;
            writeln!(
                f,
                "  {:<11} {:<15} {:>7} {:>7} {:>7} {:>7}",
                "record", "mutation", "eager", "lazy", "PANICS", "verdict"
            )?;
            for t in &self.record_trials {
                let path = |rejected: bool, ok: bool| {
                    if rejected {
                        "reject"
                    } else if ok {
                        "ok"
                    } else {
                        "PANIC"
                    }
                };
                writeln!(
                    f,
                    "  {:<11} {:<15} {:>7} {:>7} {:>7} {:>7}",
                    t.record,
                    t.mutation,
                    path(t.eager_rejected, t.eager_ok),
                    path(t.lazy_rejected, t.lazy_ok),
                    t.panics,
                    if t.passed() { "pass" } else { "FAIL" }
                )?;
            }
        }
        writeln!(
            f,
            "result: {}",
            if self.passed() {
                "PASS — zero panics escaped any stage"
            } else {
                "FAIL — a pipeline stage panicked"
            }
        )
    }
}

/// Run the full operator × stage matrix.
pub fn run(config: &ChaosConfig) -> ChaosReport {
    let corpus = generate(&CorpusConfig {
        seed: config.seed,
        devices: config.devices.max(1),
        ..CorpusConfig::tiny()
    });
    let canon = CanonConfig::default();
    // One pristine persisted index per image: the index-corruption stage
    // damages *these* blobs, exercising the FUIX reader exactly the way
    // the image operators exercise the FWIM unpacker.
    let index_blobs: Vec<Vec<u8>> = corpus
        .images
        .iter()
        .map(|img| {
            let reps = unpack(&img.blob).map_or_else(
                |_| Vec::new(),
                |u| {
                    u.parts
                        .iter()
                        .filter_map(|part| {
                            let elf = Elf::parse(&part.data).ok()?;
                            index_elf(&elf, &part.name, &canon).ok()
                        })
                        .collect()
                },
            );
            CorpusIndex::build(reps).to_bytes()
        })
        .collect();
    let mut per_op = Vec::new();
    for op in CorruptOp::all() {
        let mut tally = OpReport::new(op);
        for (i, img) in corpus.images.iter().enumerate() {
            for variant in 0..config.variants.max(1) {
                // Distinct, reproducible damage per (image, op, variant).
                let seed = config
                    .seed
                    .wrapping_mul(0x100_0193)
                    .wrapping_add((i as u64) << 8)
                    .wrapping_add(variant);
                let damaged = corrupt(&img.blob, op, seed);
                run_trial(
                    &damaged,
                    &format!("chaos[{}#{i}v{variant}]", op.name()),
                    &canon,
                    &mut tally,
                );
                let damaged_index = corrupt(&index_blobs[i], op, seed.wrapping_mul(31) ^ 0x1d);
                run_index_trial(
                    &damaged_index,
                    &format!("chaos-index[{}#{i}v{variant}]", op.name()),
                    &mut tally,
                );
            }
        }
        per_op.push(tally);
    }
    let record_trials = index_blobs
        .first()
        .map(|blob| run_record_trials(blob))
        .unwrap_or_default();
    ChaosReport {
        seed: config.seed,
        per_op,
        record_trials,
    }
}

/// Targeted corruption of the typed `intern` / `postings2` records: the
/// container is rebuilt around each damaged payload with
/// [`write_container_v2`](firmup_firmware::index::write_container_v2),
/// so the table and every CRC-32 verify clean — only the varint-delta
/// codec's own trust boundary (strict monotonicity, bounded counts) can
/// catch the damage. Each blob goes through both read paths exactly
/// like [`run_index_trial`].
fn run_record_trials(pristine: &[u8]) -> Vec<RecordTrial> {
    use firmup_firmware::index::{push_varint, read_container, write_container_v2};
    let varints = |vals: &[u64]| {
        let mut out = Vec::new();
        for &v in vals {
            push_varint(&mut out, v);
        }
        out
    };
    let mut trials = Vec::new();
    let Ok(records) = read_container(pristine) else {
        return trials;
    };
    for record in ["intern", "postings2"] {
        let Some(orig) = records.iter().find(|r| r.name == record) else {
            continue;
        };
        // (mutation, guaranteed-malformed, replacement payload).
        let mut cases: Vec<(&'static str, bool, Vec<u8>)> = vec![
            // Cut mid-stream: the leading count promises entries the
            // bytes can no longer deliver.
            (
                "truncated",
                !orig.payload.is_empty(),
                orig.payload[..orig.payload.len() / 2].to_vec(),
            ),
            // Flip bits mid-payload: may or may not still decode, but
            // must never panic and the two paths must agree.
            ("bitflip", false, {
                let mut p = orig.payload.clone();
                if !p.is_empty() {
                    let mid = p.len() / 2;
                    p[mid] ^= 0x55;
                }
                p
            }),
            // A count far beyond what any payload could back.
            ("count-overrun", true, varints(&[u64::MAX])),
        ];
        if record == "intern" {
            // count=2, first=5, then a zero delta: not strictly increasing.
            cases.push(("zero-delta", true, varints(&[2, 5, 0])));
            // first=MAX, then any positive delta overflows u64.
            cases.push(("delta-overflow", true, varints(&[2, u64::MAX, u64::MAX])));
        } else {
            // 1 key: key=5, list len 2, site=7, then a zero site delta.
            cases.push(("zero-delta", true, varints(&[1, 5, 2, 7, 0])));
            // 2 keys: key=5 (1 site), then a zero key delta.
            cases.push(("zero-key-delta", true, varints(&[2, 5, 1, 9, 0])));
            // 2 keys: key=5 (1 site), then a key delta that overflows.
            cases.push(("delta-overflow", true, varints(&[2, 5, 1, 9, u64::MAX])));
        }
        for (mutation, must_reject, payload) in cases {
            let mut damaged = records.clone();
            damaged
                .iter_mut()
                .find(|r| r.name == record)
                .expect("record present")
                .payload = payload;
            let blob = write_container_v2(&damaged);
            let tag = format!("chaos-record[{record}:{mutation}]");
            let eager = isolate(FaultCtx::image(&tag), || {
                CorpusIndex::from_bytes(&blob).map_err(FirmUpError::from)
            });
            let lazy = isolate(FaultCtx::image(&tag), || {
                let index =
                    CorpusIndex::from_bytes_lazy(blob.clone()).map_err(FirmUpError::from)?;
                index.ensure_all().map_err(FirmUpError::from)?;
                Ok(index)
            });
            let mut panics = 0u64;
            let mut verdict = |r: &Result<CorpusIndex, FirmUpError>| match r {
                Ok(_) => (false, true),
                Err(e) if e.is_poisoned() => {
                    panics += 1;
                    (false, false)
                }
                Err(_) => (true, false),
            };
            let (eager_rejected, eager_ok) = verdict(&eager);
            let (lazy_rejected, lazy_ok) = verdict(&lazy);
            trials.push(RecordTrial {
                record,
                mutation,
                must_reject,
                eager_rejected,
                eager_ok,
                lazy_rejected,
                lazy_ok,
                panics,
            });
        }
    }
    trials
}

/// Push one damaged blob through unpack → parse → lift/index → search.
fn run_trial(blob: &[u8], image_id: &str, canon: &CanonConfig, tally: &mut OpReport) {
    tally.trials += 1;
    let ctx = FaultCtx::image(image_id);

    // Stage 1: unpack.
    let unpacked = match isolate(ctx.clone(), || unpack(blob).map_err(FirmUpError::from)) {
        Ok(u) => u,
        Err(e) if e.is_poisoned() => {
            tally.panics += 1;
            return;
        }
        Err(_) => {
            tally.unpack_errors += 1;
            return;
        }
    };

    // Stage 2+3: ELF parse and lift/index, per part.
    let mut reps: Vec<ExecutableRep> = Vec::new();
    for part in &unpacked.parts {
        let part_ctx = ctx.clone().with_package(&part.name);
        let indexed = isolate(part_ctx, || {
            let elf = Elf::parse(&part.data)?;
            index_elf(&elf, &part.name, canon).map_err(FirmUpError::from)
        });
        match indexed {
            Ok(rep) => reps.push(rep),
            Err(e) if e.is_poisoned() => tally.panics += 1,
            Err(_) => tally.stage_errors += 1,
        }
    }

    // Stage 4: search. A synthetic query (a clone of the first indexed
    // procedure) keeps the chaos loop fast — the point is exercising
    // the game on damaged-but-parseable procedures, not CVE accuracy.
    let Some(query) = reps
        .iter()
        .find(|r| !r.procedures.is_empty())
        .map(|r| ExecutableRep {
            id: "chaos-query".into(),
            arch: r.arch,
            procedures: vec![r.procedures[0].clone()],
        })
    else {
        tally.degraded += 1;
        return;
    };
    let config = SearchConfig {
        threads: 1,
        ..SearchConfig::default()
    };
    let budget = ScanBudget {
        per_game: Some(std::time::Duration::from_millis(250)),
        per_target: Some(std::time::Duration::from_secs(2)),
        ..ScanBudget::default()
    };
    let report = search_corpus_robust(&query, 0, &reps, &config, &budget);
    tally.panics += report.poisoned() as u64;
    tally.budget_exceeded += report.budget_exceeded() as u64;
    tally.searched += 1;
}

/// Push one damaged index blob through both persisted-index read
/// paths: the eager loader and the lazy loader driven to full decode
/// (`ensure_all`, where deferred payload CRCs are finally checked).
/// Any outcome but a structured error or a successful decode (when the
/// damage happened to land in tolerated slack) is a contained panic —
/// and a bug. The two paths must also *agree*: damage the eager loader
/// rejects must never survive the lazy path fully decoded.
fn run_index_trial(blob: &[u8], index_id: &str, tally: &mut OpReport) {
    let eager = isolate(FaultCtx::image(index_id), || {
        CorpusIndex::from_bytes(blob).map_err(FirmUpError::from)
    });
    let lazy = isolate(FaultCtx::image(index_id), || {
        let index = CorpusIndex::from_bytes_lazy(blob.to_vec()).map_err(FirmUpError::from)?;
        index.ensure_all().map_err(FirmUpError::from)?;
        Ok(index)
    });
    for loaded in [&eager, &lazy] {
        match loaded {
            Ok(_) => tally.index_ok += 1,
            Err(e) if e.is_poisoned() => tally.panics += 1,
            Err(_) => tally.index_errors += 1,
        }
    }
    // Divergence is a lazy-path hole: count it like a panic so the
    // matrix fails loudly instead of averaging it away.
    if eager.is_err() && lazy.is_ok() {
        eprintln!("chaos: {index_id}: eager loader rejected damage the lazy path accepted");
        tally.panics += 1;
    }
}

// ---- crash-consistency matrix ---------------------------------------------

/// Crash-matrix run parameters (`firmup chaos --crash-matrix`).
#[derive(Debug, Clone)]
pub struct CrashMatrixConfig {
    /// Corpus seed (also names the scratch directory).
    pub seed: u64,
    /// Devices in the generated victim corpus.
    pub devices: usize,
    /// The `firmup` binary to drive as crashing/resuming children.
    pub firmup_bin: std::path::PathBuf,
}

/// One crash-point trial's measurements.
#[derive(Debug, Clone)]
pub struct CrashTrial {
    /// The `FIRMUP_CRASH_POINT` spec injected into the child build.
    pub spec: String,
    /// The injected child did abort (a trial where it survives measures
    /// nothing).
    pub crashed: bool,
    /// `firmup index --resume` completed afterwards.
    pub resume_ok: bool,
    /// Segments the resume reused from the journal.
    pub reused: u64,
    /// Segments the resume had to (re-)lift and commit.
    pub committed: u64,
    /// Expected reused count for this crash point.
    pub expected_reused: u64,
    /// `firmup fsck` reported the resumed directory clean.
    pub fsck_clean: bool,
    /// Warm-scan findings byte-identical to the uninterrupted baseline.
    pub findings_match: bool,
    /// `corpus.fui` byte-identical to the uninterrupted baseline.
    pub fui_identical: bool,
}

impl CrashTrial {
    /// The full invariant: crash observed, resume clean, work reuse
    /// exact, fsck clean, findings and index bytes identical.
    pub fn passed(&self) -> bool {
        self.crashed
            && self.resume_ok
            && self.reused == self.expected_reused
            && self.fsck_clean
            && self.findings_match
            && self.fui_identical
    }
}

/// One trial of the incremental-ingestion state machines: kill
/// `firmup index --add` or `firmup compact` at a crash point (or tear
/// the manifest behind its back), recover with the documented command,
/// and check the recovered directory against the full-build baseline.
#[derive(Debug, Clone)]
pub struct IngestTrial {
    /// Which state machine was attacked: `add` or `compact`.
    pub stage: &'static str,
    /// The injected `FIRMUP_CRASH_POINT` spec (or the fault name).
    pub spec: String,
    /// The injected child did abort (or the fault was applied).
    pub crashed: bool,
    /// The recovery command completed.
    pub rerun_ok: bool,
    /// Segments the recovery adopted from the journal without
    /// re-lifting (`add` trials only).
    pub adopted: u64,
    /// Expected adoption count, when the trial pins one.
    pub expected_adopted: Option<u64>,
    /// `firmup fsck` exits 0 on the recovered directory.
    pub fsck_clean: bool,
    /// Scan findings byte-identical to the full-build baseline.
    pub findings_match: bool,
    /// Recovered durable state matches the no-crash reference: the
    /// manifest bytes for `add`, the full-build `corpus.fui` bytes plus
    /// an empty manifest for `compact`.
    pub state_match: bool,
}

impl IngestTrial {
    /// The full invariant for one ingest crash trial.
    pub fn passed(&self) -> bool {
        self.crashed
            && self.rerun_ok
            && self
                .expected_adopted
                .is_none_or(|want| self.adopted == want)
            && self.fsck_clean
            && self.findings_match
            && self.state_match
    }
}

/// The crash-consistency matrix result.
#[derive(Debug)]
pub struct CrashMatrixReport {
    /// Seed the run used.
    pub seed: u64,
    /// Images in the victim corpus (= segments per full build).
    pub images: usize,
    /// Findings the uninterrupted baseline produced.
    pub baseline_findings: usize,
    /// One row per injected crash point.
    pub trials: Vec<CrashTrial>,
    /// One row per `index --add` / `compact` crash trial.
    pub ingest_trials: Vec<IngestTrial>,
}

impl CrashMatrixReport {
    /// Whether every trial upheld the invariant.
    pub fn passed(&self) -> bool {
        !self.trials.is_empty()
            && self.trials.iter().all(CrashTrial::passed)
            && !self.ingest_trials.is_empty()
            && self.ingest_trials.iter().all(IngestTrial::passed)
    }
}

impl fmt::Display for CrashMatrixReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "crash-consistency matrix (seed {:#x}, {} image(s), {} baseline finding(s)):",
            self.seed, self.images, self.baseline_findings
        )?;
        writeln!(
            f,
            "  {:<32} {:>7} {:>7} {:>9} {:>9} {:>5} {:>9} {:>5} {:>7}",
            "crash point",
            "crashed",
            "resumed",
            "reused",
            "expected",
            "fsck",
            "findings",
            "fui",
            "verdict"
        )?;
        let yn = |b: bool| if b { "yes" } else { "NO" };
        for t in &self.trials {
            writeln!(
                f,
                "  {:<32} {:>7} {:>7} {:>9} {:>9} {:>5} {:>9} {:>5} {:>7}",
                t.spec,
                yn(t.crashed),
                yn(t.resume_ok),
                format!("{}+{}", t.reused, t.committed),
                t.expected_reused,
                yn(t.fsck_clean),
                yn(t.findings_match),
                yn(t.fui_identical),
                if t.passed() { "pass" } else { "FAIL" }
            )?;
        }
        writeln!(f, "ingest state machines (index --add / compact):")?;
        writeln!(
            f,
            "  {:<10} {:<34} {:>7} {:>7} {:>9} {:>5} {:>9} {:>6} {:>7}",
            "stage",
            "crash point",
            "crashed",
            "rerun",
            "adopted",
            "fsck",
            "findings",
            "state",
            "verdict"
        )?;
        for t in &self.ingest_trials {
            writeln!(
                f,
                "  {:<10} {:<34} {:>7} {:>7} {:>9} {:>5} {:>9} {:>6} {:>7}",
                t.stage,
                t.spec,
                yn(t.crashed),
                yn(t.rerun_ok),
                match t.expected_adopted {
                    Some(want) => format!("{}/{want}", t.adopted),
                    None => "-".to_string(),
                },
                yn(t.fsck_clean),
                yn(t.findings_match),
                yn(t.state_match),
                if t.passed() { "pass" } else { "FAIL" }
            )?;
        }
        writeln!(
            f,
            "result: {}",
            if self.passed() {
                "PASS — every crash point recovered to byte-identical findings"
            } else {
                "FAIL — a crash point violated the recovery invariant"
            }
        )
    }
}

/// Findings lines of a scan's stdout (the CVE hits), verbatim.
fn findings_of(stdout: &[u8]) -> Vec<String> {
    String::from_utf8_lossy(stdout)
        .lines()
        .filter(|l| l.contains("suspected at"))
        .map(str::to_string)
        .collect()
}

/// Read `index.segments_reused` / `index.segments_committed` out of a
/// `--metrics-out` JSON snapshot.
fn read_segment_counters(path: &std::path::Path) -> Result<(u64, u64), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = firmup_telemetry::json::Json::parse(&text)
        .map_err(|e| format!("{}: unparseable metrics JSON: {e}", path.display()))?;
    let counters = doc
        .get("counters")
        .ok_or_else(|| format!("{}: no counters object", path.display()))?;
    let get = |name: &str| {
        counters
            .get(name)
            .and_then(firmup_telemetry::json::Json::as_u64)
            .unwrap_or(0)
    };
    Ok((
        get("index.segments_reused"),
        get("index.segments_committed"),
    ))
}

/// Run the crash-consistency matrix: for each deterministic crash point
/// ([`firmup_firmware::durable`]'s `CP_*` set), kill a child
/// `firmup index` at that exact point, then assert the invariant —
/// *the directory loads clean, `--resume` re-lifts only what was never
/// committed, `fsck` is clean, and the warm-scan findings and
/// `corpus.fui` bytes are identical to an uninterrupted run*.
///
/// # Errors
///
/// Setup failures (scratch dir, corpus generation, a baseline build
/// that won't run at all); trial *failures* are not errors — they land
/// in the report as failed rows.
pub fn run_crash_matrix(config: &CrashMatrixConfig) -> Result<CrashMatrixReport, String> {
    use std::process::Command;
    let work = std::env::temp_dir().join(format!(
        "firmup-crashmatrix-{:x}-{}",
        config.seed,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work).map_err(|e| format!("{}: {e}", work.display()))?;

    // Victim corpus, written as .fwim files for the child processes.
    let corpus = generate(&CorpusConfig {
        seed: config.seed,
        devices: config.devices.max(2),
        ..CorpusConfig::tiny()
    });
    let mut images: Vec<std::path::PathBuf> = Vec::new();
    for (i, img) in corpus.images.iter().enumerate() {
        let path = work.join(format!("{i:03}.fwim"));
        std::fs::write(&path, &img.blob).map_err(|e| format!("{}: {e}", path.display()))?;
        images.push(path);
    }
    let n = images.len();

    let index_args = |dir: &std::path::Path, extra: &[&str]| -> Vec<String> {
        let mut v = vec!["index".to_string()];
        v.extend(images.iter().map(|p| p.display().to_string()));
        v.extend(["--out".to_string(), dir.display().to_string()]);
        v.extend(["--threads".to_string(), "1".to_string()]);
        v.extend(extra.iter().map(|s| (*s).to_string()));
        v
    };
    let run_child =
        |args: &[String], crash: Option<&str>| -> Result<std::process::Output, String> {
            let mut cmd = Command::new(&config.firmup_bin);
            cmd.args(args);
            match crash {
                Some(spec) => cmd.env("FIRMUP_CRASH_POINT", spec),
                None => cmd.env_remove("FIRMUP_CRASH_POINT"),
            };
            cmd.output().map_err(|e| format!("spawn firmup: {e}"))
        };

    // Uninterrupted baseline: build, scan, remember bytes + findings.
    let base = work.join("baseline");
    let out = run_child(&index_args(&base, &[]), None)?;
    if !out.status.success() {
        return Err(format!(
            "baseline index failed: {}",
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    let base_fui = std::fs::read(firmup_firmware::index::index_path(&base))
        .map_err(|e| format!("baseline corpus.fui: {e}"))?;
    let scan_args = |dir: &std::path::Path| {
        vec![
            "scan".to_string(),
            "--index".to_string(),
            dir.display().to_string(),
        ]
    };
    let out = run_child(&scan_args(&base), None)?;
    if !out.status.success() {
        return Err(format!(
            "baseline scan failed: {}",
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    let base_findings = findings_of(&out.stdout);

    // The matrix: each crash point, including a kill after every k-th
    // segment, plus the final corpus.fui rename (the (n+1)-th atomic
    // write of the build — n segments come first).
    let mut specs: Vec<(String, u64)> = vec![
        ("durable.after_temp_write:1".to_string(), 0),
        ("durable.before_rename:1".to_string(), 0),
        ("journal.mid_append:1".to_string(), 0),
    ];
    for k in 1..=n as u64 {
        specs.push((format!("index.between_segments:{k}"), k));
    }
    specs.push((format!("durable.before_rename:{}", n + 1), n as u64));

    let mut trials = Vec::new();
    for (spec, expected_reused) in specs {
        let dir = work.join(format!("trial-{}", spec.replace([':', '.'], "_")));
        let crashed = !run_child(&index_args(&dir, &[]), Some(&spec))?
            .status
            .success();
        let metrics = dir.join("resume-metrics.json");
        let resume = run_child(
            &index_args(
                &dir,
                &["--resume", "--metrics-out", metrics.to_str().unwrap_or("")],
            ),
            None,
        )?;
        let resume_ok = resume.status.success();
        let (reused, committed) = if resume_ok {
            read_segment_counters(&metrics).unwrap_or((u64::MAX, u64::MAX))
        } else {
            (u64::MAX, u64::MAX)
        };
        let fsck = run_child(&["fsck".to_string(), dir.display().to_string()], None)?;
        let scan = run_child(&scan_args(&dir), None)?;
        let findings_match = scan.status.success() && findings_of(&scan.stdout) == base_findings;
        let fui_identical = std::fs::read(firmup_firmware::index::index_path(&dir))
            .is_ok_and(|bytes| bytes == base_fui);
        trials.push(CrashTrial {
            spec,
            crashed,
            resume_ok,
            reused,
            committed,
            expected_reused,
            fsck_clean: fsck.status.success(),
            findings_match,
            fui_identical,
        });
    }
    // ---- ingest state machines: index --add and compact ------------------
    //
    // Base = a full build of the first half of the corpus; the second
    // half arrives via `index --add`. The recovery contract under test:
    // rerunning the same command finishes the interrupted publish, and
    // findings (plus, after compact, the corpus.fui bytes themselves)
    // are identical to the uninterrupted full build.
    let n1 = (n / 2).max(1);
    let (base_imgs, add_imgs) = images.split_at(n1);
    let m = add_imgs.len() as u64;
    let sub_index_args =
        |imgs: &[std::path::PathBuf], dir: &std::path::Path, extra: &[&str]| -> Vec<String> {
            let mut v = vec!["index".to_string()];
            v.extend(imgs.iter().map(|p| p.display().to_string()));
            v.extend(["--out".to_string(), dir.display().to_string()]);
            v.extend(["--threads".to_string(), "1".to_string()]);
            v.extend(extra.iter().map(|s| (*s).to_string()));
            v
        };
    // Seed one trial directory with the half-corpus base, then the
    // uninterrupted `--add` reference whose manifest bytes every add
    // trial must reproduce.
    let setup_base = |dir: &std::path::Path| -> Result<(), String> {
        let out = run_child(&sub_index_args(base_imgs, dir, &[]), None)?;
        if !out.status.success() {
            return Err(format!(
                "half-corpus base build failed: {}",
                String::from_utf8_lossy(&out.stderr)
            ));
        }
        Ok(())
    };
    let reference = work.join("ingest-reference");
    setup_base(&reference)?;
    let out = run_child(&sub_index_args(add_imgs, &reference, &["--add"]), None)?;
    if !out.status.success() {
        return Err(format!(
            "reference `index --add` failed: {}",
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    let reference_manifest = std::fs::read(firmup_firmware::index::manifest_path(&reference))
        .map_err(|e| format!("reference manifest: {e}"))?;

    let mut ingest_trials: Vec<IngestTrial> = Vec::new();
    // Add-machine crash points: mid segment write, mid journal append,
    // after each committed segment, and at the manifest publish rename
    // (the (m+1)-th atomic write — m segment writes come first).
    let mut add_specs: Vec<(String, Option<u64>)> = vec![
        ("durable.after_temp_write:1".to_string(), Some(0)),
        ("journal.mid_append:1".to_string(), Some(0)),
    ];
    for k in 1..=m {
        add_specs.push((format!("index.between_segments:{k}"), Some(k)));
    }
    add_specs.push((format!("durable.before_rename:{}", m + 1), Some(m)));
    for (spec, expected_adopted) in add_specs {
        let dir = work.join(format!("add-{}", spec.replace([':', '.'], "_")));
        setup_base(&dir)?;
        let crashed = !run_child(&sub_index_args(add_imgs, &dir, &["--add"]), Some(&spec))?
            .status
            .success();
        let metrics = dir.join("add-metrics.json");
        let rerun = run_child(
            &sub_index_args(
                add_imgs,
                &dir,
                &["--add", "--metrics-out", metrics.to_str().unwrap_or("")],
            ),
            None,
        )?;
        let rerun_ok = rerun.status.success();
        let adopted = if rerun_ok {
            read_segment_counters(&metrics).map_or(u64::MAX, |(reused, _)| reused)
        } else {
            u64::MAX
        };
        let fsck = run_child(&["fsck".to_string(), dir.display().to_string()], None)?;
        let scan = run_child(&scan_args(&dir), None)?;
        let findings_match = scan.status.success() && findings_of(&scan.stdout) == base_findings;
        let state_match = std::fs::read(firmup_firmware::index::manifest_path(&dir))
            .is_ok_and(|bytes| bytes == reference_manifest);
        ingest_trials.push(IngestTrial {
            stage: "add",
            spec,
            crashed,
            rerun_ok,
            adopted,
            expected_adopted,
            fsck_clean: fsck.status.success(),
            findings_match,
            state_match,
        });
    }
    // Torn-manifest fault: shear the published manifest's tail (the
    // crash `write_manifest` can't produce but a dying disk can), then
    // recover with `fsck --repair` — both live entries are salvageable,
    // so findings must survive intact.
    {
        let dir = work.join("add-torn-manifest");
        setup_base(&dir)?;
        let ok = run_child(&sub_index_args(add_imgs, &dir, &["--add"]), None)?
            .status
            .success();
        let mpath = firmup_firmware::index::manifest_path(&dir);
        let torn_applied = ok
            && std::fs::read(&mpath).is_ok_and(|bytes| {
                bytes.len() > 3 && std::fs::write(&mpath, &bytes[..bytes.len() - 3]).is_ok()
            });
        let repair = run_child(
            &[
                "fsck".to_string(),
                dir.display().to_string(),
                "--repair".to_string(),
            ],
            None,
        )?;
        let fsck = run_child(&["fsck".to_string(), dir.display().to_string()], None)?;
        let scan = run_child(&scan_args(&dir), None)?;
        let findings_match = scan.status.success() && findings_of(&scan.stdout) == base_findings;
        // The repaired manifest re-publishes the same entries at a
        // bumped epoch; entry-for-entry equality is the contract.
        let state_match = std::fs::read(&mpath).is_ok_and(|bytes| {
            let reref = firmup_firmware::index::scan_manifest(&reference_manifest);
            let scan = firmup_firmware::index::scan_manifest(&bytes);
            !scan.torn && scan.entries == reref.entries
        });
        ingest_trials.push(IngestTrial {
            stage: "add",
            spec: "torn-manifest+fsck--repair".to_string(),
            crashed: torn_applied,
            rerun_ok: repair.status.success(),
            adopted: 0,
            expected_adopted: None,
            fsck_clean: fsck.status.success(),
            findings_match,
            state_match,
        });
    }
    // Compact-machine crash points: mid corpus.fui temp write, at the
    // corpus.fui rename, and at the manifest-clear rename (the window
    // where every manifest entry is sealed — readers must skip them and
    // the rerun must finish the publish idempotently).
    for spec in [
        "durable.after_temp_write:1",
        "durable.before_rename:1",
        "durable.before_rename:2",
    ] {
        let dir = work.join(format!("compact-{}", spec.replace([':', '.'], "_")));
        setup_base(&dir)?;
        let ok = run_child(&sub_index_args(add_imgs, &dir, &["--add"]), None)?
            .status
            .success();
        if !ok {
            return Err("compact-trial `index --add` setup failed".into());
        }
        let compact_args = vec!["compact".to_string(), dir.display().to_string()];
        let crashed = !run_child(&compact_args, Some(spec))?.status.success();
        let rerun_ok = run_child(&compact_args, None)?.status.success();
        let fsck = run_child(&["fsck".to_string(), dir.display().to_string()], None)?;
        let scan = run_child(&scan_args(&dir), None)?;
        let findings_match = scan.status.success() && findings_of(&scan.stdout) == base_findings;
        // The compacted base must be byte-identical to the full build,
        // and the manifest must be live-entry free.
        let state_match = std::fs::read(firmup_firmware::index::index_path(&dir))
            .is_ok_and(|bytes| bytes == base_fui)
            && firmup_firmware::index::read_manifest(&dir)
                .is_ok_and(|m| m.is_some_and(|m| m.entries.is_empty()));
        ingest_trials.push(IngestTrial {
            stage: "compact",
            spec: spec.to_string(),
            crashed,
            rerun_ok,
            adopted: 0,
            expected_adopted: None,
            fsck_clean: fsck.status.success(),
            findings_match,
            state_match,
        });
    }

    let report = CrashMatrixReport {
        seed: config.seed,
        images: n,
        baseline_findings: base_findings.len(),
        trials,
        ingest_trials,
    };
    if report.passed() {
        let _ = std::fs::remove_dir_all(&work);
    } else {
        eprintln!(
            "crash matrix: scratch kept for debugging at {}",
            work.display()
        );
    }
    Ok(report)
}

/// `firmup chaos --serve` parameters.
#[derive(Debug, Clone)]
pub struct ServeChaosConfig {
    /// Corpus seed (also names the scratch directory).
    pub seed: u64,
    /// Devices in the generated victim corpus.
    pub devices: usize,
    /// The `firmup` binary to run as the daemon under test.
    pub firmup_bin: std::path::PathBuf,
}

/// One assertion of the serve drill, with evidence for the report.
#[derive(Debug, Clone)]
pub struct ServeChaosStep {
    /// What was asserted.
    pub name: &'static str,
    /// Whether it held.
    pub ok: bool,
    /// Observed evidence (status line, body prefix, exit code, ...).
    pub detail: String,
}

/// The serve-stage chaos result: a scripted fault-injection drill
/// against a live daemon.
#[derive(Debug)]
pub struct ServeChaosReport {
    /// Seed the run used.
    pub seed: u64,
    /// One row per assertion, in drill order.
    pub steps: Vec<ServeChaosStep>,
}

impl ServeChaosReport {
    /// Whether every assertion held.
    pub fn passed(&self) -> bool {
        !self.steps.is_empty() && self.steps.iter().all(|s| s.ok)
    }
}

impl fmt::Display for ServeChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "serve chaos drill (seed {:#x}):", self.seed)?;
        for s in &self.steps {
            writeln!(
                f,
                "  {:<44} {:>4}  {}",
                s.name,
                if s.ok { "pass" } else { "FAIL" },
                s.detail
            )?;
        }
        writeln!(
            f,
            "result: {}",
            if self.passed() {
                "PASS — the daemon degraded, never crashed"
            } else {
                "FAIL — a serve invariant was violated"
            }
        )
    }
}

/// Fault-inject a live daemon between SIGHUP reloads and assert it
/// *degrades* instead of crashing: a reload of a corrupted index keeps
/// the old snapshot serving byte-identical findings and surfaces the
/// error through `/readyz`; restoring the index and reloading recovers;
/// SIGTERM drains to exit 0.
///
/// # Errors
///
/// Setup failures only (scratch dir, corpus generation, the daemon not
/// starting at all); assertion *failures* land in the report as failed
/// rows. Unix-only (signals); on other platforms returns an error.
pub fn run_serve_chaos(config: &ServeChaosConfig) -> Result<ServeChaosReport, String> {
    use std::process::Command;
    use std::time::Duration;

    use crate::serve::protocol::http_request;

    if !cfg!(unix) {
        return Err("the serve chaos drill needs unix signals".into());
    }
    let work = std::env::temp_dir().join(format!(
        "firmup-servechaos-{:x}-{}",
        config.seed,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work).map_err(|e| format!("{}: {e}", work.display()))?;

    let corpus = generate(&CorpusConfig {
        seed: config.seed,
        devices: config.devices.max(1),
        ..CorpusConfig::tiny()
    });
    let mut images: Vec<String> = Vec::new();
    for (i, img) in corpus.images.iter().enumerate() {
        let path = work.join(format!("{i:03}.fwim"));
        std::fs::write(&path, &img.blob).map_err(|e| format!("{}: {e}", path.display()))?;
        images.push(path.display().to_string());
    }

    let idx = work.join("idx");
    let mut index_args = vec!["index".to_string()];
    index_args.extend(images.iter().cloned());
    index_args.extend(["--out".to_string(), idx.display().to_string()]);
    let out = Command::new(&config.firmup_bin)
        .args(&index_args)
        .output()
        .map_err(|e| format!("spawn firmup index: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "index build failed: {}",
            String::from_utf8_lossy(&out.stderr)
        ));
    }

    // Baseline: what a correct scan of this index answers, bytes and all.
    let out = Command::new(&config.firmup_bin)
        .args([
            "scan",
            "--index",
            &idx.display().to_string(),
            "--format",
            "json",
        ])
        .output()
        .map_err(|e| format!("spawn firmup scan: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "baseline scan failed: {}",
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    let baseline = out.stdout;

    // The daemon under test.
    let port_file = work.join("port");
    let mut daemon = Command::new(&config.firmup_bin)
        .args([
            "serve",
            "--index",
            &idx.display().to_string(),
            "--listen",
            "127.0.0.1:0",
            "--port-file",
            &port_file.display().to_string(),
            "--drain-ms",
            "2000",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn firmup serve: {e}"))?;
    let mut addr = String::new();
    for _ in 0..200 {
        if let Ok(s) = std::fs::read_to_string(&port_file) {
            addr = s.trim().to_string();
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    if addr.is_empty() {
        let _ = daemon.kill();
        return Err("daemon never wrote its port file".into());
    }
    let timeout = Duration::from_secs(30);
    let hup = |pid: u32| {
        let _ = Command::new("kill")
            .args(["-HUP", &pid.to_string()])
            .status();
    };
    let readyz = |want_ready: bool| -> (bool, String) {
        // Reload is asynchronous to the signal: poll until /readyz
        // reflects the wanted state or the clock runs out.
        for _ in 0..100 {
            if let Ok(resp) = http_request(&addr, "GET", "/readyz", None, timeout) {
                let body = String::from_utf8_lossy(&resp.body).into_owned();
                let ready = resp.status == 200;
                if ready == want_ready {
                    return (true, format!("{} {body}", resp.status));
                }
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        match http_request(&addr, "GET", "/readyz", None, timeout) {
            Ok(resp) => (
                false,
                format!("{} {}", resp.status, String::from_utf8_lossy(&resp.body)),
            ),
            Err(e) => (false, format!("readyz: {e}")),
        }
    };
    let scan_matches = || -> (bool, String) {
        match http_request(&addr, "POST", "/scan", Some(b"{}"), timeout) {
            Ok(resp) => (
                resp.status == 200 && resp.body == baseline,
                format!("{} ({} byte body)", resp.status, resp.body.len()),
            ),
            Err(e) => (false, format!("scan: {e}")),
        }
    };
    let mut steps: Vec<ServeChaosStep> = Vec::new();
    let mut step = |name: &'static str, (ok, detail): (bool, String)| {
        steps.push(ServeChaosStep { name, ok, detail });
    };

    step("daemon serves the CLI-identical baseline", scan_matches());

    // Fault injection: corrupt the on-disk index, then ask for a reload.
    let fui = firmup_firmware::index::index_path(&idx);
    let pristine = std::fs::read(&fui).map_err(|e| format!("{}: {e}", fui.display()))?;
    std::fs::write(&fui, b"FUIXgarbage").map_err(|e| format!("{}: {e}", fui.display()))?;
    hup(daemon.id());
    step("failed reload turns /readyz not-ready", readyz(false));
    step(
        "old snapshot keeps serving identical findings",
        scan_matches(),
    );

    // Recovery: restore the index the way `firmup index` writes it.
    firmup_firmware::durable::write_atomic(&fui, &pristine)
        .map_err(|e| format!("{}: {e}", fui.display()))?;
    hup(daemon.id());
    step("reload of the restored index recovers", readyz(true));
    step(
        "recovered daemon still serves identical findings",
        scan_matches(),
    );

    // Graceful drain.
    let _ = Command::new("kill")
        .args(["-TERM", &daemon.id().to_string()])
        .status();
    let mut exit = None;
    for _ in 0..200 {
        if let Some(status) = daemon.try_wait().map_err(|e| format!("wait: {e}"))? {
            exit = status.code();
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    if exit.is_none() {
        let _ = daemon.kill();
    }
    step(
        "SIGTERM drains to exit 0",
        (exit == Some(0), format!("exit {exit:?}")),
    );

    let report = ServeChaosReport {
        seed: config.seed,
        steps,
    };
    if report.passed() {
        let _ = std::fs::remove_dir_all(&work);
    } else {
        eprintln!(
            "serve chaos: scratch kept for debugging at {}",
            work.display()
        );
    }
    Ok(report)
}
