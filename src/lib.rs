//! # FirmUp — precise static detection of common vulnerabilities in firmware
//!
//! A from-scratch Rust reproduction of *FirmUp: Precise Static Detection
//! of Common Vulnerabilities in Firmware* (David, Partush, Yahav —
//! ASPLOS 2018), including every substrate the paper's pipeline depends
//! on. This umbrella crate re-exports the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`ir`] | VEX-like IR, CFGs, per-block SSA, concrete interpreter |
//! | [`isa`] | MIPS32/ARM32/PPC32/x86 encoders, disassemblers, lifters |
//! | [`obj`] | ELF32 reader/writer with firmware-tolerant parsing |
//! | [`compiler`] | MinC: a C-like language with four native back ends and vendor toolchain profiles |
//! | [`firmware`] | firmware image format, synthetic package corpus, seeded corpus generator |
//! | [`core`] | the paper's contribution: strands, canonicalization, `Sim`, the back-and-forth game, corpus search |
//! | [`baselines`] | BinDiff-style and GitZ-style comparison baselines |
//! | [`telemetry`] | zero-dependency counters, histograms, span timers, and the JSON-lines event log |
//!
//! See `examples/quickstart.rs` for the end-to-end flow and
//! `crates/bench` for the harness that regenerates every table and
//! figure of the paper's evaluation.

#![deny(unsafe_code)] // one scoped allow: the SIGINT binding in `shutdown`
#![warn(missing_docs)]

pub mod chaos;
pub mod fsck;
pub mod ingest;
pub mod pipeline;
pub mod serve;
pub mod shutdown;

pub use firmup_baselines as baselines;
pub use firmup_compiler as compiler;
pub use firmup_core as core;
pub use firmup_firmware as firmware;
pub use firmup_ir as ir;
pub use firmup_isa as isa;
pub use firmup_obj as obj;
pub use firmup_telemetry as telemetry;
